//! Policy checking against a converged snapshot, with counterexamples.
//!
//! This is the verification step the paper's policy enforcer runs before
//! importing a technician's changes ("a verifier that checks the output of
//! the twin network against network policies"). The paper reports 25 s to
//! check 175 constraints on their stack; our in-process simulator is orders
//! of magnitude faster, which EXPERIMENTS.md calls out when comparing
//! Figure 7's absolute numbers.

use crate::policy::{Policy, PolicySet};
use heimdall_dataplane::{DataPlane, Flow};
use heimdall_netmodel::topology::Network;
use heimdall_routing::ControlPlane;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of checking one policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyVerdict {
    Holds,
    /// Violated, with a human-readable counterexample.
    Violated {
        counterexample: String,
    },
    /// The policy references endpoints that do not exist in this snapshot.
    Unresolvable,
}

impl PolicyVerdict {
    /// Whether the policy held.
    pub fn holds(&self) -> bool {
        matches!(self, PolicyVerdict::Holds)
    }
}

/// The outcome of checking a whole policy set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VerificationReport {
    /// `(policy id, verdict)` for every policy, in order.
    pub results: Vec<(String, PolicyVerdict)>,
}

impl VerificationReport {
    /// Ids of violated policies.
    pub fn violations(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|(_, v)| matches!(v, PolicyVerdict::Violated { .. }))
            .map(|(id, _)| id.as_str())
            .collect()
    }

    /// Number of violated policies (the `VP` term in the paper's
    /// attack-surface formula).
    pub fn violation_count(&self) -> usize {
        self.violations().len()
    }

    /// Whether every policy held.
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|(_, v)| v.holds())
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} policies checked, {} violated",
            self.results.len(),
            self.violation_count()
        )?;
        for (id, v) in &self.results {
            if let PolicyVerdict::Violated { counterexample } = v {
                writeln!(f, "  VIOLATED {id}: {counterexample}")?;
            }
        }
        Ok(())
    }
}

/// Checks every policy in `set` against the snapshot.
pub fn check_policies(net: &Network, cp: &ControlPlane, set: &PolicySet) -> VerificationReport {
    let dp = DataPlane::new(net, cp);
    let results = set
        .policies
        .iter()
        .map(|p| (p.id(), check_one(net, &dp, p)))
        .collect();
    VerificationReport { results }
}

/// Checks a single policy.
pub fn check_one(net: &Network, dp: &DataPlane<'_>, policy: &Policy) -> PolicyVerdict {
    let srcs = policy.src().resolve(net);
    let dsts = policy.dst().resolve(net);
    if srcs.is_empty() || dsts.is_empty() {
        return PolicyVerdict::Unresolvable;
    }
    for (sdev, sip) in &srcs {
        // Sources must be devices we can originate traffic from.
        let Some(sdev) = sdev else {
            return PolicyVerdict::Unresolvable;
        };
        let Ok(sidx) = net.idx(sdev) else {
            return PolicyVerdict::Unresolvable;
        };
        for (_, dip) in &dsts {
            let flow = Flow::probe(*sip, *dip);
            match policy {
                Policy::Reachability { .. } => {
                    if !dp.reachable(sidx, &flow) {
                        let trace = dp.trace(sidx, &flow);
                        return PolicyVerdict::Violated {
                            counterexample: format!("{} -> {}: {}", sdev, dip, trace.disposition),
                        };
                    }
                }
                Policy::Isolation { .. } => {
                    let traces = dp.trace_all(sidx, &flow);
                    if traces.iter().any(|t| t.disposition.is_success()) {
                        return PolicyVerdict::Violated {
                            counterexample: format!("{} -> {}: flow is deliverable", sdev, dip),
                        };
                    }
                }
                Policy::Waypoint { via, .. } => {
                    let traces = dp.trace_all(sidx, &flow);
                    if traces.is_empty() || traces.iter().any(|t| !t.disposition.is_success()) {
                        return PolicyVerdict::Violated {
                            counterexample: format!("{} -> {}: not reachable", sdev, dip),
                        };
                    }
                    if let Some(t) = traces
                        .iter()
                        .find(|t| !t.hops.iter().any(|h| &h.device == via))
                    {
                        return PolicyVerdict::Violated {
                            counterexample: format!(
                                "{} -> {}: a path skips waypoint {via} ({} hops)",
                                sdev,
                                dip,
                                t.hops.len()
                            ),
                        };
                    }
                }
            }
        }
    }
    PolicyVerdict::Holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyEndpoint;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_routing::converge;

    fn host(n: &str) -> PolicyEndpoint {
        PolicyEndpoint::Host(n.to_string())
    }

    #[test]
    fn reachability_holds_and_violates() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = PolicySet {
            policies: vec![
                Policy::Reachability {
                    src: host("h1"),
                    dst: host("srv1"),
                },
                Policy::Reachability {
                    src: host("h1"),
                    dst: host("h4"),
                }, // locked down
            ],
        };
        let rep = check_policies(&g.net, &cp, &set);
        assert!(rep.results[0].1.holds());
        assert!(matches!(rep.results[1].1, PolicyVerdict::Violated { .. }));
        assert_eq!(rep.violation_count(), 1);
        assert!(!rep.all_hold());
    }

    #[test]
    fn isolation_works_both_ways() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = PolicySet {
            policies: vec![
                Policy::Isolation {
                    src: host("h2"),
                    dst: host("h7"),
                }, // holds
                Policy::Isolation {
                    src: host("h1"),
                    dst: host("srv1"),
                }, // violated (reachable)
            ],
        };
        let rep = check_policies(&g.net, &cp, &set);
        assert!(rep.results[0].1.holds());
        assert!(!rep.results[1].1.holds());
    }

    #[test]
    fn waypoint_through_firewall() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = PolicySet {
            policies: vec![
                Policy::Waypoint {
                    src: host("h1"),
                    dst: host("srv1"),
                    via: "fw1".into(),
                },
                Policy::Waypoint {
                    src: host("h1"),
                    dst: host("srv1"),
                    via: "acc3".into(),
                },
            ],
        };
        let rep = check_policies(&g.net, &cp, &set);
        assert!(rep.results[0].1.holds(), "{:?}", rep.results[0]);
        assert!(!rep.results[1].1.holds(), "path never crosses acc3");
    }

    #[test]
    fn unresolvable_endpoints_flagged() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = PolicySet {
            policies: vec![Policy::Reachability {
                src: host("ghost"),
                dst: host("srv1"),
            }],
        };
        let rep = check_policies(&g.net, &cp, &set);
        assert_eq!(rep.results[0].1, PolicyVerdict::Unresolvable);
        // Unresolvable is not a violation.
        assert_eq!(rep.violation_count(), 0);
    }

    #[test]
    fn counterexample_names_the_blocker() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = PolicySet {
            policies: vec![Policy::Reachability {
                src: host("h4"),
                dst: host("h1"),
            }],
        };
        let rep = check_policies(&g.net, &cp, &set);
        match &rep.results[0].1 {
            PolicyVerdict::Violated { counterexample } => {
                assert!(counterexample.contains("denied"), "got: {counterexample}");
                assert!(counterexample.contains("120"), "got: {counterexample}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn report_display_lists_violations() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = PolicySet {
            policies: vec![Policy::Reachability {
                src: host("h1"),
                dst: host("h4"),
            }],
        };
        let rep = check_policies(&g.net, &cp, &set);
        let text = rep.to_string();
        assert!(text.contains("1 policies checked, 1 violated"));
        assert!(text.contains("VIOLATED reach:h1->h4"));
    }
}
