//! Policy mining: derive the network's specification from its *healthy*
//! behavior, the way config2spec does from configurations.
//!
//! The mining rules (the precise shape matters — Table 1's policy counts,
//! 21 and 175, fall out of them):
//!
//! 1. For every ordered pair of distinct host subnets `(A, B)`:
//!    - if **every** host pair is reachable → one subnet-level
//!      `Reachability(A, B)` policy;
//!    - if **no** host pair is reachable → one subnet-level
//!      `Isolation(A, B)` policy;
//!    - otherwise (mixed) → one host-level `Reachability` per reachable
//!      pair, plus one host-level `Isolation` per unreachable pair whose
//!      destination is a designated *sensitive* host.
//! 2. For each management target (router loopback) the management host can
//!    reach → one `Reachability(mgmt, addr)` policy.
//!
//! Intra-subnet traffic never crosses an enforcement point, so it is not
//! mined (standard config2spec behavior for L2-adjacent pairs).

use crate::policy::{Policy, PolicyEndpoint, PolicySet};
use heimdall_dataplane::{DataPlane, Flow};
use heimdall_netmodel::ip::Prefix;
use heimdall_netmodel::topology::{DeviceIdx, Network};
use heimdall_routing::ControlPlane;
use std::net::Ipv4Addr;

/// What the miner needs to know about a network.
#[derive(Debug, Clone)]
pub struct MinerInput {
    /// Labeled host subnets.
    pub subnets: Vec<(String, Prefix)>,
    /// The management workstation.
    pub mgmt_host: Option<String>,
    /// Management targets (router loopbacks).
    pub mgmt_targets: Vec<Ipv4Addr>,
    /// Hosts whose isolation is worth spelling out per-source.
    pub sensitive_hosts: Vec<String>,
}

impl MinerInput {
    /// Builds miner input from generator metadata.
    pub fn from_meta(meta: &heimdall_netmodel::gen::GenMeta) -> Self {
        MinerInput {
            subnets: meta.host_subnets.clone(),
            mgmt_host: Some(meta.mgmt_host.clone()),
            mgmt_targets: meta.loopbacks.iter().map(|(_, a)| *a).collect(),
            sensitive_hosts: meta.sensitive_hosts.clone(),
        }
    }
}

/// Mines the policy set from the given (healthy) snapshot.
pub fn mine_policies(net: &Network, cp: &ControlPlane, input: &MinerInput) -> PolicySet {
    let dp = DataPlane::new(net, cp);
    let mut policies = Vec::new();

    // Hosts per subnet: (device idx, name, addr).
    let members: Vec<Vec<(DeviceIdx, String, Ipv4Addr)>> = input
        .subnets
        .iter()
        .map(|(_, prefix)| {
            net.devices()
                .filter(|(_, d)| d.kind == heimdall_netmodel::device::DeviceKind::Host)
                .filter_map(|(i, d)| {
                    d.primary_address()
                        .filter(|a| prefix.contains(*a))
                        .map(|a| (i, d.name.clone(), a))
                })
                .collect()
        })
        .collect();

    for (ai, (alabel, aprefix)) in input.subnets.iter().enumerate() {
        for (bi, (blabel, bprefix)) in input.subnets.iter().enumerate() {
            if ai == bi {
                continue;
            }
            let srcs = &members[ai];
            let dsts = &members[bi];
            if srcs.is_empty() || dsts.is_empty() {
                continue;
            }
            let mut results = Vec::new();
            for (sidx, sname, sip) in srcs {
                for (_, dname, dip) in dsts {
                    let ok = dp.reachable(*sidx, &Flow::probe(*sip, *dip));
                    results.push((sname.clone(), dname.clone(), ok));
                }
            }
            let reach_count = results.iter().filter(|(_, _, ok)| *ok).count();
            if reach_count == results.len() {
                policies.push(Policy::Reachability {
                    src: PolicyEndpoint::Subnet {
                        label: alabel.clone(),
                        prefix: *aprefix,
                    },
                    dst: PolicyEndpoint::Subnet {
                        label: blabel.clone(),
                        prefix: *bprefix,
                    },
                });
            } else if reach_count == 0 {
                policies.push(Policy::Isolation {
                    src: PolicyEndpoint::Subnet {
                        label: alabel.clone(),
                        prefix: *aprefix,
                    },
                    dst: PolicyEndpoint::Subnet {
                        label: blabel.clone(),
                        prefix: *bprefix,
                    },
                });
            } else {
                // Sources that initiate *something* into this subnet pair;
                // hosts that reach nothing (e.g. a locked-down database
                // server) generate no per-host policies at all.
                let initiators: std::collections::HashSet<&str> = results
                    .iter()
                    .filter(|(_, _, ok)| *ok)
                    .map(|(s, _, _)| s.as_str())
                    .collect();
                for (sname, dname, ok) in &results {
                    if *ok {
                        policies.push(Policy::Reachability {
                            src: PolicyEndpoint::Host(sname.clone()),
                            dst: PolicyEndpoint::Host(dname.clone()),
                        });
                    } else if input.sensitive_hosts.contains(dname)
                        && initiators.contains(sname.as_str())
                    {
                        policies.push(Policy::Isolation {
                            src: PolicyEndpoint::Host(sname.clone()),
                            dst: PolicyEndpoint::Host(dname.clone()),
                        });
                    }
                }
            }
        }
    }

    // Management plane.
    if let Some(mgmt) = &input.mgmt_host {
        if let Some(mdev) = net.device_by_name(mgmt) {
            if let (Ok(midx), Some(mip)) = (net.idx(mgmt), mdev.primary_address()) {
                for target in &input.mgmt_targets {
                    if dp.reachable(midx, &Flow::probe(mip, *target)) {
                        policies.push(Policy::Reachability {
                            src: PolicyEndpoint::Host(mgmt.clone()),
                            dst: PolicyEndpoint::Addr(*target),
                        });
                    }
                }
            }
        }
    }

    PolicySet { policies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_policies;
    use heimdall_netmodel::gen::{enterprise_network, university_network};
    use heimdall_routing::converge;

    #[test]
    fn enterprise_mines_21_policies() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        assert_eq!(
            set.len(),
            21,
            "Table 1: 21 policies; got\n{}",
            set.to_json()
        );
    }

    #[test]
    fn university_mines_175_policies() {
        let g = university_network();
        let cp = converge(&g.net);
        let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        assert_eq!(set.len(), 175, "Table 1: 175 policies");
    }

    #[test]
    fn mined_policies_hold_on_the_healthy_snapshot() {
        for g in [enterprise_network(), university_network()] {
            let cp = converge(&g.net);
            let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
            let rep = check_policies(&g.net, &cp, &set);
            assert!(rep.all_hold(), "{}: {rep}", g.meta.name);
        }
    }

    #[test]
    fn enterprise_policy_shape() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        let reach = set
            .policies
            .iter()
            .filter(|p| matches!(p, Policy::Reachability { .. }))
            .count();
        let iso = set
            .policies
            .iter()
            .filter(|p| matches!(p, Policy::Isolation { .. }))
            .count();
        // 3 subnet reach + 9 mgmt reach, 9 subnet isolation.
        assert_eq!(reach, 12);
        assert_eq!(iso, 9);
    }

    #[test]
    fn mining_is_deterministic() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let input = MinerInput::from_meta(&g.meta);
        let a = mine_policies(&g.net, &cp, &input);
        let b = mine_policies(&g.net, &cp, &input);
        assert_eq!(a, b);
    }

    #[test]
    fn broken_snapshot_mines_differently() {
        let g = enterprise_network();
        let mut net = g.net.clone();
        // Shut acc1's uplink: LAN1 becomes an island.
        net.device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .enabled = false;
        let cp = converge(&net);
        let set = mine_policies(&net, &cp, &MinerInput::from_meta(&g.meta));
        assert!(set.len() < 21, "broken network must mine fewer positives");
    }
}
