//! # heimdall-verify
//!
//! Network policy verification (the Batfish-analog layer) and policy mining
//! (the config2spec-analog layer).
//!
//! The paper extends Batfish in two directions: privilege specifications as
//! input (that part lives in `heimdall-privilege`), and verification of a
//! technician's changes against network policies before they reach
//! production. This crate supplies the policy machinery:
//!
//! - [`policy`]: policy types — reachability, isolation, waypoint — over
//!   host, subnet, or raw-address endpoints;
//! - [`checker`]: evaluates a policy set against a converged snapshot,
//!   producing counterexample traces for violations;
//! - [`mine`]: derives the policy set from a *healthy* snapshot the way
//!   config2spec mines specifications from configurations (the paper: "We
//!   use config2spec to generate network policies from configuration
//!   files") — 21 policies for the enterprise network, 175 for the
//!   university network, matching Table 1;
//! - [`differential`]: compares two snapshots (what did this change-set
//!   break / newly allow?).
//!
//! ```
//! use heimdall_verify::mine::{mine_policies, MinerInput};
//! use heimdall_verify::checker::check_policies;
//!
//! let g = heimdall_netmodel::gen::enterprise_network();
//! let cp = heimdall_routing::converge(&g.net);
//!
//! // Mine the specification from the healthy network (Table 1: 21).
//! let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
//! assert_eq!(policies.len(), 21);
//!
//! // The healthy network satisfies its own specification.
//! let report = check_policies(&g.net, &cp, &policies);
//! assert!(report.all_hold());
//! ```

pub mod checker;
pub mod differential;
pub mod mine;
pub mod policy;

pub use checker::{check_policies, PolicyVerdict, VerificationReport};
pub use mine::{mine_policies, MinerInput};
pub use policy::{Policy, PolicyEndpoint, PolicySet};
