//! Policy types: the network's intended-behavior specification.

use heimdall_netmodel::ip::Prefix;
use heimdall_netmodel::topology::Network;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// One side of a policy: a named host, a labeled subnet (meaning *every
/// host inside it*), or a raw address (e.g. a router loopback).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyEndpoint {
    Host(String),
    Subnet { label: String, prefix: Prefix },
    Addr(Ipv4Addr),
}

impl PolicyEndpoint {
    /// Resolves the endpoint to concrete `(source device, address)` pairs.
    /// For destinations only the addresses matter; for sources the device
    /// is where tracing starts.
    pub fn resolve(&self, net: &Network) -> Vec<(Option<String>, Ipv4Addr)> {
        match self {
            PolicyEndpoint::Host(name) => net
                .device_by_name(name)
                .and_then(|d| d.primary_address())
                .map(|a| vec![(Some(name.clone()), a)])
                .unwrap_or_default(),
            PolicyEndpoint::Subnet { prefix, .. } => {
                let mut out = Vec::new();
                for (_, d) in net.devices() {
                    if d.kind != heimdall_netmodel::device::DeviceKind::Host {
                        continue;
                    }
                    if let Some(a) = d.primary_address() {
                        if prefix.contains(a) {
                            out.push((Some(d.name.clone()), a));
                        }
                    }
                }
                out
            }
            PolicyEndpoint::Addr(a) => vec![(None, *a)],
        }
    }
}

impl fmt::Display for PolicyEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyEndpoint::Host(h) => write!(f, "{h}"),
            PolicyEndpoint::Subnet { label, prefix } => write!(f, "{label}({prefix})"),
            PolicyEndpoint::Addr(a) => write!(f, "{a}"),
        }
    }
}

/// A single network policy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Every source endpoint must reach every destination endpoint
    /// (canonical TCP/80 probe).
    Reachability {
        src: PolicyEndpoint,
        dst: PolicyEndpoint,
    },
    /// No source endpoint may reach any destination endpoint.
    Isolation {
        src: PolicyEndpoint,
        dst: PolicyEndpoint,
    },
    /// Reachable, and every path crosses `via`.
    Waypoint {
        src: PolicyEndpoint,
        dst: PolicyEndpoint,
        via: String,
    },
}

impl Policy {
    /// A short stable identifier used in reports and audit entries.
    pub fn id(&self) -> String {
        match self {
            Policy::Reachability { src, dst } => format!("reach:{src}->{dst}"),
            Policy::Isolation { src, dst } => format!("isolate:{src}-x->{dst}"),
            Policy::Waypoint { src, dst, via } => format!("waypoint:{src}->{dst}:via:{via}"),
        }
    }

    /// The source endpoint.
    pub fn src(&self) -> &PolicyEndpoint {
        match self {
            Policy::Reachability { src, .. }
            | Policy::Isolation { src, .. }
            | Policy::Waypoint { src, .. } => src,
        }
    }

    /// The destination endpoint.
    pub fn dst(&self) -> &PolicyEndpoint {
        match self {
            Policy::Reachability { dst, .. }
            | Policy::Isolation { dst, .. }
            | Policy::Waypoint { dst, .. } => dst,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Reachability { src, dst } => write!(f, "{src} can reach {dst}"),
            Policy::Isolation { src, dst } => write!(f, "{src} cannot reach {dst}"),
            Policy::Waypoint { src, dst, via } => {
                write!(f, "{src} reaches {dst} via {via}")
            }
        }
    }
}

/// An ordered set of policies (the network's specification).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicySet {
    pub policies: Vec<Policy>,
}

impl PolicySet {
    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Policies mentioning `host` on either side.
    pub fn involving_host(&self, host: &str) -> Vec<&Policy> {
        self.policies
            .iter()
            .filter(|p| {
                matches!(p.src(), PolicyEndpoint::Host(h) if h == host)
                    || matches!(p.dst(), PolicyEndpoint::Host(h) if h == host)
            })
            .collect()
    }

    /// Serializes to pretty JSON (the admin-facing interchange format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("policy sets are serializable")
    }

    /// Parses the JSON form.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn endpoint_resolution() {
        let g = enterprise_network();
        let h = PolicyEndpoint::Host("h1".to_string());
        let r = h.resolve(&g.net);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, "10.1.1.10".parse::<Ipv4Addr>().unwrap());

        let s = PolicyEndpoint::Subnet {
            label: "LAN1".to_string(),
            prefix: "10.1.1.0/24".parse().unwrap(),
        };
        assert_eq!(s.resolve(&g.net).len(), 3);

        let a = PolicyEndpoint::Addr("10.0.0.1".parse().unwrap());
        assert_eq!(a.resolve(&g.net), vec![(None, "10.0.0.1".parse().unwrap())]);
    }

    #[test]
    fn unknown_host_resolves_empty() {
        let g = enterprise_network();
        assert!(PolicyEndpoint::Host("nope".to_string())
            .resolve(&g.net)
            .is_empty());
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let a = Policy::Reachability {
            src: PolicyEndpoint::Host("h1".into()),
            dst: PolicyEndpoint::Host("srv1".into()),
        };
        let b = Policy::Isolation {
            src: PolicyEndpoint::Host("h1".into()),
            dst: PolicyEndpoint::Host("srv1".into()),
        };
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), "reach:h1->srv1");
    }

    #[test]
    fn json_round_trip() {
        let set = PolicySet {
            policies: vec![
                Policy::Reachability {
                    src: PolicyEndpoint::Subnet {
                        label: "LAN1".into(),
                        prefix: "10.1.1.0/24".parse().unwrap(),
                    },
                    dst: PolicyEndpoint::Host("srv1".into()),
                },
                Policy::Waypoint {
                    src: PolicyEndpoint::Host("h1".into()),
                    dst: PolicyEndpoint::Host("srv1".into()),
                    via: "fw1".into(),
                },
            ],
        };
        let back = PolicySet::from_json(&set.to_json()).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn involving_host_filters() {
        let set = PolicySet {
            policies: vec![
                Policy::Reachability {
                    src: PolicyEndpoint::Host("h1".into()),
                    dst: PolicyEndpoint::Host("srv1".into()),
                },
                Policy::Isolation {
                    src: PolicyEndpoint::Host("h2".into()),
                    dst: PolicyEndpoint::Host("h7".into()),
                },
            ],
        };
        assert_eq!(set.involving_host("h7").len(), 1);
        assert_eq!(set.involving_host("h1").len(), 1);
        assert_eq!(set.involving_host("zz").len(), 0);
    }
}
