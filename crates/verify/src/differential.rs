//! Differential verification: what did a change-set alter?
//!
//! Used two ways: the enforcer's verifier diffs "production" against
//! "production + technician changes" to decide whether the changes are
//! importable, and the experiments use it to confirm an injected issue
//! actually breaks what the ticket says it breaks.

use crate::checker::{check_policies, VerificationReport};
use crate::policy::PolicySet;
use heimdall_netmodel::topology::Network;
use heimdall_routing::{converge, ControlPlane};
use serde::{Deserialize, Serialize};

/// Verdicts before vs. after, for every policy that changed state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DifferentialReport {
    /// Policies that held before and are violated after.
    pub newly_violated: Vec<String>,
    /// Policies that were violated before and hold after.
    pub newly_fixed: Vec<String>,
    /// Violations present in both snapshots.
    pub still_violated: Vec<String>,
}

impl DifferentialReport {
    /// Whether the change-set introduced no regressions.
    pub fn is_safe(&self) -> bool {
        self.newly_violated.is_empty()
    }

    /// Whether the change-set fully repaired the snapshot.
    pub fn fully_fixed(&self) -> bool {
        self.newly_violated.is_empty() && self.still_violated.is_empty()
    }
}

/// Compares two verification reports policy-by-policy.
pub fn diff_reports(before: &VerificationReport, after: &VerificationReport) -> DifferentialReport {
    let mut out = DifferentialReport::default();
    for ((id_b, v_b), (id_a, v_a)) in before.results.iter().zip(&after.results) {
        debug_assert_eq!(id_b, id_a, "reports must cover the same policy set");
        match (v_b.holds(), v_a.holds()) {
            (true, false) => out.newly_violated.push(id_a.clone()),
            (false, true) => out.newly_fixed.push(id_a.clone()),
            (false, false) => out.still_violated.push(id_a.clone()),
            (true, true) => {}
        }
    }
    out
}

/// Converges and checks both snapshots, then diffs the reports.
pub fn differential_check(
    before: &Network,
    after: &Network,
    set: &PolicySet,
) -> (DifferentialReport, ControlPlane, ControlPlane) {
    let cp_before = converge(before);
    let cp_after = converge(after);
    let rep_before = check_policies(before, &cp_before, set);
    let rep_after = check_policies(after, &cp_after, set);
    (diff_reports(&rep_before, &rep_after), cp_before, cp_after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::{mine_policies, MinerInput};
    use heimdall_netmodel::acl::AclAction;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn breaking_change_is_flagged() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));

        let mut after = g.net.clone();
        // Flip fw1's LAN1->DMZ permit to deny (the Figure 6 misconfig).
        let fw1 = after.device_by_name_mut("fw1").unwrap();
        fw1.config.acls.get_mut("100").unwrap().entries[0].action = AclAction::Deny;

        let (d, _, _) = differential_check(&g.net, &after, &set);
        assert!(!d.is_safe());
        assert!(d
            .newly_violated
            .iter()
            .any(|id| id.contains("LAN1") && id.contains("DMZ")));
        assert!(d.newly_fixed.is_empty());
    }

    #[test]
    fn fixing_change_is_recognized() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));

        let mut broken = g.net.clone();
        broken
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[0]
            .action = AclAction::Deny;

        // Fix = back to the original.
        let (d, _, _) = differential_check(&broken, &g.net, &set);
        assert!(d.is_safe());
        assert!(d.fully_fixed());
        assert!(!d.newly_fixed.is_empty());
    }

    #[test]
    fn noop_change_is_clean() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        let (d, _, _) = differential_check(&g.net, &g.net.clone(), &set);
        assert!(d.is_safe() && d.fully_fixed());
        assert!(d.newly_fixed.is_empty());
    }

    #[test]
    fn partial_fix_leaves_still_violated() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let set = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));

        let mut broken = g.net.clone();
        {
            let fw1 = broken.device_by_name_mut("fw1").unwrap();
            let acl = fw1.config.acls.get_mut("100").unwrap();
            acl.entries[0].action = AclAction::Deny; // LAN1 -> DMZ
            acl.entries[1].action = AclAction::Deny; // LAN2 -> DMZ
        }
        let mut half_fixed = broken.clone();
        {
            let fw1 = half_fixed.device_by_name_mut("fw1").unwrap();
            fw1.config.acls.get_mut("100").unwrap().entries[0].action = AclAction::Permit;
        }
        let (d, _, _) = differential_check(&broken, &half_fixed, &set);
        assert!(d.is_safe());
        assert!(!d.fully_fixed());
        assert_eq!(d.newly_fixed.len(), 1);
        assert_eq!(d.still_violated.len(), 1);
    }
}
