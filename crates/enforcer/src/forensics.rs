//! Forensic audit review: "in the event that some violations escape the
//! Privilege_msp, we need forensic audit trails to help identify issues
//! retroactively."
//!
//! This module turns an audit log into a reviewed summary: per-actor
//! activity, every refusal, and a set of *anomaly* flags a customer's
//! security team would page on. The rules are deliberately simple and
//! explainable — forensics that cannot be explained cannot be acted on.

use crate::audit::{AuditEntry, AuditKind, AuditLog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An anomaly the reviewer should look at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Anomaly {
    /// Stable rule code, e.g. `repeated-denials`.
    pub rule: &'static str,
    pub actor: String,
    pub detail: String,
    /// Sequence numbers of the supporting entries.
    pub evidence: Vec<u64>,
}

/// Per-actor activity counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActorActivity {
    pub commands: usize,
    pub denials: usize,
    pub vetoes: usize,
    pub changes_applied: usize,
    pub escalations: usize,
}

/// The reviewed summary of one audit log.
#[derive(Debug, Clone, Serialize)]
pub struct ForensicsSummary {
    /// Whether the chain itself verified.
    pub chain_intact: bool,
    pub per_actor: BTreeMap<String, ActorActivity>,
    pub anomalies: Vec<Anomaly>,
}

impl ForensicsSummary {
    /// Whether the review found nothing to escalate.
    pub fn clean(&self) -> bool {
        self.chain_intact && self.anomalies.is_empty()
    }
}

/// Denials by one actor at or above this count flag an anomaly: a
/// legitimate technician hits the privilege wall once or twice; a probe
/// hits it constantly.
const DENIAL_THRESHOLD: usize = 3;

fn is_denial(e: &AuditEntry) -> bool {
    e.detail.contains("[DENIED") || e.detail.contains("DENIED]")
}

fn is_veto(e: &AuditEntry) -> bool {
    e.detail.contains("[VETOED")
        || e.detail.contains("RejectedPolicy")
        || e.detail.contains("RejectedLint")
}

/// Reviews a log.
pub fn review(log: &AuditLog) -> ForensicsSummary {
    let chain_intact = log.verify_chain().is_ok();
    let mut per_actor: BTreeMap<String, ActorActivity> = BTreeMap::new();
    for e in &log.entries {
        let a = per_actor.entry(e.actor.clone()).or_default();
        match e.kind {
            AuditKind::Command => {
                a.commands += 1;
                if is_denial(e) {
                    a.denials += 1;
                }
                if is_veto(e) {
                    a.vetoes += 1;
                }
            }
            AuditKind::ChangeApplied => a.changes_applied += 1,
            AuditKind::Escalation => a.escalations += 1,
            AuditKind::Verification => {
                if is_veto(e) {
                    a.vetoes += 1;
                }
            }
            AuditKind::Session => {}
        }
    }

    let mut anomalies = Vec::new();
    if !chain_intact {
        anomalies.push(Anomaly {
            rule: "chain-broken",
            actor: "<storage>".to_string(),
            detail: "audit chain failed verification; treat the log as hostile".to_string(),
            evidence: vec![],
        });
    }
    // Rule: repeated denials by one actor (privilege probing).
    for (actor, act) in &per_actor {
        if act.denials >= DENIAL_THRESHOLD {
            let evidence = log
                .entries
                .iter()
                .filter(|e| &e.actor == actor && is_denial(e))
                .map(|e| e.seq)
                .collect();
            anomalies.push(Anomaly {
                rule: "repeated-denials",
                actor: actor.clone(),
                detail: format!("{} denied commands in one engagement", act.denials),
                evidence,
            });
        }
    }
    // Rule: emergency activations always get eyes.
    for e in &log.entries {
        if e.kind == AuditKind::Session && e.detail.contains("EMERGENCY MODE ACTIVATED") {
            anomalies.push(Anomaly {
                rule: "emergency-used",
                actor: e.actor.clone(),
                detail: e.detail.clone(),
                evidence: vec![e.seq],
            });
        }
    }
    // Rule: a veto followed by further applied changes from the same actor
    // (the actor kept pushing after being told no).
    for (actor, act) in &per_actor {
        if act.vetoes > 0 {
            let veto_seq = log
                .entries
                .iter()
                .filter(|e| &e.actor == actor || e.actor == "enforcer")
                .filter(|e| is_veto(e))
                .map(|e| e.seq)
                .min();
            if let Some(v) = veto_seq {
                let after: Vec<u64> = log
                    .entries
                    .iter()
                    .filter(|e| {
                        e.seq > v && &e.actor == actor && e.kind == AuditKind::ChangeApplied
                    })
                    .map(|e| e.seq)
                    .collect();
                if !after.is_empty() {
                    anomalies.push(Anomaly {
                        rule: "push-after-veto",
                        actor: actor.clone(),
                        detail: format!("{} change(s) applied after a veto", after.len()),
                        evidence: after,
                    });
                }
            }
        }
    }

    ForensicsSummary {
        chain_intact,
        per_actor,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_log() -> AuditLog {
        let mut log = AuditLog::new();
        log.append(AuditKind::Session, "alice", "session open");
        log.append(
            AuditKind::Command,
            "alice",
            "fw1: show access-lists [allowed]",
        );
        log.append(AuditKind::ChangeApplied, "alice", "fw1: replace acl 100");
        log
    }

    #[test]
    fn clean_engagement_reviews_clean() {
        let s = review(&clean_log());
        assert!(s.clean());
        assert_eq!(s.per_actor["alice"].commands, 1);
        assert_eq!(s.per_actor["alice"].changes_applied, 1);
    }

    #[test]
    fn repeated_denials_flagged_with_evidence() {
        let mut log = clean_log();
        for d in ["bdr1", "core1", "acc3"] {
            log.append(
                AuditKind::Command,
                "mallory",
                &format!("{d}: show running-config [DENIED: privilege]"),
            );
        }
        let s = review(&log);
        assert!(!s.clean());
        let a = s
            .anomalies
            .iter()
            .find(|a| a.rule == "repeated-denials")
            .expect("flagged");
        assert_eq!(a.actor, "mallory");
        assert_eq!(a.evidence.len(), 3);
    }

    #[test]
    fn broken_chain_dominates() {
        let mut log = clean_log();
        log.entries[1].detail = "rewritten".to_string();
        let s = review(&log);
        assert!(!s.chain_intact);
        assert!(s.anomalies.iter().any(|a| a.rule == "chain-broken"));
    }

    #[test]
    fn emergency_use_always_flagged() {
        let mut log = clean_log();
        log.append(
            AuditKind::Session,
            "bob",
            "EMERGENCY MODE ACTIVATED: optics fault",
        );
        let s = review(&log);
        assert!(s
            .anomalies
            .iter()
            .any(|a| a.rule == "emergency-used" && a.actor == "bob"));
    }

    #[test]
    fn push_after_veto_flagged() {
        let mut log = clean_log();
        log.append(
            AuditKind::Command,
            "mallory",
            "acc3: access-list 120 ... [VETOED: would violate ...]",
        );
        log.append(AuditKind::ChangeApplied, "mallory", "acc3: replace acl 120");
        let s = review(&log);
        assert!(s.anomalies.iter().any(|a| a.rule == "push-after-veto"));
    }

    #[test]
    fn real_engagement_reviews_clean_end_to_end() {
        // The audit from a legitimate full-pipeline run must review clean.
        use crate::pipeline::enforce;
        use heimdall_netmodel::diff::diff_networks;
        let g = heimdall_netmodel::gen::enterprise_network();
        let cp = heimdall_routing::converge(&g.net);
        let policies = heimdall_verify::mine::mine_policies(
            &g.net,
            &cp,
            &heimdall_verify::mine::MinerInput::from_meta(&g.meta),
        );
        let mut broken = g.net.clone();
        broken
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[1]
            .action = heimdall_netmodel::acl::AclAction::Deny;
        let spec = heimdall_privilege::derive::derive_privileges(
            &broken,
            &heimdall_privilege::derive::Task {
                kind: heimdall_privilege::derive::TaskKind::AccessControl,
                affected: vec!["h4".into(), "srv1".into()],
            },
        );
        let diff = diff_networks(&broken, &g.net);
        let (_, audit) = enforce("alice", &broken, &diff, &policies, &spec);
        let s = review(&audit);
        assert!(s.clean(), "{s:?}");
    }
}
