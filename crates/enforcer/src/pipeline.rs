//! The enforcer pipeline: verify → schedule → apply → audit, inside the
//! (simulated) enclave.
//!
//! This is the single entry point the Heimdall workflow calls at step 3.
//! Everything observable leaves a chained audit entry; the audit head is
//! kept sealed to the enclave identity after every append, so an attacker
//! with storage access cannot rewrite history without breaking either the
//! chain or the seal.

use crate::audit::{AuditEntry, AuditKind, AuditLog};
use crate::concurrency::{CommitAttempt, CommitGuard};
use crate::enclave::{Enclave, Platform, SealedBlob};
use crate::scheduler::{schedule, Schedule};
use crate::verifier::{verify_changes, EnforcementReport};
use heimdall_netmodel::diff::ConfigDiff;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::model::PrivilegeMsp;
use heimdall_telemetry::{SpanContext, SpanStatus, Stage};
use heimdall_verify::policy::PolicySet;

/// The outcome of pushing one change-set through the enforcer.
#[derive(Debug, Clone)]
pub struct EnforcerOutcome {
    pub report: EnforcementReport,
    /// Present when accepted: the rollout plan actually applied.
    pub schedule: Option<Schedule>,
    /// Present when accepted: production after the changes.
    pub updated_production: Option<Network>,
}

impl EnforcerOutcome {
    /// Whether production was updated.
    pub fn applied(&self) -> bool {
        self.updated_production.is_some()
    }
}

/// Observer invoked (while the pipeline is held) for every appended
/// audit entry — the durability layer journals entries through this.
pub type AuditSink = Box<dyn Fn(&AuditEntry) + Send>;

/// Observer invoked *inside the commit guard's production lock* when a
/// guarded commit installs an update: `(technician, diff, epoch)`. The
/// lock guarantees invocation order equals epoch order, which is what
/// lets a write-ahead log replay commits deterministically.
pub type CommitSink = Box<dyn Fn(&str, &ConfigDiff, u64) + Send>;

/// A long-lived enforcer instance: enclave identity + audit log.
pub struct EnforcerPipeline {
    enclave: Enclave,
    audit: AuditLog,
    sealed_head: SealedBlob,
    /// Change-sets verified (any verdict) — the denominator for the
    /// verify-failure SLO rule.
    verify_total: u64,
    /// Change-sets that did not come back `Accepted` (including stale
    /// rejections) — the obs layer scrapes this as
    /// `enforcer.verify_failures_total` and alerts on its burn rate.
    verify_failures: u64,
    audit_sink: Option<AuditSink>,
    commit_sink: Option<CommitSink>,
}

impl EnforcerPipeline {
    /// Launches the enforcer inside a (simulated) enclave on `platform`.
    pub fn launch(platform: &Platform) -> Self {
        let enclave = platform.launch("heimdall-enforcer-v1");
        let audit = AuditLog::new();
        let sealed_head = enclave.seal(audit.head().as_bytes());
        EnforcerPipeline {
            enclave,
            audit,
            sealed_head,
            verify_total: 0,
            verify_failures: 0,
            audit_sink: None,
            commit_sink: None,
        }
    }

    /// Installs an observer for every subsequently appended audit entry.
    pub fn set_audit_sink(&mut self, sink: AuditSink) {
        self.audit_sink = Some(sink);
    }

    /// Installs an observer for every installed guarded commit; see
    /// [`CommitSink`] for the ordering guarantee.
    pub fn set_commit_sink(&mut self, sink: CommitSink) {
        self.commit_sink = Some(sink);
    }

    /// Replaces the audit log with a restored (e.g. recovered-from-disk)
    /// one after re-verifying its chain, optionally cross-checking a
    /// recovered sealed head against the restored chain's head, and
    /// re-sealing under this enclave's identity.
    pub fn restore_audit(
        &mut self,
        log: AuditLog,
        sealed: Option<&SealedBlob>,
    ) -> Result<(), String> {
        log.verify_chain()
            .map_err(|e| format!("restored audit chain invalid: {e}"))?;
        if let Some(blob) = sealed {
            let head = self
                .enclave
                .unseal(blob)
                .map_err(|e| format!("recovered sealed head rejected: {e}"))?;
            if head != log.head().as_bytes() {
                return Err("sealed head does not match restored audit chain".into());
            }
        }
        self.sealed_head = self.enclave.seal(log.head().as_bytes());
        self.audit = log;
        Ok(())
    }

    /// Restores the lifetime verification counters (recovery path; the
    /// counters feed the obs layer's burn-rate denominators).
    pub fn restore_verify_counters(&mut self, total: u64, failures: u64) {
        self.verify_total = total;
        self.verify_failures = failures;
    }

    /// The current sealed audit head (for checkpointing).
    pub fn sealed_head(&self) -> &SealedBlob {
        &self.sealed_head
    }

    /// Lifetime count of verified change-sets.
    pub fn verify_total(&self) -> u64 {
        self.verify_total
    }

    /// Lifetime count of change-sets rejected at verification (any
    /// non-`Accepted` verdict, stale included).
    pub fn verify_failures(&self) -> u64 {
        self.verify_failures
    }

    /// Like [`EnforcerPipeline::process`], but first checks that the
    /// change-set's base fingerprint (recorded when the twin was opened)
    /// still matches production on the touched devices — the optimistic
    /// concurrency gate for racing technicians.
    pub fn process_checked(
        &mut self,
        technician: &str,
        production: &Network,
        diff: &ConfigDiff,
        base_fingerprint: &str,
        policies: &PolicySet,
        privilege: &PrivilegeMsp,
    ) -> EnforcerOutcome {
        if !crate::concurrency::base_matches(production, diff, base_fingerprint) {
            return self.stale_outcome(diff, &SpanContext::disabled());
        }
        self.process(technician, production, diff, policies, privilege)
    }

    /// Like [`EnforcerPipeline::process_checked`], but the staleness
    /// check, verification, and installation of the updated network all
    /// happen while `guard` holds the production lock — the safe entry
    /// point when many technicians commit against one shared network.
    pub fn process_guarded(
        &mut self,
        technician: &str,
        guard: &CommitGuard,
        diff: &ConfigDiff,
        base_fingerprint: &str,
        policies: &PolicySet,
        privilege: &PrivilegeMsp,
    ) -> EnforcerOutcome {
        self.process_guarded_traced(
            technician,
            guard,
            diff,
            base_fingerprint,
            policies,
            privilege,
            &SpanContext::disabled(),
        )
    }

    /// [`EnforcerPipeline::process_guarded`] with telemetry: the commit
    /// attempt is timed as a `commit` span, verification and scheduling
    /// inside it as `verify`/`schedule` spans, and every audit entry the
    /// attempt produces is stamped with the context's `TraceId`.
    #[allow(clippy::too_many_arguments)]
    pub fn process_guarded_traced(
        &mut self,
        technician: &str,
        guard: &CommitGuard,
        diff: &ConfigDiff,
        base_fingerprint: &str,
        policies: &PolicySet,
        privilege: &PrivilegeMsp,
        ctx: &SpanContext,
    ) -> EnforcerOutcome {
        let mut commit_span = ctx.span(Stage::Commit);
        let attempt = guard.commit_with_epoch(diff, base_fingerprint, |production, epoch| {
            let outcome =
                self.process_traced(technician, production, diff, policies, privilege, ctx);
            let updated = outcome.updated_production.clone();
            if updated.is_some() {
                // Journal the commit while the production lock is held:
                // journal order is then provably epoch order, so replay
                // can never interleave two commits the wrong way round.
                if let Some(sink) = &self.commit_sink {
                    sink(technician, diff, epoch);
                }
            }
            (outcome, updated)
        });
        match attempt {
            CommitAttempt::Committed { result, .. } => {
                if let Some(s) = commit_span.as_mut() {
                    if result.applied() {
                        s.set_detail(format!("{} changes installed", diff.len()));
                    } else {
                        s.set_status(SpanStatus::Rejected);
                        s.set_detail(format!("verdict={:?}", result.report.verdict));
                    }
                }
                result
            }
            CommitAttempt::Stale { .. } => {
                if let Some(s) = commit_span.as_mut() {
                    s.set_status(SpanStatus::Rejected);
                    s.set_detail("stale base fingerprint");
                }
                self.stale_outcome(diff, ctx)
            }
        }
    }

    /// Audits and builds the rejection for a stale change-set.
    fn stale_outcome(&mut self, diff: &ConfigDiff, ctx: &SpanContext) -> EnforcerOutcome {
        self.verify_total += 1;
        self.verify_failures += 1;
        self.log_traced(
            AuditKind::Verification,
            "enforcer",
            &format!(
                "verdict=RejectedStale: base changed on {:?} since the twin was opened",
                diff.devices()
            ),
            &ctx.trace_tag(),
        );
        EnforcerOutcome {
            report: EnforcementReport {
                verdict: crate::verifier::Verdict::RejectedStale,
                privilege_violations: Vec::new(),
                differential: Default::default(),
                new_lint_errors: Vec::new(),
            },
            schedule: None,
            updated_production: None,
        }
    }

    /// Verifies, schedules, applies, and audits one change-set.
    pub fn process(
        &mut self,
        technician: &str,
        production: &Network,
        diff: &ConfigDiff,
        policies: &PolicySet,
        privilege: &PrivilegeMsp,
    ) -> EnforcerOutcome {
        self.process_traced(
            technician,
            production,
            diff,
            policies,
            privilege,
            &SpanContext::disabled(),
        )
    }

    /// [`EnforcerPipeline::process`] with telemetry: verification and
    /// scheduling each get their own span, and all audit entries carry
    /// the context's trace tag so `AuditQuery` results are joinable with
    /// span trees.
    pub fn process_traced(
        &mut self,
        technician: &str,
        production: &Network,
        diff: &ConfigDiff,
        policies: &PolicySet,
        privilege: &PrivilegeMsp,
        ctx: &SpanContext,
    ) -> EnforcerOutcome {
        let tag = ctx.trace_tag();
        self.log_traced(
            AuditKind::Session,
            technician,
            &format!(
                "change-set submitted: {} changes on {:?}",
                diff.len(),
                diff.devices()
            ),
            &tag,
        );

        let mut verify_span = ctx.span(Stage::Verify);
        let (report, patched) = verify_changes(production, diff, policies, privilege);
        self.verify_total += 1;
        if patched.is_none() {
            self.verify_failures += 1;
        }
        if let Some(s) = verify_span.as_mut() {
            s.set_detail(format!("verdict={:?}", report.verdict));
            if patched.is_none() {
                s.set_status(SpanStatus::Rejected);
            }
        }
        drop(verify_span);
        self.log_traced(
            AuditKind::Verification,
            "enforcer",
            &format!(
                "verdict={:?} privilege_violations={} newly_violated={:?}",
                report.verdict,
                report.privilege_violations.len(),
                report.differential.newly_violated
            ),
            &tag,
        );

        if patched.is_none() {
            return EnforcerOutcome {
                report,
                schedule: None,
                updated_production: None,
            };
        }

        let mut schedule_span = ctx.span(Stage::Schedule);
        let plan = schedule(production, diff, policies);
        if let Some(s) = schedule_span.as_mut() {
            s.set_detail(format!(
                "{} steps, {} transients",
                plan.steps.len(),
                plan.transient_count()
            ));
        }
        drop(schedule_span);
        for step in &plan.steps {
            self.log_traced(AuditKind::ChangeApplied, technician, &step.summary(), &tag);
        }
        if !plan.is_hitless() {
            self.log_traced(
                AuditKind::Verification,
                "enforcer",
                &format!("rollout transients: {}", plan.transient_count()),
                &tag,
            );
        }
        EnforcerOutcome {
            report,
            schedule: Some(plan),
            updated_production: patched,
        }
    }

    /// Appends an audit entry and re-seals the head.
    pub fn log(&mut self, kind: AuditKind, actor: &str, detail: &str) {
        self.log_traced(kind, actor, detail, "");
    }

    /// Appends a trace-tagged audit entry and re-seals the head.
    pub fn log_traced(&mut self, kind: AuditKind, actor: &str, detail: &str, trace: &str) {
        self.audit.append_traced(kind, actor, detail, trace);
        self.sealed_head = self.enclave.seal(self.audit.head().as_bytes());
        if let Some(sink) = &self.audit_sink {
            if let Some(entry) = self.audit.entries.last() {
                sink(entry);
            }
        }
    }

    /// The audit log (read-only).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Verifies both the chain and the sealed head against the log.
    pub fn verify_audit_integrity(&self) -> bool {
        if self.audit.verify_chain().is_err() {
            return false;
        }
        match self.enclave.unseal(&self.sealed_head) {
            Ok(head) => head == self.audit.head().as_bytes(),
            Err(_) => false,
        }
    }

    /// The enclave (for attestation by the customer).
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Test/attack hook: replace the audit log wholesale (simulating an
    /// attacker with storage access).
    #[doc(hidden)]
    pub fn tamper_replace_audit(&mut self, log: AuditLog) {
        self.audit = log;
    }
}

/// One-shot convenience: launch, process a single change-set, return the
/// outcome and the audit log.
pub fn enforce(
    technician: &str,
    production: &Network,
    diff: &ConfigDiff,
    policies: &PolicySet,
    privilege: &PrivilegeMsp,
) -> (EnforcerOutcome, AuditLog) {
    let platform = Platform::new("heimdall-host");
    let mut pipeline = EnforcerPipeline::launch(&platform);
    let outcome = pipeline.process(technician, production, diff, policies, privilege);
    (outcome, pipeline.audit.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::acl::AclAction;
    use heimdall_netmodel::diff::diff_networks;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, Task, TaskKind};
    use heimdall_routing::converge;
    use heimdall_verify::mine::{mine_policies, MinerInput};

    fn setup() -> (Network, Network, PolicySet, PrivilegeMsp) {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        let mut broken = g.net.clone();
        broken
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[1]
            .action = AclAction::Deny;
        let privilege = derive_privileges(
            &broken,
            &Task {
                kind: TaskKind::AccessControl,
                affected: vec!["h4".into(), "srv1".into()],
            },
        );
        (g.net, broken, policies, privilege)
    }

    #[test]
    fn accepted_changes_update_production_and_audit() {
        let (healthy, broken, policies, privilege) = setup();
        let diff = diff_networks(&broken, &healthy);
        let platform = Platform::new("host");
        let mut p = EnforcerPipeline::launch(&platform);
        let outcome = p.process("alice", &broken, &diff, &policies, &privilege);
        assert!(outcome.applied());
        let updated = outcome.updated_production.unwrap();
        // Production is now policy-clean.
        let cp = converge(&updated);
        let rep = heimdall_verify::checker::check_policies(&updated, &cp, &policies);
        assert!(rep.all_hold());
        // Audit recorded submission, verdict, and the applied change.
        assert!(p.audit().len() >= 3);
        assert!(p.verify_audit_integrity());
        assert_eq!(p.audit().of_kind(AuditKind::ChangeApplied).len(), 1);
    }

    #[test]
    fn rejected_changes_leave_production_untouched_but_audited() {
        let (_healthy, broken, policies, privilege) = setup();
        // Out-of-scope change.
        let mut evil = broken.clone();
        evil.device_by_name_mut("bdr1")
            .unwrap()
            .config
            .static_routes
            .clear();
        let diff = diff_networks(&broken, &evil);
        let (outcome, audit) = enforce("mallory", &broken, &diff, &policies, &privilege);
        assert!(!outcome.applied());
        assert!(audit
            .entries
            .iter()
            .any(|e| e.detail.contains("RejectedPrivilege")));
    }

    #[test]
    fn audit_tampering_is_detected_through_the_seal() {
        let (healthy, broken, policies, privilege) = setup();
        let diff = diff_networks(&broken, &healthy);
        let platform = Platform::new("host");
        let mut p = EnforcerPipeline::launch(&platform);
        p.process("alice", &broken, &diff, &policies, &privilege);
        assert!(p.verify_audit_integrity());

        // Attacker rewrites the whole log consistently (valid chain!)...
        let mut forged = AuditLog::new();
        forged.append(AuditKind::Session, "alice", "nothing happened here");
        assert!(forged.verify_chain().is_ok());
        p.tamper_replace_audit(forged);
        // ...but the sealed head no longer matches.
        assert!(!p.verify_audit_integrity());
    }

    #[test]
    fn guarded_commit_applies_and_rejects_stale_rework() {
        let (healthy, broken, policies, privilege) = setup();
        let diff = diff_networks(&broken, &healthy);
        let platform = Platform::new("host");
        let mut p = EnforcerPipeline::launch(&platform);
        let guard = CommitGuard::new(broken.clone());
        let base = guard.record_base(&diff);

        let outcome = p.process_guarded("alice", &guard, &diff, &base, &policies, &privilege);
        assert!(outcome.applied());

        // Replaying the same change-set against its old base is stale:
        // production moved under it.
        let replay = p.process_guarded("alice", &guard, &diff, &base, &policies, &privilege);
        assert!(!replay.applied());
        assert_eq!(
            replay.report.verdict,
            crate::verifier::Verdict::RejectedStale
        );
        assert!(p.verify_audit_integrity());
        // Verification counters: one accepted + one stale rejection.
        assert_eq!(p.verify_total(), 2);
        assert_eq!(p.verify_failures(), 1);
    }

    #[test]
    fn sinks_observe_audit_entries_and_commits_in_epoch_order() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::{Arc, Mutex};

        let (healthy, broken, policies, privilege) = setup();
        let diff = diff_networks(&broken, &healthy);
        let platform = Platform::new("host");
        let mut p = EnforcerPipeline::launch(&platform);
        let entries = Arc::new(AtomicU64::new(0));
        let commits: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let entries = Arc::clone(&entries);
            p.set_audit_sink(Box::new(move |_| {
                entries.fetch_add(1, Ordering::SeqCst);
            }));
        }
        {
            let commits = Arc::clone(&commits);
            p.set_commit_sink(Box::new(move |tech, _, epoch| {
                assert_eq!(tech, "alice");
                commits.lock().unwrap().push(epoch);
            }));
        }
        let guard = CommitGuard::new(broken.clone());
        let base = guard.record_base(&diff);
        let outcome = p.process_guarded("alice", &guard, &diff, &base, &policies, &privilege);
        assert!(outcome.applied());
        assert_eq!(entries.load(Ordering::SeqCst), p.audit().len() as u64);
        assert_eq!(
            &*commits.lock().unwrap(),
            &[1],
            "first commit carries epoch 1"
        );
        assert_eq!(guard.epoch(), 1);
    }

    #[test]
    fn restore_audit_verifies_chain_and_reseals() {
        let (healthy, broken, policies, privilege) = setup();
        let diff = diff_networks(&broken, &healthy);
        let platform = Platform::new("host");
        let mut p = EnforcerPipeline::launch(&platform);
        p.process("alice", &broken, &diff, &policies, &privilege);
        let log = p.audit().clone();
        let sealed = p.sealed_head().clone();

        // A fresh pipeline on the same platform restores the log.
        let mut fresh = EnforcerPipeline::launch(&platform);
        fresh
            .restore_audit(log.clone(), Some(&sealed))
            .expect("restore succeeds");
        assert!(fresh.verify_audit_integrity());
        assert_eq!(fresh.audit().len(), log.len());

        // A tampered chain is rejected on restore.
        let mut bad = log.clone();
        bad.entries[0].detail = "rewritten".into();
        assert!(fresh.restore_audit(bad, None).is_err());

        // A sealed head from a different log is rejected.
        let other = EnforcerPipeline::launch(&platform);
        assert!(fresh.restore_audit(log, Some(other.sealed_head())).is_err());
    }

    #[test]
    fn customer_can_attest_the_enforcer() {
        let platform = Platform::new("host");
        let p = EnforcerPipeline::launch(&platform);
        let report = p.enclave().attest([42u8; 16]);
        let m = platform.verify_report(&report).unwrap();
        assert_eq!(m, p.enclave().measurement());
    }
}
