//! Tamper-evident audit trails: a SHA-256 hash chain over every mediated
//! command, escalation decision, verification verdict, and scheduled
//! change.
//!
//! "The system must audit users' actions and provide tamper-resistant
//! audit trails ... that can be reviewed later to analyze a technician's
//! network modifications." Each entry commits to its predecessor's hash;
//! [`AuditLog::verify_chain`] detects any mutation, insertion, deletion,
//! or reordering. The chain head can additionally be sealed inside the
//! enclave (see [`crate::enclave`]) so the log cannot be silently
//! truncated+regrown by an attacker who controls storage.

use crate::crypto::{hex, sha256, Digest};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of event an entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditKind {
    /// A technician command mediated by the reference monitor.
    Command,
    /// A privilege escalation request and its decision.
    Escalation,
    /// A verification verdict from the enforcer.
    Verification,
    /// A change pushed (or refused) toward production.
    ChangeApplied,
    /// Session lifecycle (open/close).
    Session,
}

/// One chained entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    pub seq: u64,
    pub kind: AuditKind,
    /// Who caused the event.
    pub actor: String,
    /// Free-form description (command text, verdict, change summary).
    pub detail: String,
    /// The telemetry trace this event belongs to, as canonical 16-hex
    /// digits (empty when the event happened outside a traced request).
    /// Covered by the entry hash, so trace attribution is as
    /// tamper-evident as the rest of the record — and joinable with span
    /// trees via `TraceQuery`.
    pub trace: String,
    /// Hex hash of the previous entry (all-zero for the genesis entry).
    pub prev: String,
    /// Hex hash of this entry.
    pub hash: String,
}

impl AuditEntry {
    /// Recomputes what this entry's hash should be.
    fn expected_hash(&self) -> String {
        hex(&entry_digest(
            self.seq,
            self.kind,
            &self.actor,
            &self.detail,
            &self.trace,
            &self.prev,
        ))
    }
}

fn entry_digest(
    seq: u64,
    kind: AuditKind,
    actor: &str,
    detail: &str,
    trace: &str,
    prev: &str,
) -> Digest {
    // Length-prefixed concatenation prevents field-boundary ambiguity.
    let mut buf = Vec::new();
    buf.extend_from_slice(&seq.to_be_bytes());
    let kind_tag = match kind {
        AuditKind::Command => 1u8,
        AuditKind::Escalation => 2,
        AuditKind::Verification => 3,
        AuditKind::ChangeApplied => 4,
        AuditKind::Session => 5,
    };
    buf.push(kind_tag);
    for field in [actor, detail, trace, prev] {
        buf.extend_from_slice(&(field.len() as u64).to_be_bytes());
        buf.extend_from_slice(field.as_bytes());
    }
    sha256(&buf)
}

/// A chain-verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Entry `seq`'s stored hash does not match its contents.
    BadHash { seq: u64 },
    /// Entry `seq` does not link to its predecessor.
    BrokenLink { seq: u64 },
    /// Sequence numbers are not 0..n contiguous.
    BadSequence { seq: u64 },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadHash { seq } => write!(f, "audit entry {seq} content tampered"),
            ChainError::BrokenLink { seq } => write!(f, "audit entry {seq} chain link broken"),
            ChainError::BadSequence { seq } => write!(f, "audit entry {seq} out of sequence"),
        }
    }
}

impl std::error::Error for ChainError {}

/// The append-only audit log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    pub entries: Vec<AuditEntry>,
}

const GENESIS: &str = "0000000000000000000000000000000000000000000000000000000000000000";

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends an event, chaining it to the current head.
    pub fn append(&mut self, kind: AuditKind, actor: &str, detail: &str) -> &AuditEntry {
        self.append_traced(kind, actor, detail, "")
    }

    /// Appends an event carrying a telemetry trace tag (canonical hex
    /// `TraceId`, or empty for untraced events).
    pub fn append_traced(
        &mut self,
        kind: AuditKind,
        actor: &str,
        detail: &str,
        trace: &str,
    ) -> &AuditEntry {
        let seq = self.entries.len() as u64;
        let prev = self
            .entries
            .last()
            .map(|e| e.hash.clone())
            .unwrap_or_else(|| GENESIS.to_string());
        let hash = hex(&entry_digest(seq, kind, actor, detail, trace, &prev));
        self.entries.push(AuditEntry {
            seq,
            kind,
            actor: actor.to_string(),
            detail: detail.to_string(),
            trace: trace.to_string(),
            prev,
            hash,
        });
        self.entries.last().expect("just pushed")
    }

    /// The chain head hash (commitment over the whole log).
    pub fn head(&self) -> String {
        self.entries
            .last()
            .map(|e| e.hash.clone())
            .unwrap_or_else(|| GENESIS.to_string())
    }

    /// Verifies the full chain.
    pub fn verify_chain(&self) -> Result<(), ChainError> {
        let mut prev = GENESIS.to_string();
        for (i, e) in self.entries.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(ChainError::BadSequence { seq: e.seq });
            }
            if e.prev != prev {
                return Err(ChainError::BrokenLink { seq: e.seq });
            }
            if e.hash != e.expected_hash() {
                return Err(ChainError::BadHash { seq: e.seq });
            }
            prev = e.hash.clone();
        }
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one kind (e.g. all denials during review).
    pub fn of_kind(&self, kind: AuditKind) -> Vec<&AuditEntry> {
        self.entries.iter().filter(|e| e.kind == kind).collect()
    }

    /// Entries stamped with a telemetry trace tag (the join key for
    /// `TraceQuery`).
    pub fn for_trace(&self, trace: &str) -> Vec<&AuditEntry> {
        self.entries
            .iter()
            .filter(|e| !trace.is_empty() && e.trace == trace)
            .collect()
    }

    /// Serializes the log (for off-box archival). The chain hashes travel
    /// with the entries, so tampering with the archive is detectable on
    /// reload.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("audit logs serialize")
    }

    /// Reloads an archived log and verifies its chain in one step.
    pub fn from_json(text: &str) -> Result<AuditLog, String> {
        let log: AuditLog = serde_json::from_str(text).map_err(|e| e.to_string())?;
        log.verify_chain().map_err(|e| e.to_string())?;
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditLog {
        let mut log = AuditLog::new();
        log.append(AuditKind::Session, "alice", "session open ticket=TCK-1");
        log.append(
            AuditKind::Command,
            "alice",
            "fw1: show access-lists [allowed]",
        );
        log.append(AuditKind::Command, "alice", "fw1: write erase [DENIED]");
        log.append(
            AuditKind::Verification,
            "enforcer",
            "21 policies, 0 violated",
        );
        log.append(AuditKind::ChangeApplied, "enforcer", "fw1: replace acl 100");
        log
    }

    #[test]
    fn clean_chain_verifies() {
        let log = sample();
        assert_eq!(log.len(), 5);
        assert!(log.verify_chain().is_ok());
        assert_ne!(log.head(), GENESIS);
    }

    #[test]
    fn content_tamper_detected() {
        let mut log = sample();
        log.entries[2].detail = "fw1: write erase [allowed]".to_string();
        assert_eq!(log.verify_chain(), Err(ChainError::BadHash { seq: 2 }));
    }

    #[test]
    fn deletion_detected() {
        let mut log = sample();
        log.entries.remove(1);
        assert!(log.verify_chain().is_err());
    }

    #[test]
    fn reorder_detected() {
        let mut log = sample();
        log.entries.swap(1, 2);
        assert!(log.verify_chain().is_err());
    }

    #[test]
    fn truncation_changes_head() {
        let mut log = sample();
        let head = log.head();
        log.entries.pop();
        assert!(log.verify_chain().is_ok(), "truncation alone verifies...");
        assert_ne!(log.head(), head, "...but the sealed head betrays it");
    }

    #[test]
    fn recompute_after_tamper_breaks_downstream_links() {
        // An attacker who rewrites an entry AND recomputes its hash still
        // breaks the next entry's prev pointer.
        let mut log = sample();
        log.entries[1].detail = "innocent".to_string();
        log.entries[1].hash = log.entries[1].expected_hash();
        assert_eq!(log.verify_chain(), Err(ChainError::BrokenLink { seq: 2 }));
    }

    #[test]
    fn kind_filter() {
        let log = sample();
        assert_eq!(log.of_kind(AuditKind::Command).len(), 2);
        assert_eq!(log.of_kind(AuditKind::Escalation).len(), 0);
    }

    #[test]
    fn json_archive_round_trips_and_rejects_tampering() {
        let log = sample();
        let archived = log.to_json();
        let restored = AuditLog::from_json(&archived).expect("clean archive loads");
        assert_eq!(restored.entries, log.entries);
        // An attacker editing the archive text is caught on load.
        let tampered = archived.replace("write erase", "routine check");
        assert!(AuditLog::from_json(&tampered).is_err());
        // Malformed JSON is a plain error, not a panic.
        assert!(AuditLog::from_json("{not json").is_err());
    }

    #[test]
    fn trace_tag_is_covered_by_the_chain() {
        let mut log = AuditLog::new();
        log.append_traced(AuditKind::Session, "alice", "open", "00000000deadbeef");
        log.append(AuditKind::Command, "alice", "untraced");
        assert!(log.verify_chain().is_ok());
        assert_eq!(log.for_trace("00000000deadbeef").len(), 1);
        assert!(log.for_trace("").is_empty(), "empty tag never joins");
        // Rewriting the trace attribution breaks the chain.
        log.entries[0].trace = "00000000cafef00d".into();
        assert_eq!(log.verify_chain(), Err(ChainError::BadHash { seq: 0 }));
    }

    #[test]
    fn empty_log_is_valid() {
        let log = AuditLog::new();
        assert!(log.verify_chain().is_ok());
        assert_eq!(log.head(), GENESIS);
        assert!(log.is_empty());
    }
}
