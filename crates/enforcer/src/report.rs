//! Incident reports: the customer-facing record of an engagement.
//!
//! The paper's trustworthiness story ends with review: "tamper-resistant
//! audit trails ... can be reviewed later to analyze a technician's
//! network modifications." This module renders an engagement — verdict,
//! changes, rollout plan, audit excerpt, integrity status — as a Markdown
//! document a customer's security team would file with the ticket.

use crate::audit::AuditLog;
use crate::scheduler::Schedule;
use crate::verifier::EnforcementReport;
use heimdall_netmodel::diff::ConfigDiff;
use std::fmt::Write as _;

/// Everything that goes into an incident report.
pub struct IncidentReport<'a> {
    pub ticket_id: &'a str,
    pub technician: &'a str,
    pub summary: &'a str,
    pub changes: &'a ConfigDiff,
    pub enforcement: &'a EnforcementReport,
    pub schedule: Option<&'a Schedule>,
    pub audit: &'a AuditLog,
}

impl IncidentReport<'_> {
    /// Renders the report as Markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "# Incident report — {}", self.ticket_id);
        let _ = writeln!(w);
        let _ = writeln!(w, "- technician: `{}`", self.technician);
        let _ = writeln!(w, "- summary: {}", self.summary);
        let _ = writeln!(
            w,
            "- enforcement verdict: **{:?}**",
            self.enforcement.verdict
        );
        let _ = writeln!(
            w,
            "- audit chain: {} entries, integrity {}",
            self.audit.len(),
            if self.audit.verify_chain().is_ok() {
                "VERIFIED"
            } else {
                "**BROKEN**"
            }
        );
        let _ = writeln!(w);

        let _ = writeln!(w, "## Changes ({})", self.changes.len());
        for c in &self.changes.changes {
            let _ = writeln!(w, "- {}", c.summary());
        }
        let _ = writeln!(w);

        if !self.enforcement.privilege_violations.is_empty() {
            let _ = writeln!(w, "## Privilege violations");
            for (s, d) in &self.enforcement.privilege_violations {
                let _ = writeln!(w, "- {s} ({d:?})");
            }
            let _ = writeln!(w);
        }
        if !self.enforcement.differential.newly_violated.is_empty() {
            let _ = writeln!(w, "## Policies the change-set would have violated");
            for id in &self.enforcement.differential.newly_violated {
                let _ = writeln!(w, "- `{id}`");
            }
            let _ = writeln!(w);
        }
        if !self.enforcement.differential.newly_fixed.is_empty() {
            let _ = writeln!(w, "## Policies restored");
            for id in &self.enforcement.differential.newly_fixed {
                let _ = writeln!(w, "- `{id}`");
            }
            let _ = writeln!(w);
        }
        if !self.enforcement.new_lint_errors.is_empty() {
            let _ = writeln!(w, "## Structural errors introduced");
            for e in &self.enforcement.new_lint_errors {
                let _ = writeln!(w, "- {e}");
            }
            let _ = writeln!(w);
        }

        if let Some(plan) = self.schedule {
            let _ = writeln!(w, "## Rollout plan ({} steps)", plan.steps.len());
            for (i, step) in plan.steps.iter().enumerate() {
                let _ = writeln!(w, "{}. {}", i + 1, step.summary());
            }
            if plan.is_hitless() {
                let _ = writeln!(w, "\nRollout simulated hitless.");
            } else {
                let _ = writeln!(
                    w,
                    "\n**{} transient violation(s) during rollout**:",
                    plan.transient_count()
                );
                for (step, ids) in &plan.transient_violations {
                    let _ = writeln!(w, "- after step {}: {ids:?}", step + 1);
                }
            }
            let _ = writeln!(w);
        }

        let _ = writeln!(w, "## Audit trail");
        for e in &self.audit.entries {
            let _ = writeln!(
                w,
                "| {} | {:?} | {} | {} |",
                e.seq, e.kind, e.actor, e.detail
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditKind;
    use crate::pipeline::enforce;
    use heimdall_netmodel::acl::AclAction;
    use heimdall_netmodel::diff::diff_networks;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, Task, TaskKind};
    use heimdall_routing::converge;
    use heimdall_verify::mine::{mine_policies, MinerInput};

    #[test]
    fn renders_accepted_engagement() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        let mut broken = g.net.clone();
        broken
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[1]
            .action = AclAction::Deny;
        let privilege = derive_privileges(
            &broken,
            &Task {
                kind: TaskKind::AccessControl,
                affected: vec!["h4".into(), "srv1".into()],
            },
        );
        let diff = diff_networks(&broken, &g.net);
        let (outcome, audit) = enforce("alice", &broken, &diff, &policies, &privilege);
        let report = IncidentReport {
            ticket_id: "TCK-ACL",
            technician: "alice",
            summary: "h4 cannot reach srv1; fw1 acl 100 line 2 restored",
            changes: &diff,
            enforcement: &outcome.report,
            schedule: outcome.schedule.as_ref(),
            audit: &audit,
        };
        let md = report.render();
        assert!(md.contains("# Incident report — TCK-ACL"));
        assert!(md.contains("verdict: **Accepted**"));
        assert!(md.contains("integrity VERIFIED"));
        assert!(md.contains("## Changes (1)"));
        assert!(md.contains("replace acl 100"));
        assert!(md.contains("## Rollout plan (1 steps)"));
        assert!(md.contains("Rollout simulated hitless."));
        assert!(md.contains("## Policies restored"));
        assert!(md.contains("## Audit trail"));
    }

    #[test]
    fn renders_rejection_with_reasons() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        let privilege = heimdall_privilege::model::PrivilegeMsp::new();
        let mut evil = g.net.clone();
        evil.device_by_name_mut("bdr1")
            .unwrap()
            .config
            .static_routes
            .clear();
        let diff = diff_networks(&g.net, &evil);
        let (outcome, audit) = enforce("mallory", &g.net, &diff, &policies, &privilege);
        let report = IncidentReport {
            ticket_id: "TCK-X",
            technician: "mallory",
            summary: "rejected",
            changes: &diff,
            enforcement: &outcome.report,
            schedule: outcome.schedule.as_ref(),
            audit: &audit,
        };
        let md = report.render();
        assert!(md.contains("RejectedPrivilege"));
        assert!(md.contains("## Privilege violations"));
        assert!(!md.contains("## Rollout plan"));
        let _ = AuditKind::Command;
    }
}
