//! Consistent-update scheduling: ordering accepted changes so that
//! production never passes through a bad intermediate state.
//!
//! The paper: "it is also challenging to import changes into the production
//! network (e.g., updating routers in the wrong order can result in
//! inconsistent behavior)". Two strategies live here:
//!
//! - [`schedule`] — dependency-aware: definitions before references
//!   (create an ACL before binding it), make-before-break for routes
//!   (additions before removals), enables before disables;
//! - [`naive_schedule`] — the change-set in diff order, the ablation
//!   baseline.
//!
//! Both simulate the rollout step by step — apply one change, re-converge,
//! re-check policies — and report *transient* violations: policies broken
//! at an intermediate step but intact at both ends.

use heimdall_netmodel::diff::{ConfigChange, ConfigDiff};
use heimdall_netmodel::topology::Network;
use heimdall_routing::converge;
use heimdall_verify::checker::check_policies;
use heimdall_verify::policy::PolicySet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A planned rollout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// The changes, in application order.
    pub steps: Vec<ConfigChange>,
    /// Per-step transient violations: policy ids violated *after* that step
    /// but violated in neither the initial nor the final state.
    pub transient_violations: Vec<(usize, Vec<String>)>,
}

impl Schedule {
    /// Total count of transient violation incidents across the rollout.
    pub fn transient_count(&self) -> usize {
        self.transient_violations.iter().map(|(_, v)| v.len()).sum()
    }

    /// Whether the rollout is hitless.
    pub fn is_hitless(&self) -> bool {
        self.transient_violations.is_empty()
    }
}

/// Rank in the dependency order (lower applies first).
fn rank(change: &ConfigChange) -> u8 {
    use ConfigChange::*;
    match change {
        AddInterface { .. } | UpsertVlan { .. } => 0,
        // Definitions before references.
        ReplaceAcl { .. } => 1,
        SetSwitchport { .. }
        | SetInterfaceAddress { .. }
        | SetBandwidth { .. }
        | SetDescription { .. }
        | SetOspfCost { .. } => 2,
        SetInterfaceEnabled { enabled: true, .. } => 3,
        // Make-before-break: new paths first.
        AddStaticRoute { .. } | SetOspf { .. } | SetBgp { .. } => 4,
        SetRawGlobals { .. } | ReplaceSecrets { .. } => 4,
        SetInterfaceAcl { .. } => 5,
        RemoveStaticRoute { .. } => 6,
        SetInterfaceEnabled { enabled: false, .. } => 7,
        RemoveAcl { .. } => 8,
        RemoveVlan { .. } | RemoveInterface { .. } => 9,
    }
}

/// Plans a dependency-aware rollout and simulates it.
pub fn schedule(production: &Network, diff: &ConfigDiff, policies: &PolicySet) -> Schedule {
    let mut steps = diff.changes.clone();
    // Stable sort keeps diff order within a rank (deterministic).
    steps.sort_by_key(rank);
    simulate(production, steps, policies)
}

/// Applies the diff in its original order and simulates it (the strawman).
pub fn naive_schedule(production: &Network, diff: &ConfigDiff, policies: &PolicySet) -> Schedule {
    simulate(production, diff.changes.clone(), policies)
}

/// Simulates a rollout: converge + check after every step, then subtract
/// violations present in the initial or final state (those are not
/// *transient*).
fn simulate(production: &Network, steps: Vec<ConfigChange>, policies: &PolicySet) -> Schedule {
    // Violations at the endpoints are excluded from "transient".
    let initial = violated_ids(production, policies);
    let mut net = production.clone();
    let mut per_step: Vec<BTreeSet<String>> = Vec::with_capacity(steps.len());
    for change in &steps {
        let dev = net
            .device_by_name_mut(change.device())
            .expect("verified change-set targets existing devices");
        change
            .apply(&mut dev.config)
            .expect("verified change-set applies");
        per_step.push(violated_ids(&net, policies));
    }
    let fin = per_step.last().cloned().unwrap_or_else(|| initial.clone());
    let transient_violations = per_step
        .iter()
        .enumerate()
        .filter_map(|(i, v)| {
            let t: Vec<String> = v
                .iter()
                .filter(|id| !initial.contains(*id) && !fin.contains(*id))
                .cloned()
                .collect();
            (!t.is_empty()).then_some((i, t))
        })
        .collect();
    Schedule {
        steps,
        transient_violations,
    }
}

fn violated_ids(net: &Network, policies: &PolicySet) -> BTreeSet<String> {
    let cp = converge(net);
    check_policies(net, &cp, policies)
        .violations()
        .into_iter()
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::diff::diff_networks;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_netmodel::proto::StaticRoute;
    use heimdall_verify::mine::{mine_policies, MinerInput};

    fn policies_for(net: &Network, meta: &heimdall_netmodel::gen::GenMeta) -> PolicySet {
        let cp = converge(net);
        mine_policies(net, &cp, &MinerInput::from_meta(meta))
    }

    /// A change-set that swaps bdr1's default route next hop (same ISP,
    /// renumbered peer): one removal + one addition.
    fn route_swap() -> (Network, Network, heimdall_netmodel::gen::GenMeta) {
        let g = enterprise_network();
        let mut after = g.net.clone();
        {
            let bdr1 = after.device_by_name_mut("bdr1").unwrap();
            bdr1.config.interface_mut("Gi0/9").unwrap().address = Some(
                heimdall_netmodel::iface::InterfaceAddress::new("203.0.113.2".parse().unwrap(), 30),
            );
            bdr1.config.static_routes.clear();
            bdr1.config
                .static_routes
                .push(StaticRoute::default_via("203.0.113.1".parse().unwrap()));
        }
        (g.net, after, g.meta)
    }

    #[test]
    fn dependency_order_definitions_first() {
        let g = enterprise_network();
        let mut after = g.net.clone();
        // New ACL on dist1 + binding on an interface.
        {
            let dist1 = after.device_by_name_mut("dist1").unwrap();
            dist1.config.upsert_acl(
                heimdall_netmodel::acl::Acl::new("150")
                    .entry(heimdall_netmodel::acl::AclEntry::permit_any()),
            );
            dist1.config.interface_mut("Gi0/0").unwrap().acl_in = Some("150".to_string());
        }
        let diff = diff_networks(&g.net, &after);
        let policies = policies_for(&g.net, &g.meta);
        let plan = schedule(&g.net, &diff, &policies);
        let acl_pos = plan
            .steps
            .iter()
            .position(|c| matches!(c, ConfigChange::ReplaceAcl { .. }))
            .unwrap();
        let bind_pos = plan
            .steps
            .iter()
            .position(|c| matches!(c, ConfigChange::SetInterfaceAcl { .. }))
            .unwrap();
        assert!(acl_pos < bind_pos, "define before bind: {:?}", plan.steps);
    }

    #[test]
    fn make_before_break_avoids_transients() {
        let (before, after, meta) = route_swap();
        let policies = policies_for(&before, &meta);
        let diff = diff_networks(&before, &after);
        // diff_configs emits removals before additions for static routes,
        // so the naive order breaks the default route mid-rollout...
        let naive = naive_schedule(&before, &diff, &policies);
        // ...but whether that is *observable* depends on a policy touching
        // the default route. The mined set has only internal policies, so
        // craft one reaching the upstream subnet via an external probe.
        // Instead, assert the planned order itself.
        let plan = schedule(&before, &diff, &policies);
        let add = plan
            .steps
            .iter()
            .position(|c| matches!(c, ConfigChange::AddStaticRoute { .. }))
            .unwrap();
        let del = plan
            .steps
            .iter()
            .position(|c| matches!(c, ConfigChange::RemoveStaticRoute { .. }))
            .unwrap();
        assert!(add < del, "make before break: {:?}", plan.steps);
        let nadd = naive
            .steps
            .iter()
            .position(|c| matches!(c, ConfigChange::AddStaticRoute { .. }))
            .unwrap();
        let ndel = naive
            .steps
            .iter()
            .position(|c| matches!(c, ConfigChange::RemoveStaticRoute { .. }))
            .unwrap();
        assert!(ndel < nadd, "naive keeps diff order");
    }

    #[test]
    fn transient_violation_detected_in_naive_order() {
        // Break-then-make on the *internal* fabric where mined policies
        // watch: move acc1's uplink addressing. Removing the address first
        // strands LAN1 (transient); adding first is hitless... acc1 is
        // single-homed so *any* order causes a transient here; what we
        // check is that the simulator reports it.
        let g = enterprise_network();
        let policies = policies_for(&g.net, &g.meta);
        let mut after = g.net.clone();
        {
            // Shut the uplink and re-enable it: two steps through a dark
            // middle state.
            let acc1 = after.device_by_name_mut("acc1").unwrap();
            acc1.config.interface_mut("Gi0/0").unwrap().ospf_cost = Some(7);
        }
        // Construct an artificial two-step plan: shutdown, then cost, then
        // no-shutdown — the middle steps are dark.
        let steps = vec![
            ConfigChange::SetInterfaceEnabled {
                device: "acc1".into(),
                iface: "Gi0/0".into(),
                enabled: false,
            },
            ConfigChange::SetOspfCost {
                device: "acc1".into(),
                iface: "Gi0/0".into(),
                cost: Some(7),
            },
            ConfigChange::SetInterfaceEnabled {
                device: "acc1".into(),
                iface: "Gi0/0".into(),
                enabled: true,
            },
        ];
        let plan = simulate(&g.net, steps, &policies);
        assert!(!plan.is_hitless());
        // The dark window spans steps 0 and 1 (LAN1 unreachable).
        assert!(plan.transient_violations.iter().any(|(i, _)| *i == 0));
        let total = plan.transient_count();
        assert!(total > 0, "LAN1 policies must flicker, got {total}");
    }

    #[test]
    fn hitless_single_change_is_hitless() {
        let g = enterprise_network();
        let policies = policies_for(&g.net, &g.meta);
        let mut after = g.net.clone();
        after
            .device_by_name_mut("core1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .description = Some("relabeled".to_string());
        let diff = diff_networks(&g.net, &after);
        let plan = schedule(&g.net, &diff, &policies);
        assert!(plan.is_hitless());
        assert_eq!(plan.steps.len(), 1);
    }

    #[test]
    fn empty_diff_schedules_empty() {
        let g = enterprise_network();
        let policies = policies_for(&g.net, &g.meta);
        let plan = schedule(&g.net, &ConfigDiff::default(), &policies);
        assert!(plan.steps.is_empty());
        assert!(plan.is_hitless());
    }
}
