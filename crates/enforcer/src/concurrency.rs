//! Optimistic concurrency for change-set imports.
//!
//! MSPs run many technicians; two twins opened from the same production
//! state can race. The enforcer serializes imports and rejects any
//! change-set whose *base* no longer matches production on the devices it
//! touches — the technician must re-open a twin from current state (real
//! change-management calls this a stale work order).
//!
//! The base is identified by a fingerprint: SHA-256 over the printed
//! configurations of the devices the diff touches. Fingerprinting only the
//! touched devices lets unrelated tickets land concurrently.

use crate::crypto::{hex, Sha256};
use heimdall_netmodel::diff::ConfigDiff;
use heimdall_netmodel::printer::print_config;
use heimdall_netmodel::topology::Network;

/// Fingerprint of the named devices' configurations (sorted, so the same
/// set yields the same digest regardless of order).
pub fn devices_fingerprint(net: &Network, devices: &[&str]) -> String {
    let mut names: Vec<&str> = devices.to_vec();
    names.sort_unstable();
    names.dedup();
    let mut h = Sha256::new();
    for name in names {
        h.update(name.as_bytes());
        h.update(&[0]);
        if let Some(d) = net.device_by_name(name) {
            h.update(print_config(&d.config).as_bytes());
        } else {
            h.update(b"<absent>");
        }
        h.update(&[0xff]);
    }
    hex(&h.finalize())
}

/// Fingerprint of exactly the devices a diff touches.
pub fn base_fingerprint(net: &Network, diff: &ConfigDiff) -> String {
    devices_fingerprint(net, &diff.devices())
}

/// Whether a change-set's recorded base still matches production.
pub fn base_matches(net: &Network, diff: &ConfigDiff, recorded: &str) -> bool {
    base_fingerprint(net, diff) == recorded
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::diff::{diff_networks, ConfigChange};
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn fingerprint_stable_and_order_independent() {
        let g = enterprise_network();
        let a = devices_fingerprint(&g.net, &["fw1", "acc1"]);
        let b = devices_fingerprint(&g.net, &["acc1", "fw1", "acc1"]);
        assert_eq!(a, b);
        assert_ne!(a, devices_fingerprint(&g.net, &["fw1"]));
    }

    #[test]
    fn touched_device_change_invalidates_base() {
        let g = enterprise_network();
        let mut after = g.net.clone();
        after
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .interface_mut("Gi0/3")
            .unwrap()
            .description = Some("changed".into());
        let diff = diff_networks(&g.net, &after);
        let base = base_fingerprint(&g.net, &diff);
        assert!(base_matches(&g.net, &diff, &base));
        // Someone else edits fw1 first.
        let mut raced = g.net.clone();
        raced
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .static_routes
            .push(heimdall_netmodel::proto::StaticRoute::default_via(
                "10.255.0.1".parse().unwrap(),
            ));
        assert!(!base_matches(&raced, &diff, &base));
    }

    #[test]
    fn untouched_device_changes_do_not_invalidate() {
        let g = enterprise_network();
        let diff = ConfigDiff {
            changes: vec![ConfigChange::SetDescription {
                device: "fw1".into(),
                iface: "Gi0/3".into(),
                description: Some("x".into()),
            }],
        };
        let base = base_fingerprint(&g.net, &diff);
        // A concurrent ticket edits acc3 — unrelated; fw1's base holds.
        let mut other = g.net.clone();
        other
            .device_by_name_mut("acc3")
            .unwrap()
            .config
            .interface_mut("Gi0/3")
            .unwrap()
            .enabled = false;
        assert!(base_matches(&other, &diff, &base));
    }

    #[test]
    fn absent_device_fingerprints_distinctly() {
        let g = enterprise_network();
        let a = devices_fingerprint(&g.net, &["ghost"]);
        let b = devices_fingerprint(&g.net, &["fw1"]);
        assert_ne!(a, b);
    }
}
