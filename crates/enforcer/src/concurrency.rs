//! Optimistic concurrency for change-set imports.
//!
//! MSPs run many technicians; two twins opened from the same production
//! state can race. The enforcer serializes imports and rejects any
//! change-set whose *base* no longer matches production on the devices it
//! touches — the technician must re-open a twin from current state (real
//! change-management calls this a stale work order).
//!
//! The base is identified by a fingerprint: SHA-256 over the printed
//! configurations of the devices the diff touches. Fingerprinting only the
//! touched devices lets unrelated tickets land concurrently.

use crate::crypto::{hex, Sha256};
use heimdall_netmodel::diff::{ConfigChange, ConfigDiff};
use heimdall_netmodel::printer::print_config;
use heimdall_netmodel::topology::Network;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fingerprint of the named devices' configurations (sorted, so the same
/// set yields the same digest regardless of order).
pub fn devices_fingerprint(net: &Network, devices: &[&str]) -> String {
    let mut names: Vec<&str> = devices.to_vec();
    names.sort_unstable();
    names.dedup();
    let mut h = Sha256::new();
    for name in names {
        h.update(name.as_bytes());
        h.update(&[0]);
        if let Some(d) = net.device_by_name(name) {
            h.update(print_config(&d.config).as_bytes());
        } else {
            h.update(b"<absent>");
        }
        h.update(&[0xff]);
    }
    hex(&h.finalize())
}

/// Fingerprint of exactly the devices a diff touches.
pub fn base_fingerprint(net: &Network, diff: &ConfigDiff) -> String {
    devices_fingerprint(net, &diff.devices())
}

/// Whether a change-set's recorded base still matches production.
pub fn base_matches(net: &Network, diff: &ConfigDiff, recorded: &str) -> bool {
    base_fingerprint(net, diff) == recorded
}

/// Whether every config *object* `diff` writes is identical between
/// `baseline` (the state the twin was opened from) and `current`.
///
/// The device-level base fingerprint is deliberately coarse: any change
/// to a touched device makes a change-set stale. This is the fine-grained
/// question a retry policy needs — if the intervening commits only
/// touched *other* objects on the same devices (a different ACL, another
/// interface), the diff still composes and can be safely re-based; if
/// they touched the same object, re-applying would silently clobber them
/// (a lost update), and the change-set must go back to the technician.
pub fn diff_composes(baseline: &Network, current: &Network, diff: &ConfigDiff) -> bool {
    diff.changes
        .iter()
        .all(|c| change_target_unchanged(baseline, current, c))
}

/// Whether the specific object one change writes is identical in both
/// networks.
fn change_target_unchanged(baseline: &Network, current: &Network, change: &ConfigChange) -> bool {
    use ConfigChange::*;
    let dev = change.device();
    let (b, c) = match (baseline.device_by_name(dev), current.device_by_name(dev)) {
        (Some(b), Some(c)) => (&b.config, &c.config),
        (None, None) => return true,
        _ => return false,
    };
    match change {
        AddInterface { iface, .. } => b.interface(&iface.name) == c.interface(&iface.name),
        RemoveInterface { iface, .. }
        | SetInterfaceAddress { iface, .. }
        | SetInterfaceEnabled { iface, .. }
        | SetInterfaceAcl { iface, .. }
        | SetSwitchport { iface, .. }
        | SetOspfCost { iface, .. }
        | SetBandwidth { iface, .. }
        | SetDescription { iface, .. } => b.interface(iface) == c.interface(iface),
        ReplaceAcl { name, .. } | RemoveAcl { name, .. } => b.acls.get(name) == c.acls.get(name),
        // Static routes have set semantics, so adds/removes of *distinct*
        // routes commute; the conflict unit is the one route's membership.
        // Add-vs-add of the same route (or add-vs-remove) flips it and is
        // caught here.
        AddStaticRoute { route, .. } | RemoveStaticRoute { route, .. } => {
            b.static_routes.contains(route) == c.static_routes.contains(route)
        }
        SetOspf { .. } => b.ospf == c.ospf,
        SetBgp { .. } => b.bgp == c.bgp,
        UpsertVlan { vlan, .. } => b.vlans.get(&vlan.id) == c.vlans.get(&vlan.id),
        RemoveVlan { vlan, .. } => b.vlans.get(vlan) == c.vlans.get(vlan),
        SetRawGlobals { .. } => b.raw_globals == c.raw_globals,
        ReplaceSecrets { .. } => b.secrets == c.secrets,
    }
}

/// Outcome of a [`CommitGuard::commit`] attempt.
#[derive(Debug)]
pub enum CommitAttempt<R> {
    /// The base still matched; the apply closure ran and, if it produced
    /// an updated network, production was replaced.
    Committed { result: R, applied: bool },
    /// The base fingerprint no longer matched production on the touched
    /// devices; the apply closure never ran.
    Stale { current_base: String },
}

impl<R> CommitAttempt<R> {
    /// The closure's result, if the base check passed.
    pub fn into_result(self) -> Option<R> {
        match self {
            CommitAttempt::Committed { result, .. } => Some(result),
            CommitAttempt::Stale { .. } => None,
        }
    }

    pub fn is_stale(&self) -> bool {
        matches!(self, CommitAttempt::Stale { .. })
    }
}

/// Serializes commits against one shared production network.
///
/// `base_matches` followed by a separate apply is a check-then-act race:
/// two technicians whose diffs touch the same device can both pass the
/// check against the same base, then clobber each other. `CommitGuard`
/// closes the window by holding production behind one lock for the whole
/// *check → verify/apply → install* sequence:
///
/// 1. a technician records the base fingerprint when the twin opens
///    ([`CommitGuard::record_base`] / [`CommitGuard::open_base`]);
/// 2. at commit time the fingerprint is re-checked **under the lock**;
/// 3. only if it still matches does the apply closure run, and its
///    updated network (if any) is installed before the lock drops.
///
/// Unrelated tickets still land concurrently in the logical sense —
/// staleness is judged per touched-device fingerprint — but each
/// installation is serialized, so no accepted change-set is ever lost.
pub struct CommitGuard {
    production: Mutex<Network>,
    /// Bumped (under the production lock) every time a commit installs an
    /// updated network. Lets callers tag derived state — caches, twins —
    /// with the production version it was computed from and detect that
    /// production has moved without re-fingerprinting anything.
    epoch: AtomicU64,
}

impl CommitGuard {
    /// Wraps a production network for guarded commits.
    pub fn new(production: Network) -> CommitGuard {
        CommitGuard {
            production: Mutex::new(production),
            epoch: AtomicU64::new(0),
        }
    }

    /// Wraps a *recovered* production network, resuming the epoch
    /// counter where the pre-crash guard left off so derived state
    /// (privilege caches, journal records) keeps a monotonic version
    /// history across restarts.
    pub fn new_at_epoch(production: Network, epoch: u64) -> CommitGuard {
        CommitGuard {
            production: Mutex::new(production),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// A point-in-time copy of production (to slice a twin from).
    pub fn snapshot(&self) -> Network {
        self.production.lock().clone()
    }

    /// The current production epoch (number of applied commits).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Snapshot plus the epoch it was taken at, in one lock acquisition —
    /// the pair is guaranteed consistent, unlike separate `snapshot()` /
    /// `epoch()` calls.
    pub fn snapshot_with_epoch(&self) -> (Network, u64) {
        let prod = self.production.lock();
        (prod.clone(), self.epoch.load(Ordering::SeqCst))
    }

    /// Records the base fingerprint for a change-set shaped like `diff`.
    pub fn record_base(&self, diff: &ConfigDiff) -> String {
        base_fingerprint(&self.production.lock(), diff)
    }

    /// Snapshot + fingerprint of the named devices in one lock
    /// acquisition — the base a technician opens a twin against.
    pub fn open_base(&self, devices: &[&str]) -> (Network, String) {
        let prod = self.production.lock();
        (prod.clone(), devices_fingerprint(&prod, devices))
    }

    /// Reads production under the lock.
    pub fn with_production<R>(&self, f: impl FnOnce(&Network) -> R) -> R {
        f(&self.production.lock())
    }

    /// One atomic commit attempt: re-checks `recorded_base` under the
    /// lock, and only if it still matches runs `apply` on current
    /// production. `apply` returns its result plus an optional updated
    /// network; `Some` replaces production before the lock is released.
    pub fn commit<R>(
        &self,
        diff: &ConfigDiff,
        recorded_base: &str,
        apply: impl FnOnce(&Network) -> (R, Option<Network>),
    ) -> CommitAttempt<R> {
        self.commit_with_epoch(diff, recorded_base, |prod, _| apply(prod))
    }

    /// Like [`CommitGuard::commit`], but the apply closure also receives
    /// the epoch this commit will carry *if* it installs an update (the
    /// current epoch + 1, read under the production lock). Durability
    /// layers journal the commit under that epoch while the lock is
    /// still held, so journal order can never disagree with epoch order.
    pub fn commit_with_epoch<R>(
        &self,
        diff: &ConfigDiff,
        recorded_base: &str,
        apply: impl FnOnce(&Network, u64) -> (R, Option<Network>),
    ) -> CommitAttempt<R> {
        let mut prod = self.production.lock();
        let current_base = base_fingerprint(&prod, diff);
        if current_base != recorded_base {
            return CommitAttempt::Stale { current_base };
        }
        let next_epoch = self.epoch.load(Ordering::SeqCst) + 1;
        let (result, updated) = apply(&prod, next_epoch);
        let applied = updated.is_some();
        if let Some(next) = updated {
            *prod = next;
            self.epoch.store(next_epoch, Ordering::SeqCst);
        }
        CommitAttempt::Committed { result, applied }
    }

    /// Consumes the guard, returning final production.
    pub fn into_production(self) -> Network {
        self.production.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::diff::{diff_networks, ConfigChange};
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn fingerprint_stable_and_order_independent() {
        let g = enterprise_network();
        let a = devices_fingerprint(&g.net, &["fw1", "acc1"]);
        let b = devices_fingerprint(&g.net, &["acc1", "fw1", "acc1"]);
        assert_eq!(a, b);
        assert_ne!(a, devices_fingerprint(&g.net, &["fw1"]));
    }

    #[test]
    fn touched_device_change_invalidates_base() {
        let g = enterprise_network();
        let mut after = g.net.clone();
        after
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .interface_mut("Gi0/3")
            .unwrap()
            .description = Some("changed".into());
        let diff = diff_networks(&g.net, &after);
        let base = base_fingerprint(&g.net, &diff);
        assert!(base_matches(&g.net, &diff, &base));
        // Someone else edits fw1 first.
        let mut raced = g.net.clone();
        raced
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .static_routes
            .push(heimdall_netmodel::proto::StaticRoute::default_via(
                "10.255.0.1".parse().unwrap(),
            ));
        assert!(!base_matches(&raced, &diff, &base));
    }

    #[test]
    fn untouched_device_changes_do_not_invalidate() {
        let g = enterprise_network();
        let diff = ConfigDiff {
            changes: vec![ConfigChange::SetDescription {
                device: "fw1".into(),
                iface: "Gi0/3".into(),
                description: Some("x".into()),
            }],
        };
        let base = base_fingerprint(&g.net, &diff);
        // A concurrent ticket edits acc3 — unrelated; fw1's base holds.
        let mut other = g.net.clone();
        other
            .device_by_name_mut("acc3")
            .unwrap()
            .config
            .interface_mut("Gi0/3")
            .unwrap()
            .enabled = false;
        assert!(base_matches(&other, &diff, &base));
    }

    #[test]
    fn absent_device_fingerprints_distinctly() {
        let g = enterprise_network();
        let a = devices_fingerprint(&g.net, &["ghost"]);
        let b = devices_fingerprint(&g.net, &["fw1"]);
        assert_ne!(a, b);
    }

    fn description_diff(device: &str, text: &str) -> ConfigDiff {
        ConfigDiff {
            changes: vec![ConfigChange::SetDescription {
                device: device.into(),
                iface: "Gi0/3".into(),
                description: Some(text.into()),
            }],
        }
    }

    #[test]
    fn compose_check_distinguishes_object_level_conflicts() {
        let g = enterprise_network();
        let baseline = g.net.clone();

        // An intervening commit edits a *different* object on fw1 (a
        // static route); a diff writing Gi0/3's description still
        // composes even though the device-level fingerprint moved.
        let mut routed = g.net.clone();
        routed
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .static_routes
            .push(heimdall_netmodel::proto::StaticRoute::default_via(
                "10.255.0.1".parse().unwrap(),
            ));
        let desc_diff = description_diff("fw1", "mine");
        assert!(!base_matches(
            &routed,
            &desc_diff,
            &base_fingerprint(&baseline, &desc_diff)
        ));
        assert!(diff_composes(&baseline, &routed, &desc_diff));

        // Routes are set-semantic: adding a *different* route still
        // composes even though the route list moved...
        let other_route = ConfigDiff {
            changes: vec![ConfigChange::AddStaticRoute {
                device: "fw1".into(),
                route: heimdall_netmodel::proto::StaticRoute::default_via(
                    "10.9.9.9".parse().unwrap(),
                ),
            }],
        };
        assert!(diff_composes(&baseline, &routed, &other_route));
        // ...but re-adding the route the intervening commit just added
        // (membership flipped) is a conflict.
        let same_route = ConfigDiff {
            changes: vec![ConfigChange::AddStaticRoute {
                device: "fw1".into(),
                route: heimdall_netmodel::proto::StaticRoute::default_via(
                    "10.255.0.1".parse().unwrap(),
                ),
            }],
        };
        assert!(!diff_composes(&baseline, &routed, &same_route));

        // Same-object edit conflicts too.
        let mut redescribed = g.net.clone();
        redescribed
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .interface_mut("Gi0/3")
            .unwrap()
            .description = Some("theirs".into());
        assert!(!diff_composes(&baseline, &redescribed, &desc_diff));
        // Identical networks always compose.
        assert!(diff_composes(&baseline, &baseline, &desc_diff));
    }

    #[test]
    fn epoch_advances_only_on_applied_commits() {
        let g = enterprise_network();
        let guard = CommitGuard::new(g.net.clone());
        assert_eq!(guard.epoch(), 0);

        let diff = description_diff("fw1", "v1");
        let base = guard.record_base(&diff);
        // A commit that applies nothing leaves the epoch alone.
        guard.commit(&diff, &base, |_| ((), None));
        assert_eq!(guard.epoch(), 0);
        // An installed update bumps it.
        guard.commit(&diff, &base, |prod| {
            let mut next = prod.clone();
            next.device_by_name_mut("fw1")
                .unwrap()
                .config
                .interface_mut("Gi0/3")
                .unwrap()
                .description = Some("v1".into());
            ((), Some(next))
        });
        assert_eq!(guard.epoch(), 1);
        let (_, epoch) = guard.snapshot_with_epoch();
        assert_eq!(epoch, 1);
    }

    #[test]
    fn guard_commits_fresh_base_and_installs_update() {
        let g = enterprise_network();
        let guard = CommitGuard::new(g.net.clone());
        let diff = description_diff("fw1", "fresh");
        let base = guard.record_base(&diff);
        let attempt = guard.commit(&diff, &base, |prod| {
            let mut next = prod.clone();
            next.device_by_name_mut("fw1")
                .unwrap()
                .config
                .interface_mut("Gi0/3")
                .unwrap()
                .description = Some("fresh".into());
            ((), Some(next))
        });
        assert!(matches!(
            attempt,
            CommitAttempt::Committed { applied: true, .. }
        ));
        let fw1 = guard.snapshot();
        let desc = fw1
            .device_by_name("fw1")
            .unwrap()
            .config
            .interface("Gi0/3")
            .unwrap()
            .description
            .clone();
        assert_eq!(desc.as_deref(), Some("fresh"));
    }

    #[test]
    fn guard_rejects_stale_base_without_running_apply() {
        let g = enterprise_network();
        let guard = CommitGuard::new(g.net.clone());
        let diff = description_diff("fw1", "mine");
        let base = guard.record_base(&diff);

        // A racing ticket lands on fw1 first.
        let racing = description_diff("fw1", "theirs");
        let racing_base = guard.record_base(&racing);
        guard
            .commit(&racing, &racing_base, |prod| {
                let mut next = prod.clone();
                next.device_by_name_mut("fw1")
                    .unwrap()
                    .config
                    .interface_mut("Gi0/3")
                    .unwrap()
                    .description = Some("theirs".into());
                ((), Some(next))
            })
            .into_result()
            .expect("racing commit is fresh");

        let mut ran = false;
        let attempt = guard.commit(&diff, &base, |_| {
            ran = true;
            ((), None)
        });
        assert!(attempt.is_stale());
        assert!(!ran, "apply must not run on a stale base");
    }

    #[test]
    fn guard_interleaved_commits_from_threads_never_lose_updates() {
        use std::sync::Arc;

        let g = enterprise_network();
        let guard = Arc::new(CommitGuard::new(g.net.clone()));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let guard = Arc::clone(&guard);
                std::thread::spawn(move || {
                    // Each thread retries until its description lands.
                    loop {
                        let diff = description_diff("fw1", &format!("t{i}"));
                        let base = guard.record_base(&diff);
                        let attempt = guard.commit(&diff, &base, |prod| {
                            let mut next = prod.clone();
                            let iface = next
                                .device_by_name_mut("fw1")
                                .unwrap()
                                .config
                                .interface_mut("Gi0/3")
                                .unwrap();
                            let prev = iface.description.take().unwrap_or_default();
                            iface.description = Some(format!("{prev}+t{i}"));
                            ((), Some(next))
                        });
                        if !attempt.is_stale() {
                            break;
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let final_net = guard.snapshot();
        let desc = final_net
            .device_by_name("fw1")
            .unwrap()
            .config
            .interface("Gi0/3")
            .unwrap()
            .description
            .clone()
            .unwrap();
        // All eight commits appended exactly once.
        for i in 0..8 {
            assert_eq!(
                desc.matches(&format!("t{i}")).count(),
                1,
                "thread {i} landed exactly once in {desc:?}"
            );
        }
    }
}
