//! Minimal cryptographic substrate: SHA-256 and HMAC-SHA-256, implemented
//! from the FIPS 180-4 / RFC 2104 specifications.
//!
//! The enforcer needs integrity primitives for two things the paper calls
//! out — tamper-resistant audit trails and enclave-sealed state — and the
//! approved offline dependency set has no crypto crate, so we implement the
//! two primitives here and validate them against published test vectors.
//! (This is an integrity substrate for a research prototype, not a
//! hardened implementation: no key zeroization, no constant-time
//! guarantees.)

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A SHA-256 digest.
pub type Digest = [u8; 32];

/// Incremental SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    h: [u32; 8],
    /// Pending block bytes.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state (FIPS 180-4 initial values).
    pub fn new() -> Self {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes, returning the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length is appended outside update() accounting.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (i, v) in [a, b, c, d, e, f, g, h].into_iter().enumerate() {
            self.h[i] = self.h[i].wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut s = Sha256::new();
    s.update(data);
    s.finalize()
}

/// HMAC-SHA-256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Hex rendering of a digest.
pub fn hex(d: &Digest) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_exactly_64_bytes() {
        let data = [0x61u8; 64]; // "a" * 64
        assert_eq!(
            hex(&sha256(&data)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let one = sha256(&data);
        for chunk in [1usize, 3, 7, 63, 64, 65, 999] {
            let mut s = Sha256::new();
            for c in data.chunks(chunk) {
                s.update(c);
            }
            assert_eq!(s.finalize(), one, "chunk size {chunk}");
        }
    }

    // RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hmac_distinct_keys_distinct_macs() {
        let m = b"message";
        assert_ne!(hmac_sha256(b"k1", m), hmac_sha256(b"k2", m));
        assert_ne!(hmac_sha256(b"k1", m), hmac_sha256(b"k1", b"other"));
    }
}
