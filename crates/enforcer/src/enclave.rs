//! A simulated trusted execution environment.
//!
//! The paper runs the policy enforcer inside an Intel SGX enclave "which
//! provides strong security guarantees (e.g., data integrity) with a small
//! trusted computing base". No SGX hardware is available here, so this
//! module simulates the enclave *interface* the enforcer programs against —
//! measurement-based identity, remote attestation reports, and sealed
//! storage — with HMAC-SHA-256 standing in for the CPU's key-derivation
//! hardware. The substitution preserves exactly the properties the
//! enforcer's code path relies on:
//!
//! - state sealed by one enclave identity cannot be unsealed (or forged)
//!   under another measurement;
//! - an attestation report binds a nonce to the enclave's measurement and
//!   is unforgeable without the (simulated) platform key;
//! - tampered sealed blobs are rejected.

use crate::crypto::{hex, hmac_sha256, sha256};
use serde::{Deserialize, Serialize};

/// The enclave's code identity (MRENCLAVE analog): a digest of the code
/// the enclave was launched with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Measures "code" (here: an identity string naming enforcer+version).
    pub fn of(code: &str) -> Self {
        Measurement(sha256(code.as_bytes()))
    }
}

/// Current sealed-blob format version. Blobs carrying any other value
/// are rejected with [`EnclaveError::UnsupportedVersion`] — a future
/// format change (e.g. adding confidentiality) can never be misparsed
/// as today's integrity-only layout.
pub const SEALED_BLOB_VERSION: u8 = 1;

/// A sealed blob: ciphertext-free integrity sealing (data + MAC under a
/// measurement-derived key). Confidential sealing would add an XOR-pad
/// here; the enforcer's guarantees only need integrity. The version
/// byte is covered by the MAC, so it cannot be rewritten to smuggle a
/// blob past a newer parser.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBlob {
    version: u8,
    pub data: Vec<u8>,
    mac: [u8; 32],
}

impl SealedBlob {
    /// The format version this blob claims.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Test/diagnostic hook: forge the version byte (the MAC is left
    /// untouched, so unsealing must fail closed).
    pub fn override_version_for_test(&mut self, version: u8) {
        self.version = version;
    }
}

/// An attestation report: binds a caller nonce to the enclave measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationReport {
    pub measurement: Measurement,
    pub nonce: [u8; 16],
    mac: [u8; 32],
}

/// Errors from enclave operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// The sealed blob failed integrity verification.
    SealBroken,
    /// The attestation report failed verification.
    BadReport,
    /// The sealed blob declares a format version this code does not
    /// understand; refusing beats misparsing.
    UnsupportedVersion(u8),
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::SealBroken => write!(f, "sealed state failed integrity check"),
            EnclaveError::BadReport => write!(f, "attestation report invalid"),
            EnclaveError::UnsupportedVersion(v) => {
                write!(f, "sealed blob version {v} not supported")
            }
        }
    }
}

impl std::error::Error for EnclaveError {}

/// The simulated platform: holds the "fused" platform key the real CPU
/// would keep in hardware.
#[derive(Debug, Clone)]
pub struct Platform {
    platform_key: [u8; 32],
}

impl Platform {
    /// A platform with a fixed simulated fuse key derived from a seed.
    pub fn new(seed: &str) -> Self {
        Platform {
            platform_key: sha256(format!("platform-fuse:{seed}").as_bytes()),
        }
    }

    /// Launches an enclave with the given code identity.
    pub fn launch(&self, code: &str) -> Enclave {
        let measurement = Measurement::of(code);
        // Seal key = KDF(platform key, measurement): different code ->
        // different keys, like SGX's MRENCLAVE-bound sealing.
        let seal_key = hmac_sha256(&self.platform_key, &measurement.0);
        let report_key = hmac_sha256(&self.platform_key, b"report-key");
        Enclave {
            measurement,
            seal_key,
            report_key,
        }
    }

    /// Verifies an attestation report (the role of the attestation
    /// service): checks the MAC and returns the attested measurement.
    pub fn verify_report(&self, report: &AttestationReport) -> Result<Measurement, EnclaveError> {
        let report_key = hmac_sha256(&self.platform_key, b"report-key");
        let mut msg = Vec::new();
        msg.extend_from_slice(&report.measurement.0);
        msg.extend_from_slice(&report.nonce);
        if hmac_sha256(&report_key, &msg) != report.mac {
            return Err(EnclaveError::BadReport);
        }
        Ok(report.measurement)
    }
}

/// A launched enclave instance.
#[derive(Debug, Clone)]
pub struct Enclave {
    measurement: Measurement,
    seal_key: [u8; 32],
    report_key: [u8; 32],
}

impl Enclave {
    /// The enclave's measurement.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Seals data to this enclave identity.
    pub fn seal(&self, data: &[u8]) -> SealedBlob {
        let mut msg = Vec::with_capacity(1 + data.len());
        msg.push(SEALED_BLOB_VERSION);
        msg.extend_from_slice(data);
        SealedBlob {
            version: SEALED_BLOB_VERSION,
            data: data.to_vec(),
            mac: hmac_sha256(&self.seal_key, &msg),
        }
    }

    /// Unseals, verifying format version, integrity and identity.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, EnclaveError> {
        if blob.version != SEALED_BLOB_VERSION {
            return Err(EnclaveError::UnsupportedVersion(blob.version));
        }
        let mut msg = Vec::with_capacity(1 + blob.data.len());
        msg.push(blob.version);
        msg.extend_from_slice(&blob.data);
        if hmac_sha256(&self.seal_key, &msg) != blob.mac {
            return Err(EnclaveError::SealBroken);
        }
        Ok(blob.data.clone())
    }

    /// Produces an attestation report over a caller-supplied nonce.
    pub fn attest(&self, nonce: [u8; 16]) -> AttestationReport {
        let mut msg = Vec::new();
        msg.extend_from_slice(&self.measurement.0);
        msg.extend_from_slice(&nonce);
        AttestationReport {
            measurement: self.measurement,
            nonce,
            mac: hmac_sha256(&self.report_key, &msg),
        }
    }

    /// Hex form of the measurement (for audit entries).
    pub fn measurement_hex(&self) -> String {
        hex(&self.measurement.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let platform = Platform::new("test");
        let enclave = platform.launch("heimdall-enforcer-v1");
        let blob = enclave.seal(b"audit-head:abcd");
        assert_eq!(enclave.unseal(&blob).unwrap(), b"audit-head:abcd");
    }

    #[test]
    fn tampered_blob_rejected() {
        let platform = Platform::new("test");
        let enclave = platform.launch("heimdall-enforcer-v1");
        let mut blob = enclave.seal(b"audit-head:abcd");
        blob.data[0] ^= 0xff;
        assert_eq!(enclave.unseal(&blob), Err(EnclaveError::SealBroken));
    }

    #[test]
    fn unknown_sealed_version_rejected_with_typed_error() {
        let platform = Platform::new("test");
        let enclave = platform.launch("heimdall-enforcer-v1");
        let mut blob = enclave.seal(b"audit-head:abcd");
        blob.override_version_for_test(7);
        assert_eq!(
            enclave.unseal(&blob),
            Err(EnclaveError::UnsupportedVersion(7))
        );
        // Restoring the version byte restores unsealing: the MAC still
        // matches because it covers (version, data) as sealed.
        blob.override_version_for_test(SEALED_BLOB_VERSION);
        assert_eq!(enclave.unseal(&blob).unwrap(), b"audit-head:abcd");
    }

    #[test]
    fn different_code_cannot_unseal() {
        let platform = Platform::new("test");
        let good = platform.launch("heimdall-enforcer-v1");
        let evil = platform.launch("heimdall-enforcer-v1-backdoored");
        let blob = good.seal(b"secret state");
        assert_eq!(evil.unseal(&blob), Err(EnclaveError::SealBroken));
        assert_ne!(good.measurement(), evil.measurement());
    }

    #[test]
    fn attestation_verifies_and_binds_nonce() {
        let platform = Platform::new("test");
        let enclave = platform.launch("heimdall-enforcer-v1");
        let report = enclave.attest([7u8; 16]);
        let m = platform.verify_report(&report).unwrap();
        assert_eq!(m, enclave.measurement());
        // Replay under a different nonce fails.
        let mut forged = report.clone();
        forged.nonce = [8u8; 16];
        assert_eq!(
            platform.verify_report(&forged),
            Err(EnclaveError::BadReport)
        );
    }

    #[test]
    fn forged_measurement_rejected() {
        let platform = Platform::new("test");
        let enclave = platform.launch("heimdall-enforcer-v1");
        let mut report = enclave.attest([1u8; 16]);
        report.measurement = Measurement::of("innocent-looking-code");
        assert_eq!(
            platform.verify_report(&report),
            Err(EnclaveError::BadReport)
        );
    }

    #[test]
    fn cross_platform_reports_rejected() {
        let p1 = Platform::new("machine-1");
        let p2 = Platform::new("machine-2");
        let enclave = p1.launch("heimdall-enforcer-v1");
        let report = enclave.attest([2u8; 16]);
        assert!(p1.verify_report(&report).is_ok());
        assert_eq!(p2.verify_report(&report), Err(EnclaveError::BadReport));
    }
}
