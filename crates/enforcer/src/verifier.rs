//! Change-set verification: the gate between the twin and production.
//!
//! Two independent checks, both of which must pass:
//!
//! 1. **Privilege compliance** — every [`ConfigChange`] is classified to a
//!    `(Action, Resource)` request and evaluated against the ticket's
//!    `Privilege_msp`. The twin's reference monitor already mediated the
//!    *commands*, but the enforcer re-derives compliance from the *effects*
//!    (defense in depth: a compromised twin cannot smuggle changes).
//! 2. **Policy safety** — the changes are applied to a copy of production,
//!    the copy is re-converged, and the mined network policies are checked
//!    differentially. Changes that newly violate any policy are rejected
//!    (this is what catches Figure 6's malicious extra ACL entry).

use heimdall_netmodel::diff::{ConfigChange, ConfigDiff};
use heimdall_netmodel::lint::{lint_at_least, Severity};
use heimdall_netmodel::topology::Network;
use heimdall_privilege::eval::{evaluate, Decision};
use heimdall_privilege::model::{Action, PrivilegeMsp, Resource};
use heimdall_verify::differential::{differential_check, DifferentialReport};
use heimdall_verify::policy::PolicySet;
use serde::{Deserialize, Serialize};

/// Classifies a configuration change as a privilege request.
pub fn classify_change(change: &ConfigChange) -> (Action, Resource) {
    use ConfigChange::*;
    let dev = |d: &str| Resource::Device(d.to_string());
    let ifr = |d: &str, i: &str| Resource::Interface {
        device: d.to_string(),
        iface: i.to_string(),
    };
    let aclr = |d: &str, n: &str| Resource::Acl {
        device: d.to_string(),
        name: n.to_string(),
    };
    match change {
        SetInterfaceEnabled { device, iface, .. }
        | AddInterface {
            device,
            iface: heimdall_netmodel::iface::Interface { name: iface, .. },
        }
        | RemoveInterface { device, iface }
        | SetBandwidth { device, iface, .. }
        | SetDescription { device, iface, .. } => {
            (Action::ModifyInterfaceState, ifr(device, iface))
        }
        SetInterfaceAddress { device, iface, .. } => (Action::ModifyIpAddress, ifr(device, iface)),
        SetInterfaceAcl { device, acl, .. } => (
            Action::ModifyAcl,
            aclr(device, acl.as_deref().unwrap_or("*")),
        ),
        SetSwitchport { device, iface, .. } => (Action::ModifyVlan, ifr(device, iface)),
        SetOspfCost { device, .. } | SetOspf { device, .. } => (Action::ModifyOspf, dev(device)),
        ReplaceAcl { device, name, .. } | RemoveAcl { device, name } => {
            (Action::ModifyAcl, aclr(device, name))
        }
        AddStaticRoute { device, .. } | RemoveStaticRoute { device, .. } => {
            (Action::ModifyRoute, dev(device))
        }
        SetBgp { device, .. } => (Action::ModifyBgp, dev(device)),
        UpsertVlan { device, .. } | RemoveVlan { device, .. } => (Action::ModifyVlan, dev(device)),
        // Global lines and credentials are the most privileged surface.
        SetRawGlobals { device, .. } | ReplaceSecrets { device, .. } => {
            (Action::ModifyCredentials, dev(device))
        }
    }
}

/// The enforcer's verdict on a change-set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Safe to schedule into production.
    Accepted,
    /// At least one change exceeded the technician's privileges.
    RejectedPrivilege,
    /// At least one network policy would be newly violated.
    RejectedPolicy,
    /// The change-set introduces a structural error (dangling ACL
    /// reference, duplicate address, ...) that behavioral checks cannot
    /// see but that cannot match anyone's intent.
    RejectedLint,
    /// The change-set was prepared against a production state that has
    /// since changed on the touched devices (stale work order; re-open
    /// the twin).
    RejectedStale,
}

/// The full verification result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnforcementReport {
    pub verdict: Verdict,
    /// Changes that exceeded privileges: `(summary, decision)`.
    pub privilege_violations: Vec<(String, Decision)>,
    /// Differential policy outcome of applying the change-set.
    pub differential: DifferentialReport,
    /// Structural errors the change-set would introduce.
    pub new_lint_errors: Vec<String>,
}

impl EnforcementReport {
    /// Whether the change-set may proceed to the scheduler.
    pub fn accepted(&self) -> bool {
        self.verdict == Verdict::Accepted
    }
}

/// Verifies a change-set against privileges and policies.
///
/// Returns the report plus the patched network (so an accepted change-set
/// can be scheduled without re-applying).
pub fn verify_changes(
    production: &Network,
    diff: &ConfigDiff,
    policies: &PolicySet,
    privilege: &PrivilegeMsp,
) -> (EnforcementReport, Option<Network>) {
    // 1. Privilege compliance per change.
    let mut privilege_violations = Vec::new();
    for change in &diff.changes {
        let (action, resource) = classify_change(change);
        let decision = evaluate(privilege, action, &resource);
        if !decision.is_allowed() {
            privilege_violations.push((change.summary(), decision));
        }
    }
    if !privilege_violations.is_empty() {
        return (
            EnforcementReport {
                verdict: Verdict::RejectedPrivilege,
                privilege_violations,
                differential: DifferentialReport::default(),
                new_lint_errors: Vec::new(),
            },
            None,
        );
    }

    // 2. Structural sanity: the patched network must not introduce
    //    error-level lint findings (a dangling ACL reference *behaves*
    //    like "no ACL", so the policy check alone would wave it through).
    let mut patched = production.clone();
    if let Err(e) = diff.apply_to_network(&mut patched) {
        return (
            EnforcementReport {
                verdict: Verdict::RejectedPolicy,
                privilege_violations: vec![(
                    format!("change-set does not apply: {e}"),
                    Decision::DeniedDefault,
                )],
                differential: DifferentialReport::default(),
                new_lint_errors: Vec::new(),
            },
            None,
        );
    }
    let baseline_errors: std::collections::BTreeSet<String> =
        lint_at_least(production, Severity::Error)
            .into_iter()
            .map(|f| f.to_string())
            .collect();
    let new_lint_errors: Vec<String> = lint_at_least(&patched, Severity::Error)
        .into_iter()
        .map(|f| f.to_string())
        .filter(|f| !baseline_errors.contains(f))
        .collect();
    if !new_lint_errors.is_empty() {
        return (
            EnforcementReport {
                verdict: Verdict::RejectedLint,
                privilege_violations,
                differential: DifferentialReport::default(),
                new_lint_errors,
            },
            None,
        );
    }

    // 3. Policy safety, differentially.
    let (differential, _, _) = differential_check(production, &patched, policies);
    let verdict = if differential.is_safe() {
        Verdict::Accepted
    } else {
        Verdict::RejectedPolicy
    };
    let accepted = verdict == Verdict::Accepted;
    (
        EnforcementReport {
            verdict,
            privilege_violations,
            differential,
            new_lint_errors,
        },
        accepted.then_some(patched),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::acl::AclAction;
    use heimdall_netmodel::diff::diff_networks;
    use heimdall_netmodel::diff::AclDirection;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, Task, TaskKind};
    use heimdall_routing::converge;
    use heimdall_verify::mine::{mine_policies, MinerInput};

    /// The standing fixture: production broken by the Figure 6 misconfig,
    /// policies mined from the healthy network.
    struct Fixture {
        healthy: Network,
        broken: Network,
        policies: PolicySet,
        privilege: PrivilegeMsp,
    }

    fn fixture() -> Fixture {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        let mut broken = g.net.clone();
        broken
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[1]
            .action = AclAction::Deny;
        let task = Task {
            kind: TaskKind::AccessControl,
            affected: vec!["h4".into(), "srv1".into()],
        };
        let privilege = derive_privileges(&broken, &task);
        Fixture {
            healthy: g.net,
            broken,
            policies,
            privilege,
        }
    }

    #[test]
    fn legitimate_fix_is_accepted() {
        let f = fixture();
        // The fix restores the healthy fw1 config.
        let diff = diff_networks(&f.broken, &f.healthy);
        assert_eq!(diff.len(), 1);
        let (report, patched) = verify_changes(&f.broken, &diff, &f.policies, &f.privilege);
        assert!(report.accepted(), "{report:?}");
        assert!(report.differential.fully_fixed());
        assert!(patched.is_some());
    }

    #[test]
    fn malicious_extra_permit_is_rejected_by_policy() {
        let f = fixture();
        // Fix the rule AND add a permit h2-subnet -> LAN3 (sensitive h7).
        let mut evil = f.healthy.clone();
        {
            let acc3 = evil.device_by_name_mut("acc3").unwrap();
            let acl = acc3.config.acls.get_mut("120").unwrap();
            acl.entries.insert(
                0,
                heimdall_netmodel::acl::AclEntry::simple(
                    AclAction::Permit,
                    heimdall_netmodel::acl::Proto::Any,
                    "10.1.1.0/24".parse().unwrap(),
                    "10.1.3.0/24".parse().unwrap(),
                ),
            );
        }
        let diff = diff_networks(&f.broken, &evil);
        // Mallory needs acl rights on acc3 for this test: grant them so the
        // *policy* layer is what catches it.
        let mut privilege = f.privilege.clone();
        privilege
            .predicates
            .push(heimdall_privilege::model::Predicate::allow(
                Action::ModifyAcl,
                heimdall_privilege::model::ResourcePattern::Device("acc3".into()),
            ));
        let (report, patched) = verify_changes(&f.broken, &diff, &f.policies, &privilege);
        assert_eq!(report.verdict, Verdict::RejectedPolicy);
        assert!(report
            .differential
            .newly_violated
            .iter()
            .any(|id| id.contains("LAN1") && id.contains("LAN3")));
        assert!(patched.is_none());
    }

    #[test]
    fn out_of_privilege_change_is_rejected_first() {
        let f = fixture();
        // A change on bdr1 (not in the task's relevant set).
        let mut evil = f.broken.clone();
        evil.device_by_name_mut("bdr1")
            .unwrap()
            .config
            .static_routes
            .clear();
        let diff = diff_networks(&f.broken, &evil);
        let (report, patched) = verify_changes(&f.broken, &diff, &f.policies, &f.privilege);
        assert_eq!(report.verdict, Verdict::RejectedPrivilege);
        assert_eq!(report.privilege_violations.len(), 1);
        assert!(report.privilege_violations[0].0.contains("bdr1"));
        assert!(patched.is_none());
    }

    #[test]
    fn dangling_acl_binding_rejected_by_lint_gate() {
        // Binding a nonexistent ACL behaves like "no ACL" (fails open!),
        // so the policy check alone would accept it. The lint gate must
        // not.
        let f = fixture();
        let diff = ConfigDiff {
            changes: vec![ConfigChange::SetInterfaceAcl {
                device: "fw1".into(),
                iface: "Gi0/3".into(),
                direction: AclDirection::Out,
                acl: Some("no-such-acl".into()),
            }],
        };
        let mut privilege = f.privilege.clone();
        privilege
            .predicates
            .push(heimdall_privilege::model::Predicate::allow(
                Action::ModifyAcl,
                heimdall_privilege::model::ResourcePattern::Acl {
                    device: "fw1".into(),
                    name: "*".into(),
                },
            ));
        let (report, patched) = verify_changes(&f.broken, &diff, &f.policies, &privilege);
        assert_eq!(report.verdict, Verdict::RejectedLint, "{report:?}");
        assert!(report
            .new_lint_errors
            .iter()
            .any(|e| e.contains("no-such-acl")));
        assert!(patched.is_none());
    }

    #[test]
    fn credential_changes_classified_most_privileged() {
        let c = ConfigChange::ReplaceSecrets {
            device: "fw1".into(),
            secrets: Default::default(),
        };
        let (a, r) = classify_change(&c);
        assert_eq!(a, Action::ModifyCredentials);
        assert_eq!(r, Resource::Device("fw1".into()));
    }

    #[test]
    fn empty_diff_is_trivially_accepted() {
        let f = fixture();
        let diff = ConfigDiff::default();
        let (report, patched) = verify_changes(&f.broken, &diff, &f.policies, &f.privilege);
        assert!(report.accepted());
        // Note: an empty diff still "applies"; the broken policies remain
        // violated but nothing is *newly* violated.
        assert!(report.differential.is_safe());
        assert!(!report.differential.fully_fixed());
        assert!(patched.is_some());
    }

    #[test]
    fn classification_covers_every_change_kind() {
        use heimdall_netmodel::iface::Interface;
        let cases: Vec<ConfigChange> = vec![
            ConfigChange::AddInterface {
                device: "d".into(),
                iface: Interface::new("e0"),
            },
            ConfigChange::RemoveInterface {
                device: "d".into(),
                iface: "e0".into(),
            },
            ConfigChange::SetInterfaceAddress {
                device: "d".into(),
                iface: "e0".into(),
                address: None,
            },
            ConfigChange::SetInterfaceEnabled {
                device: "d".into(),
                iface: "e0".into(),
                enabled: true,
            },
            ConfigChange::SetInterfaceAcl {
                device: "d".into(),
                iface: "e0".into(),
                direction: AclDirection::In,
                acl: None,
            },
            ConfigChange::SetSwitchport {
                device: "d".into(),
                iface: "e0".into(),
                mode: None,
            },
            ConfigChange::SetOspfCost {
                device: "d".into(),
                iface: "e0".into(),
                cost: None,
            },
            ConfigChange::SetBandwidth {
                device: "d".into(),
                iface: "e0".into(),
                kbps: 1,
            },
            ConfigChange::SetDescription {
                device: "d".into(),
                iface: "e0".into(),
                description: None,
            },
            ConfigChange::ReplaceAcl {
                device: "d".into(),
                name: "1".into(),
                entries: vec![],
            },
            ConfigChange::RemoveAcl {
                device: "d".into(),
                name: "1".into(),
            },
            ConfigChange::AddStaticRoute {
                device: "d".into(),
                route: heimdall_netmodel::proto::StaticRoute::default_via(
                    "1.1.1.1".parse().unwrap(),
                ),
            },
            ConfigChange::RemoveStaticRoute {
                device: "d".into(),
                route: heimdall_netmodel::proto::StaticRoute::default_via(
                    "1.1.1.1".parse().unwrap(),
                ),
            },
            ConfigChange::SetOspf {
                device: "d".into(),
                ospf: None,
            },
            ConfigChange::SetBgp {
                device: "d".into(),
                bgp: None,
            },
            ConfigChange::UpsertVlan {
                device: "d".into(),
                vlan: heimdall_netmodel::vlan::Vlan::new(1),
            },
            ConfigChange::RemoveVlan {
                device: "d".into(),
                vlan: 1,
            },
            ConfigChange::SetRawGlobals {
                device: "d".into(),
                lines: vec![],
            },
            ConfigChange::ReplaceSecrets {
                device: "d".into(),
                secrets: Default::default(),
            },
        ];
        for c in cases {
            let (_, r) = classify_change(&c);
            assert_eq!(r.device(), "d", "{c:?}");
        }
    }
}
