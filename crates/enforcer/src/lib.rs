//! # heimdall-enforcer
//!
//! The policy enforcer — the paper's third component, sitting "between the
//! twin network and the production network to mediate accesses and
//! eliminate policy violations":
//!
//! - [`verifier`] — checks a technician's change-set against the ticket's
//!   `Privilege_msp` *and* the mined network policies (differentially)
//!   before anything touches production;
//! - [`scheduler`] — orders accepted changes for consistent rollout and
//!   simulates the rollout step-by-step, reporting transient violations;
//! - [`audit`] — a SHA-256 hash-chained, tamper-evident audit trail over
//!   every mediated command, verdict, and applied change;
//! - [`enclave`] — a simulated SGX-style TEE (measurement, attestation,
//!   sealing) that the enforcer's state and audit head live inside;
//! - [`crypto`] — the SHA-256 / HMAC-SHA-256 substrate (test-vector
//!   validated), since no crypto crate is in the approved dependency set;
//! - [`pipeline`] — the one-call composition: verify → schedule → apply →
//!   audit, returning the updated production network;
//! - [`concurrency`] — optimistic base-fingerprint checks serializing
//!   racing technicians;
//! - [`report`] — customer-facing Markdown incident reports.
//!
//! ```
//! use heimdall_enforcer::audit::{AuditKind, AuditLog};
//!
//! let mut log = AuditLog::new();
//! log.append(AuditKind::Session, "alice", "session open");
//! log.append(AuditKind::Command, "alice", "fw1: show access-lists [allowed]");
//! assert!(log.verify_chain().is_ok());
//!
//! // Any rewrite breaks the chain.
//! log.entries[1].detail = "nothing happened".to_string();
//! assert!(log.verify_chain().is_err());
//! ```

pub mod audit;
pub mod concurrency;
pub mod crypto;
pub mod enclave;
pub mod forensics;
pub mod pipeline;
pub mod report;
pub mod scheduler;
pub mod verifier;

pub use audit::{AuditKind, AuditLog};
pub use enclave::{Enclave, Platform};
pub use forensics::{review, ForensicsSummary};
pub use pipeline::{enforce, EnforcerOutcome, EnforcerPipeline};
pub use report::IncidentReport;
pub use scheduler::{naive_schedule, schedule, Schedule};
pub use verifier::{verify_changes, EnforcementReport, Verdict};
