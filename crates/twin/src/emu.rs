//! The emulation layer: an in-process simulated network with lazy
//! re-convergence.
//!
//! Each technician edit mutates configs and invalidates the converged
//! control plane; the next `ping`/`show ip route` re-converges. The
//! convergence counter feeds the ablation bench comparing verify-per-action
//! against verify-at-import.

use heimdall_dataplane::{DataPlane, Flow, Trace};
use heimdall_netmodel::topology::Network;
use heimdall_routing::{converge, ControlPlane};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Read-only operational counters for one emulated device — the payload
/// of a mediated `show counters` monitoring poll.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceCounters {
    pub device: String,
    /// Administratively up interfaces.
    pub if_up: u64,
    pub if_total: u64,
    /// Installed routes (RIB size after convergence).
    pub fib_routes: u64,
    /// Configured ACL entries across all ACLs.
    pub acl_entries: u64,
    /// Flows this emulation dropped on one of the device's ACLs.
    pub acl_hits: u64,
}

/// A simulated network: configs plus (lazily) converged control plane.
#[derive(Debug, Clone)]
pub struct EmulatedNetwork {
    net: Network,
    cp: Option<ControlPlane>,
    converge_count: usize,
    /// Per-device count of traced flows dropped by that device's ACLs.
    acl_hits: HashMap<String, u64>,
}

impl EmulatedNetwork {
    /// Wraps a network (typically a sanitized twin slice).
    pub fn new(net: Network) -> Self {
        EmulatedNetwork {
            net,
            cp: None,
            converge_count: 0,
            acl_hits: HashMap::new(),
        }
    }

    /// Read access to the emulated network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access; invalidates the converged state.
    pub fn network_mut(&mut self) -> &mut Network {
        self.cp = None;
        &mut self.net
    }

    /// The converged control plane, recomputing if stale.
    pub fn control_plane(&mut self) -> &ControlPlane {
        if self.cp.is_none() {
            self.cp = Some(converge(&self.net));
            self.converge_count += 1;
        }
        self.cp.as_ref().expect("just converged")
    }

    /// How many times this emulation has had to converge (work metric).
    pub fn converge_count(&self) -> usize {
        self.converge_count
    }

    /// Traces a flow from the named device (converging first if needed).
    pub fn trace_from(&mut self, device: &str, flow: &Flow) -> Option<Trace> {
        let idx = self.net.idx(device).ok()?;
        self.control_plane();
        let cp = self.cp.as_ref().expect("converged above");
        let dp = DataPlane::new(&self.net, cp);
        let trace = dp.trace(idx, flow);
        if let Some((dropper, _, _)) = trace.disposition.acl_hit() {
            *self.acl_hits.entry(dropper.to_string()).or_insert(0) += 1;
        }
        Some(trace)
    }

    /// The operational counters of `device` (converging first so route
    /// counts reflect the current configs); `None` for unknown devices.
    pub fn device_counters(&mut self, device: &str) -> Option<DeviceCounters> {
        let idx = self.net.idx(device).ok()?;
        let (if_up, if_total, acl_entries) = {
            let cfg = &self.net.device(idx).config;
            (
                cfg.interfaces.iter().filter(|i| i.is_up()).count() as u64,
                cfg.interfaces.len() as u64,
                cfg.acls.values().map(|a| a.entries.len() as u64).sum(),
            )
        };
        self.control_plane();
        let fib_routes = self.cp.as_ref().expect("converged above").route_count(idx) as u64;
        Some(DeviceCounters {
            device: device.to_string(),
            if_up,
            if_total,
            fib_routes,
            acl_entries,
            acl_hits: self.acl_hits.get(device).copied().unwrap_or(0),
        })
    }

    /// Strong reachability from the named device.
    pub fn reachable_from(&mut self, device: &str, flow: &Flow) -> bool {
        let Ok(idx) = self.net.idx(device) else {
            return false;
        };
        self.control_plane();
        let cp = self.cp.as_ref().expect("converged above");
        let dp = DataPlane::new(&self.net, cp);
        dp.reachable(idx, flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn lazy_convergence_counts_work() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        assert_eq!(emu.converge_count(), 0);
        emu.control_plane();
        emu.control_plane();
        assert_eq!(emu.converge_count(), 1, "second call hits the cache");
        emu.network_mut(); // any mutation invalidates
        emu.control_plane();
        assert_eq!(emu.converge_count(), 2);
    }

    #[test]
    fn trace_uses_current_state() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let flow = Flow::probe("10.1.1.10".parse().unwrap(), "10.2.1.10".parse().unwrap());
        assert!(emu.reachable_from("h1", &flow));
        // Shut acc1's uplink; reachability must flip after re-convergence.
        emu.network_mut()
            .device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .enabled = false;
        assert!(!emu.reachable_from("h1", &flow));
    }

    #[test]
    fn device_counters_track_interfaces_routes_and_acl_hits() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let fw1 = emu.device_counters("fw1").expect("fw1 exists");
        assert_eq!(fw1.device, "fw1");
        assert!(fw1.if_total >= fw1.if_up && fw1.if_up > 0);
        assert!(fw1.fib_routes > 0, "converged RIB must not be empty");
        assert!(fw1.acl_entries > 0, "fw1 carries ACL 100");
        assert_eq!(fw1.acl_hits, 0, "no flows traced yet");
        assert!(emu.device_counters("ghost").is_none());

        // A flow fw1's ACL denies must bump exactly fw1's hit counter.
        use heimdall_netmodel::acl::AclAction;
        emu.network_mut()
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[1]
            .action = AclAction::Deny;
        let flow = Flow::probe("10.1.2.10".parse().unwrap(), "10.2.1.10".parse().unwrap());
        let trace = emu.trace_from("h4", &flow).unwrap();
        assert!(trace.disposition.acl_hit().is_some(), "{trace:?}");
        assert_eq!(emu.device_counters("fw1").unwrap().acl_hits, 1);
        assert_eq!(emu.device_counters("h4").unwrap().acl_hits, 0);
    }

    #[test]
    fn trace_from_unknown_device_is_none() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let flow = Flow::probe("10.1.1.10".parse().unwrap(), "10.2.1.10".parse().unwrap());
        assert!(emu.trace_from("ghost", &flow).is_none());
    }
}
