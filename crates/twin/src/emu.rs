//! The emulation layer: an in-process simulated network with lazy
//! re-convergence.
//!
//! Each technician edit mutates configs and invalidates the converged
//! control plane; the next `ping`/`show ip route` re-converges. The
//! convergence counter feeds the ablation bench comparing verify-per-action
//! against verify-at-import.

use heimdall_dataplane::{DataPlane, Flow, Trace};
use heimdall_netmodel::topology::Network;
use heimdall_routing::{converge, ControlPlane};

/// A simulated network: configs plus (lazily) converged control plane.
#[derive(Debug, Clone)]
pub struct EmulatedNetwork {
    net: Network,
    cp: Option<ControlPlane>,
    converge_count: usize,
}

impl EmulatedNetwork {
    /// Wraps a network (typically a sanitized twin slice).
    pub fn new(net: Network) -> Self {
        EmulatedNetwork {
            net,
            cp: None,
            converge_count: 0,
        }
    }

    /// Read access to the emulated network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access; invalidates the converged state.
    pub fn network_mut(&mut self) -> &mut Network {
        self.cp = None;
        &mut self.net
    }

    /// The converged control plane, recomputing if stale.
    pub fn control_plane(&mut self) -> &ControlPlane {
        if self.cp.is_none() {
            self.cp = Some(converge(&self.net));
            self.converge_count += 1;
        }
        self.cp.as_ref().expect("just converged")
    }

    /// How many times this emulation has had to converge (work metric).
    pub fn converge_count(&self) -> usize {
        self.converge_count
    }

    /// Traces a flow from the named device (converging first if needed).
    pub fn trace_from(&mut self, device: &str, flow: &Flow) -> Option<Trace> {
        let idx = self.net.idx(device).ok()?;
        self.control_plane();
        let cp = self.cp.as_ref().expect("converged above");
        let dp = DataPlane::new(&self.net, cp);
        Some(dp.trace(idx, flow))
    }

    /// Strong reachability from the named device.
    pub fn reachable_from(&mut self, device: &str, flow: &Flow) -> bool {
        let Ok(idx) = self.net.idx(device) else {
            return false;
        };
        self.control_plane();
        let cp = self.cp.as_ref().expect("converged above");
        let dp = DataPlane::new(&self.net, cp);
        dp.reachable(idx, flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn lazy_convergence_counts_work() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        assert_eq!(emu.converge_count(), 0);
        emu.control_plane();
        emu.control_plane();
        assert_eq!(emu.converge_count(), 1, "second call hits the cache");
        emu.network_mut(); // any mutation invalidates
        emu.control_plane();
        assert_eq!(emu.converge_count(), 2);
    }

    #[test]
    fn trace_uses_current_state() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let flow = Flow::probe("10.1.1.10".parse().unwrap(), "10.2.1.10".parse().unwrap());
        assert!(emu.reachable_from("h1", &flow));
        // Shut acc1's uplink; reachability must flip after re-convergence.
        emu.network_mut()
            .device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .enabled = false;
        assert!(!emu.reachable_from("h1", &flow));
    }

    #[test]
    fn trace_from_unknown_device_is_none() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let flow = Flow::probe("10.1.1.10".parse().unwrap(), "10.2.1.10".parse().unwrap());
        assert!(emu.trace_from("ghost", &flow).is_none());
    }
}
