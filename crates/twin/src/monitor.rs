//! The reference monitor: every presentation-layer request is classified,
//! checked against the `Privilege_msp`, recorded, and only then forwarded
//! to the emulation layer.

use crate::console::Command;
use heimdall_privilege::eval::{evaluate, Decision};
use heimdall_privilege::model::{Action, PrivilegeMsp, Resource};
use serde::{Deserialize, Serialize};

/// One mediated request, as recorded for the audit trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediationEvent {
    /// Monotonic sequence number within the session.
    pub seq: u64,
    pub technician: String,
    pub device: String,
    /// The raw command line as typed.
    pub command: String,
    pub action: Action,
    pub resource: Resource,
    pub decision: Decision,
}

/// Mediates commands against a privilege specification.
#[derive(Debug, Clone)]
pub struct ReferenceMonitor {
    spec: PrivilegeMsp,
    technician: String,
    events: Vec<MediationEvent>,
}

impl ReferenceMonitor {
    /// A monitor enforcing `spec` for `technician`.
    pub fn new(technician: impl Into<String>, spec: PrivilegeMsp) -> Self {
        ReferenceMonitor {
            spec,
            technician: technician.into(),
            events: Vec::new(),
        }
    }

    /// Classifies and checks one command; records the event either way.
    pub fn mediate(&mut self, device: &str, raw: &str, cmd: &Command) -> Decision {
        let (action, resource) = cmd.classify(device);
        let decision = evaluate(&self.spec, action, &resource);
        self.events.push(MediationEvent {
            seq: self.events.len() as u64,
            technician: self.technician.clone(),
            device: device.to_string(),
            command: raw.to_string(),
            action,
            resource,
            decision: decision.clone(),
        });
        decision
    }

    /// The enforced specification.
    pub fn spec(&self) -> &PrivilegeMsp {
        &self.spec
    }

    /// Replaces the specification (after an approved escalation).
    pub fn set_spec(&mut self, spec: PrivilegeMsp) {
        self.spec = spec;
    }

    /// Mutable access for in-place escalation.
    pub fn spec_mut(&mut self) -> &mut PrivilegeMsp {
        &mut self.spec
    }

    /// Everything mediated so far.
    pub fn events(&self) -> &[MediationEvent] {
        &self.events
    }

    /// Denied requests (the interesting part of the audit trail).
    pub fn denials(&self) -> Vec<&MediationEvent> {
        self.events
            .iter()
            .filter(|e| !e.decision.is_allowed())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_privilege::model::{Predicate, ResourcePattern};

    fn spec_view_fw1() -> PrivilegeMsp {
        PrivilegeMsp::new()
            .with(Predicate::allow(
                Action::View,
                ResourcePattern::Device("fw1".into()),
            ))
            .with(Predicate::allow(
                Action::ModifyAcl,
                ResourcePattern::Acl {
                    device: "fw1".into(),
                    name: "100".into(),
                },
            ))
    }

    #[test]
    fn allows_in_scope_denies_out_of_scope() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let show = Command::parse("show running-config").unwrap();
        assert!(m.mediate("fw1", "show running-config", &show).is_allowed());
        assert!(!m
            .mediate("core1", "show running-config", &show)
            .is_allowed());
        let edit = Command::parse("no access-list 100 line 1").unwrap();
        assert!(m
            .mediate("fw1", "no access-list 100 line 1", &edit)
            .is_allowed());
        let edit101 = Command::parse("no access-list 101 line 1").unwrap();
        assert!(!m
            .mediate("fw1", "no access-list 101 line 1", &edit101)
            .is_allowed());
    }

    #[test]
    fn every_request_is_recorded_with_sequence() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let show = Command::parse("show ip route").unwrap();
        m.mediate("fw1", "show ip route", &show);
        m.mediate("core1", "show ip route", &show);
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.events()[0].seq, 0);
        assert_eq!(m.events()[1].seq, 1);
        assert_eq!(m.denials().len(), 1);
        assert_eq!(m.denials()[0].device, "core1");
    }

    #[test]
    fn destructive_commands_denied_by_default() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let erase = Command::parse("write erase").unwrap();
        let d = m.mediate("fw1", "write erase", &erase);
        assert_eq!(d, Decision::DeniedDefault);
    }

    #[test]
    fn escalation_widens_live_spec() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let route = Command::parse("ip route 0.0.0.0 0.0.0.0 10.255.0.1").unwrap();
        assert!(!m.mediate("fw1", "...", &route).is_allowed());
        m.spec_mut().predicates.push(Predicate::allow(
            Action::ModifyRoute,
            ResourcePattern::Device("fw1".into()),
        ));
        assert!(m.mediate("fw1", "...", &route).is_allowed());
    }
}
