//! The reference monitor: every presentation-layer request is classified,
//! checked against the `Privilege_msp`, recorded, and only then forwarded
//! to the emulation layer.

use crate::console::Command;
use heimdall_privilege::eval::{evaluate, Decision};
use heimdall_privilege::model::{Action, PrivilegeMsp, Resource};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default retained-event window. Long monitoring sessions poll counters
/// continuously; totals stay exact as counters while the event detail is
/// bounded to the most recent window.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// One mediated request, as recorded for the audit trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediationEvent {
    /// Monotonic sequence number within the session.
    pub seq: u64,
    pub technician: String,
    pub device: String,
    /// The raw command line as typed.
    pub command: String,
    pub action: Action,
    pub resource: Resource,
    pub decision: Decision,
}

/// Mediates commands against a privilege specification.
///
/// The event trail is a fixed-capacity ring: the newest
/// [`DEFAULT_EVENT_CAPACITY`] events are retained in full detail, while
/// [`ReferenceMonitor::total_events`] / [`ReferenceMonitor::total_denials`]
/// count every mediation for the session's lifetime, so a long-running
/// monitoring poll cannot grow memory without bound.
#[derive(Debug, Clone)]
pub struct ReferenceMonitor {
    spec: PrivilegeMsp,
    technician: String,
    events: VecDeque<MediationEvent>,
    capacity: usize,
    total_events: u64,
    total_denials: u64,
}

impl ReferenceMonitor {
    /// A monitor enforcing `spec` for `technician`.
    pub fn new(technician: impl Into<String>, spec: PrivilegeMsp) -> Self {
        ReferenceMonitor::with_capacity(technician, spec, DEFAULT_EVENT_CAPACITY)
    }

    /// A monitor retaining at most `capacity` events (min 1).
    pub fn with_capacity(
        technician: impl Into<String>,
        spec: PrivilegeMsp,
        capacity: usize,
    ) -> Self {
        ReferenceMonitor {
            spec,
            technician: technician.into(),
            events: VecDeque::new(),
            capacity: capacity.max(1),
            total_events: 0,
            total_denials: 0,
        }
    }

    /// Classifies and checks one command; records the event either way.
    pub fn mediate(&mut self, device: &str, raw: &str, cmd: &Command) -> Decision {
        let (action, resource) = cmd.classify(device);
        let decision = evaluate(&self.spec, action, &resource);
        self.events.push_back(MediationEvent {
            seq: self.total_events,
            technician: self.technician.clone(),
            device: device.to_string(),
            command: raw.to_string(),
            action,
            resource,
            decision: decision.clone(),
        });
        self.total_events += 1;
        if !decision.is_allowed() {
            self.total_denials += 1;
        }
        if self.events.len() > self.capacity {
            self.events.pop_front();
        }
        decision
    }

    /// The enforced specification.
    pub fn spec(&self) -> &PrivilegeMsp {
        &self.spec
    }

    /// Replaces the specification (after an approved escalation).
    pub fn set_spec(&mut self, spec: PrivilegeMsp) {
        self.spec = spec;
    }

    /// Mutable access for in-place escalation.
    pub fn spec_mut(&mut self) -> &mut PrivilegeMsp {
        &mut self.spec
    }

    /// The retained event window (newest [`ReferenceMonitor::capacity`]
    /// mediations; `seq` stays monotone across evictions).
    pub fn events(&self) -> &VecDeque<MediationEvent> {
        &self.events
    }

    /// Denied requests within the retained window (the interesting part
    /// of the audit trail).
    pub fn denials(&self) -> Vec<&MediationEvent> {
        self.events
            .iter()
            .filter(|e| !e.decision.is_allowed())
            .collect()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime mediation count (including evicted events).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Lifetime denial count (including evicted events).
    pub fn total_denials(&self) -> u64 {
        self.total_denials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_privilege::model::{Predicate, ResourcePattern};

    fn spec_view_fw1() -> PrivilegeMsp {
        PrivilegeMsp::new()
            .with(Predicate::allow(
                Action::View,
                ResourcePattern::Device("fw1".into()),
            ))
            .with(Predicate::allow(
                Action::ModifyAcl,
                ResourcePattern::Acl {
                    device: "fw1".into(),
                    name: "100".into(),
                },
            ))
    }

    #[test]
    fn allows_in_scope_denies_out_of_scope() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let show = Command::parse("show running-config").unwrap();
        assert!(m.mediate("fw1", "show running-config", &show).is_allowed());
        assert!(!m
            .mediate("core1", "show running-config", &show)
            .is_allowed());
        let edit = Command::parse("no access-list 100 line 1").unwrap();
        assert!(m
            .mediate("fw1", "no access-list 100 line 1", &edit)
            .is_allowed());
        let edit101 = Command::parse("no access-list 101 line 1").unwrap();
        assert!(!m
            .mediate("fw1", "no access-list 101 line 1", &edit101)
            .is_allowed());
    }

    #[test]
    fn every_request_is_recorded_with_sequence() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let show = Command::parse("show ip route").unwrap();
        m.mediate("fw1", "show ip route", &show);
        m.mediate("core1", "show ip route", &show);
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.events()[0].seq, 0);
        assert_eq!(m.events()[1].seq, 1);
        assert_eq!(m.denials().len(), 1);
        assert_eq!(m.denials()[0].device, "core1");
    }

    #[test]
    fn event_ring_caps_memory_but_totals_stay_exact() {
        let mut m = ReferenceMonitor::with_capacity("t1", spec_view_fw1(), 4);
        let show = Command::parse("show ip route").unwrap();
        for i in 0..10 {
            // Odd polls hit an out-of-scope device: 5 lifetime denials.
            let device = if i % 2 == 0 { "fw1" } else { "core1" };
            m.mediate(device, "show ip route", &show);
        }
        assert_eq!(m.events().len(), 4, "window capped at capacity");
        assert_eq!(m.total_events(), 10, "lifetime total counts evictions");
        assert_eq!(m.total_denials(), 5);
        // seq stays monotone across evictions: the window holds 6..=9.
        let seqs: Vec<u64> = m.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // denials() answers over the retained window only.
        assert_eq!(m.denials().len(), 2);
        assert!(m.denials().iter().all(|e| e.device == "core1"));
    }

    #[test]
    fn destructive_commands_denied_by_default() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let erase = Command::parse("write erase").unwrap();
        let d = m.mediate("fw1", "write erase", &erase);
        assert_eq!(d, Decision::DeniedDefault);
    }

    #[test]
    fn escalation_widens_live_spec() {
        let mut m = ReferenceMonitor::new("t1", spec_view_fw1());
        let route = Command::parse("ip route 0.0.0.0 0.0.0.0 10.255.0.1").unwrap();
        assert!(!m.mediate("fw1", "...", &route).is_allowed());
        m.spec_mut().predicates.push(Predicate::allow(
            Action::ModifyRoute,
            ResourcePattern::Device("fw1".into()),
        ));
        assert!(m.mediate("fw1", "...", &route).is_allowed());
    }
}
