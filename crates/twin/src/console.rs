//! The per-node console: the command language technicians speak to the
//! presentation layer.
//!
//! Commands are single-line, IOS-flavored (config-mode nesting is flattened
//! into `interface <IF> <subcommand>` one-liners so that every line is an
//! independently mediable action — exactly what the reference monitor
//! needs). Each command classifies itself as a privilege request
//! `(Action, Resource)` via [`Command::classify`].

use heimdall_netmodel::acl::AclEntry;
use heimdall_netmodel::diff::AclDirection;
use heimdall_netmodel::ip::{netmask_to_len, parse_ip, Prefix};
use heimdall_netmodel::parser::parse_acl_entry;
use heimdall_netmodel::proto::{NextHop, StaticRoute};
use heimdall_netmodel::vlan::SwitchPortMode;
use heimdall_privilege::model::{Action, Resource};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A parsed console command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    // --- read-only -----------------------------------------------------
    ShowRunning,
    ShowIpRoute,
    ShowIpOspf,
    ShowInterfaces,
    ShowAccessLists,
    ShowVlan,
    /// Operational counters (interfaces up, routes, ACL hits) — the
    /// monitoring poller's read path.
    ShowCounters,
    Ping {
        dst: Ipv4Addr,
    },
    Traceroute {
        dst: Ipv4Addr,
    },
    // --- interface edits -------------------------------------------------
    IfState {
        iface: String,
        up: bool,
    },
    IfAddress {
        iface: String,
        address: Option<(Ipv4Addr, u8)>,
    },
    IfSwitchportAccess {
        iface: String,
        vlan: u16,
    },
    IfAclBind {
        iface: String,
        direction: AclDirection,
        acl: Option<String>,
    },
    IfOspfCost {
        iface: String,
        cost: Option<u32>,
    },
    // --- ACL edits ---------------------------------------------------------
    AclAppend {
        name: String,
        entry: AclEntry,
    },
    AclInsertLine {
        name: String,
        line: usize,
        entry: AclEntry,
    },
    AclRemoveLine {
        name: String,
        line: usize,
    },
    AclDelete {
        name: String,
    },
    // --- routing edits -------------------------------------------------------
    RouteAdd(StaticRoute),
    RouteDel {
        prefix: Prefix,
        gateway: Ipv4Addr,
    },
    OspfNetwork {
        prefix: Prefix,
        area: u32,
        remove: bool,
    },
    // --- destructive / credential (exist to be denied) ---------------------
    Reload,
    WriteErase,
    SetEnableSecret {
        secret: String,
    },
}

/// A console parse or execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    Parse(String),
    /// The command referenced an object the device does not have.
    NoSuchObject(String),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::Parse(m) => write!(f, "% Invalid input: {m}"),
            CommandError::NoSuchObject(m) => write!(f, "% No such object: {m}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl Command {
    /// Parses one console line.
    pub fn parse(line: &str) -> Result<Command, CommandError> {
        let err = |m: &str| CommandError::Parse(format!("{m}: {line:?}"));
        let t: Vec<&str> = line.split_whitespace().collect();
        match t.as_slice() {
            ["show", "running-config"] | ["show", "run"] => Ok(Command::ShowRunning),
            ["show", "ip", "route"] => Ok(Command::ShowIpRoute),
            ["show", "ip", "ospf"] => Ok(Command::ShowIpOspf),
            ["show", "interfaces"] | ["show", "ip", "interface", "brief"] => {
                Ok(Command::ShowInterfaces)
            }
            ["show", "access-lists"] => Ok(Command::ShowAccessLists),
            ["show", "vlan"] => Ok(Command::ShowVlan),
            ["show", "counters"] => Ok(Command::ShowCounters),
            ["ping", dst] => Ok(Command::Ping {
                dst: parse_ip(dst).map_err(|e| err(&e.to_string()))?,
            }),
            ["traceroute", dst] => Ok(Command::Traceroute {
                dst: parse_ip(dst).map_err(|e| err(&e.to_string()))?,
            }),
            ["interface", iface, "shutdown"] => Ok(Command::IfState {
                iface: iface.to_string(),
                up: false,
            }),
            ["interface", iface, "no", "shutdown"] => Ok(Command::IfState {
                iface: iface.to_string(),
                up: true,
            }),
            ["interface", iface, "ip", "address", a, m] => {
                let ip = parse_ip(a).map_err(|e| err(&e.to_string()))?;
                let mask = parse_ip(m).map_err(|e| err(&e.to_string()))?;
                let len = netmask_to_len(mask).map_err(|e| err(&e.to_string()))?;
                Ok(Command::IfAddress {
                    iface: iface.to_string(),
                    address: Some((ip, len)),
                })
            }
            ["interface", iface, "no", "ip", "address"] => Ok(Command::IfAddress {
                iface: iface.to_string(),
                address: None,
            }),
            ["interface", iface, "switchport", "access", "vlan", v] => {
                Ok(Command::IfSwitchportAccess {
                    iface: iface.to_string(),
                    vlan: v.parse().map_err(|_| err("bad vlan"))?,
                })
            }
            ["interface", iface, "ip", "access-group", acl, dir] => Ok(Command::IfAclBind {
                iface: iface.to_string(),
                direction: parse_dir(dir).ok_or_else(|| err("bad direction"))?,
                acl: Some(acl.to_string()),
            }),
            ["interface", iface, "no", "ip", "access-group", dir] => Ok(Command::IfAclBind {
                iface: iface.to_string(),
                direction: parse_dir(dir).ok_or_else(|| err("bad direction"))?,
                acl: None,
            }),
            ["interface", iface, "ip", "ospf", "cost", c] => Ok(Command::IfOspfCost {
                iface: iface.to_string(),
                cost: Some(c.parse().map_err(|_| err("bad cost"))?),
            }),
            ["interface", iface, "no", "ip", "ospf", "cost"] => Ok(Command::IfOspfCost {
                iface: iface.to_string(),
                cost: None,
            }),
            ["access-list", name, "line", n, rest @ ..] => Ok(Command::AclInsertLine {
                name: name.to_string(),
                line: n.parse().map_err(|_| err("bad line number"))?,
                entry: parse_acl_entry(rest).map_err(|e| err(&e))?,
            }),
            ["no", "access-list", name, "line", n] => Ok(Command::AclRemoveLine {
                name: name.to_string(),
                line: n.parse().map_err(|_| err("bad line number"))?,
            }),
            ["no", "access-list", name] => Ok(Command::AclDelete {
                name: name.to_string(),
            }),
            ["access-list", name, rest @ ..] if !rest.is_empty() => Ok(Command::AclAppend {
                name: name.to_string(),
                entry: parse_acl_entry(rest).map_err(|e| err(&e))?,
            }),
            ["ip", "route", a, m, nh] => {
                let prefix = prefix_of(a, m).map_err(|e| err(&e))?;
                let gw = parse_ip(nh).map_err(|e| err(&e.to_string()))?;
                Ok(Command::RouteAdd(StaticRoute::new(prefix, gw)))
            }
            ["no", "ip", "route", a, m, nh] => {
                let prefix = prefix_of(a, m).map_err(|e| err(&e))?;
                let gw = parse_ip(nh).map_err(|e| err(&e.to_string()))?;
                Ok(Command::RouteDel {
                    prefix,
                    gateway: gw,
                })
            }
            ["router", "ospf", "network", a, wild, "area", area] => {
                let addr = parse_ip(a).map_err(|e| err(&e.to_string()))?;
                let len = heimdall_netmodel::ip::wildcard_to_len(
                    parse_ip(wild).map_err(|e| err(&e.to_string()))?,
                )
                .map_err(|e| err(&e.to_string()))?;
                Ok(Command::OspfNetwork {
                    prefix: Prefix::new(addr, len).map_err(|e| err(&e.to_string()))?,
                    area: area.parse().map_err(|_| err("bad area"))?,
                    remove: false,
                })
            }
            ["router", "ospf", "no", "network", a, wild, "area", area] => {
                let addr = parse_ip(a).map_err(|e| err(&e.to_string()))?;
                let len = heimdall_netmodel::ip::wildcard_to_len(
                    parse_ip(wild).map_err(|e| err(&e.to_string()))?,
                )
                .map_err(|e| err(&e.to_string()))?;
                Ok(Command::OspfNetwork {
                    prefix: Prefix::new(addr, len).map_err(|e| err(&e.to_string()))?,
                    area: area.parse().map_err(|_| err("bad area"))?,
                    remove: true,
                })
            }
            ["reload"] => Ok(Command::Reload),
            ["write", "erase"] => Ok(Command::WriteErase),
            ["enable", "secret", s] => Ok(Command::SetEnableSecret {
                secret: s.to_string(),
            }),
            _ => Err(err("unrecognized command")),
        }
    }

    /// The privilege request this command makes on `device`.
    pub fn classify(&self, device: &str) -> (Action, Resource) {
        let dev = || Resource::Device(device.to_string());
        let ifr = |i: &str| Resource::Interface {
            device: device.to_string(),
            iface: i.to_string(),
        };
        let aclr = |n: &str| Resource::Acl {
            device: device.to_string(),
            name: n.to_string(),
        };
        match self {
            Command::ShowRunning
            | Command::ShowIpRoute
            | Command::ShowIpOspf
            | Command::ShowInterfaces
            | Command::ShowAccessLists
            | Command::ShowVlan
            | Command::ShowCounters => (Action::View, dev()),
            Command::Ping { .. } | Command::Traceroute { .. } => (Action::Ping, dev()),
            Command::IfState { iface, .. } => (Action::ModifyInterfaceState, ifr(iface)),
            Command::IfAddress { iface, .. } => (Action::ModifyIpAddress, ifr(iface)),
            Command::IfSwitchportAccess { iface, .. } => (Action::ModifyVlan, ifr(iface)),
            Command::IfAclBind { acl, .. } => {
                (Action::ModifyAcl, aclr(acl.as_deref().unwrap_or("*")))
            }
            Command::IfOspfCost { .. } => (Action::ModifyOspf, dev()),
            Command::AclAppend { name, .. }
            | Command::AclInsertLine { name, .. }
            | Command::AclRemoveLine { name, .. }
            | Command::AclDelete { name } => (Action::ModifyAcl, aclr(name)),
            Command::RouteAdd(_) | Command::RouteDel { .. } => (Action::ModifyRoute, dev()),
            Command::OspfNetwork { .. } => (Action::ModifyOspf, dev()),
            Command::Reload => (Action::Reboot, dev()),
            Command::WriteErase => (Action::Erase, dev()),
            Command::SetEnableSecret { .. } => (Action::ModifyCredentials, dev()),
        }
    }

    /// Whether this command mutates configuration.
    pub fn is_mutating(&self) -> bool {
        self.classify("_").0.is_mutating()
    }
}

fn parse_dir(s: &str) -> Option<AclDirection> {
    match s {
        "in" => Some(AclDirection::In),
        "out" => Some(AclDirection::Out),
        _ => None,
    }
}

fn prefix_of(a: &str, m: &str) -> Result<Prefix, String> {
    let addr = parse_ip(a).map_err(|e| e.to_string())?;
    let mask = parse_ip(m).map_err(|e| e.to_string())?;
    Prefix::with_netmask(addr, mask).map_err(|e| e.to_string())
}

/// Executes a command against `device` inside the emulation and renders its
/// output. Mutating commands go through `emu.network_mut()` (invalidating
/// convergence); read-only ones converge first.
pub fn execute(
    emu: &mut crate::emu::EmulatedNetwork,
    device: &str,
    cmd: &Command,
) -> Result<String, CommandError> {
    let no_dev = || CommandError::NoSuchObject(format!("device {device}"));
    match cmd {
        Command::ShowRunning => {
            let d = emu.network().device_by_name(device).ok_or_else(no_dev)?;
            Ok(heimdall_netmodel::printer::print_config(&d.config))
        }
        Command::ShowIpRoute => {
            let idx = emu.network().idx(device).map_err(|_| no_dev())?;
            let cp = emu.control_plane();
            Ok(cp.rib(idx).render())
        }
        Command::ShowIpOspf => {
            emu.network().idx(device).map_err(|_| no_dev())?;
            let cp = emu.control_plane();
            let l2 = cp.l2.clone();
            Ok(heimdall_routing::ospf::ospf_overview(emu.network(), &l2))
        }
        Command::ShowInterfaces => {
            let d = emu.network().device_by_name(device).ok_or_else(no_dev)?;
            let mut out = String::new();
            for i in &d.config.interfaces {
                let addr = i
                    .address
                    .map(|a| format!("{}/{}", a.ip, a.prefix_len))
                    .unwrap_or_else(|| "unassigned".to_string());
                let state = if i.is_up() {
                    "up"
                } else {
                    "administratively down"
                };
                out.push_str(&format!("{:<12} {:<20} {state}\n", i.name, addr));
            }
            Ok(out)
        }
        Command::ShowAccessLists => {
            let d = emu.network().device_by_name(device).ok_or_else(no_dev)?;
            let mut out = String::new();
            for acl in d.config.acls.values() {
                out.push_str(&heimdall_netmodel::printer::acl_to_string(acl));
            }
            Ok(out)
        }
        Command::ShowVlan => {
            let d = emu.network().device_by_name(device).ok_or_else(no_dev)?;
            let mut out = String::new();
            for v in d.config.vlans.values() {
                out.push_str(&format!(
                    "{:<6} {}\n",
                    v.id,
                    v.name.as_deref().unwrap_or("-")
                ));
            }
            for i in &d.config.interfaces {
                if let Some(SwitchPortMode::Access { vlan }) = &i.switchport {
                    out.push_str(&format!("{:<12} access vlan {vlan}\n", i.name));
                }
            }
            Ok(out)
        }
        Command::ShowCounters => {
            let c = emu.device_counters(device).ok_or_else(no_dev)?;
            Ok(format!(
                "interfaces: {}/{} up\nfib routes: {}\nacl entries: {}\nacl hits: {}\n",
                c.if_up, c.if_total, c.fib_routes, c.acl_entries, c.acl_hits
            ))
        }
        Command::Ping { dst } => {
            let src = emu
                .network()
                .device_by_name(device)
                .ok_or_else(no_dev)?
                .primary_address()
                .ok_or_else(|| CommandError::NoSuchObject("no source address".to_string()))?;
            let flow = heimdall_dataplane::Flow::icmp(src, *dst);
            let trace = emu.trace_from(device, &flow).ok_or_else(no_dev)?;
            if trace.disposition.is_success() {
                Ok(format!("!!!!! success: {}", trace.disposition))
            } else {
                Ok(format!("..... failed: {}", trace.disposition))
            }
        }
        Command::Traceroute { dst } => {
            let src = emu
                .network()
                .device_by_name(device)
                .ok_or_else(no_dev)?
                .primary_address()
                .ok_or_else(|| CommandError::NoSuchObject("no source address".to_string()))?;
            let flow = heimdall_dataplane::Flow::icmp(src, *dst);
            let trace = emu.trace_from(device, &flow).ok_or_else(no_dev)?;
            Ok(trace.to_string())
        }
        Command::IfState { iface, up } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let i = d
                .config
                .interface_mut(iface)
                .ok_or_else(|| CommandError::NoSuchObject(format!("interface {iface}")))?;
            i.enabled = *up;
            Ok(String::new())
        }
        Command::IfAddress { iface, address } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let i = d
                .config
                .interface_mut(iface)
                .ok_or_else(|| CommandError::NoSuchObject(format!("interface {iface}")))?;
            i.address =
                address.map(|(ip, len)| heimdall_netmodel::iface::InterfaceAddress::new(ip, len));
            Ok(String::new())
        }
        Command::IfSwitchportAccess { iface, vlan } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let i = d
                .config
                .interface_mut(iface)
                .ok_or_else(|| CommandError::NoSuchObject(format!("interface {iface}")))?;
            i.switchport = Some(SwitchPortMode::Access { vlan: *vlan });
            Ok(String::new())
        }
        Command::IfAclBind {
            iface,
            direction,
            acl,
        } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let i = d
                .config
                .interface_mut(iface)
                .ok_or_else(|| CommandError::NoSuchObject(format!("interface {iface}")))?;
            match direction {
                AclDirection::In => i.acl_in = acl.clone(),
                AclDirection::Out => i.acl_out = acl.clone(),
            }
            Ok(String::new())
        }
        Command::IfOspfCost { iface, cost } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let i = d
                .config
                .interface_mut(iface)
                .ok_or_else(|| CommandError::NoSuchObject(format!("interface {iface}")))?;
            i.ospf_cost = *cost;
            Ok(String::new())
        }
        Command::AclAppend { name, entry } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            d.config
                .acls
                .entry(name.clone())
                .or_insert_with(|| heimdall_netmodel::acl::Acl::new(name.clone()))
                .entries
                .push(entry.clone());
            Ok(String::new())
        }
        Command::AclInsertLine { name, line, entry } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let acl = d
                .config
                .acls
                .get_mut(name)
                .ok_or_else(|| CommandError::NoSuchObject(format!("acl {name}")))?;
            let pos = (line.saturating_sub(1)).min(acl.entries.len());
            acl.entries.insert(pos, entry.clone());
            Ok(String::new())
        }
        Command::AclRemoveLine { name, line } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let acl = d
                .config
                .acls
                .get_mut(name)
                .ok_or_else(|| CommandError::NoSuchObject(format!("acl {name}")))?;
            if *line == 0 || *line > acl.entries.len() {
                return Err(CommandError::NoSuchObject(format!(
                    "acl {name} line {line}"
                )));
            }
            acl.entries.remove(line - 1);
            Ok(String::new())
        }
        Command::AclDelete { name } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            d.config
                .acls
                .remove(name)
                .ok_or_else(|| CommandError::NoSuchObject(format!("acl {name}")))?;
            Ok(String::new())
        }
        Command::RouteAdd(route) => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            d.config.static_routes.push(*route);
            Ok(String::new())
        }
        Command::RouteDel { prefix, gateway } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let before = d.config.static_routes.len();
            d.config
                .static_routes
                .retain(|r| !(r.prefix == *prefix && r.next_hop == NextHop::Ip(*gateway)));
            if d.config.static_routes.len() == before {
                return Err(CommandError::NoSuchObject(format!("route {prefix}")));
            }
            Ok(String::new())
        }
        Command::OspfNetwork {
            prefix,
            area,
            remove,
        } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            let ospf = d
                .config
                .ospf
                .as_mut()
                .ok_or_else(|| CommandError::NoSuchObject("router ospf".to_string()))?;
            if *remove {
                let before = ospf.networks.len();
                ospf.networks
                    .retain(|n| !(n.prefix == *prefix && n.area == *area));
                if ospf.networks.len() == before {
                    return Err(CommandError::NoSuchObject(format!("network {prefix}")));
                }
            } else {
                ospf.networks.push(heimdall_netmodel::proto::OspfNetwork {
                    prefix: *prefix,
                    area: *area,
                });
            }
            Ok(String::new())
        }
        Command::Reload => {
            // Emulated reload: drop converged state (configs persist).
            emu.network_mut();
            Ok("Reload requested. System restarted.".to_string())
        }
        Command::WriteErase => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            // The Figure 3 catastrophe: the startup configuration is gone.
            d.config = heimdall_netmodel::config::DeviceConfig::new(d.name.clone());
            Ok("Erasing the nvram filesystem... [OK]".to_string())
        }
        Command::SetEnableSecret { secret } => {
            let d = emu
                .network_mut()
                .device_by_name_mut(device)
                .ok_or_else(no_dev)?;
            d.config.secrets.enable_secret = Some(secret.clone());
            Ok(String::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::EmulatedNetwork;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn parses_representative_commands() {
        for (line, mutating) in [
            ("show running-config", false),
            ("show ip route", false),
            ("show counters", false),
            ("ping 10.2.1.10", false),
            ("traceroute 10.2.1.10", false),
            ("interface Gi0/2 shutdown", true),
            ("interface Gi0/2 no shutdown", true),
            (
                "interface Gi0/9 ip address 203.0.113.2 255.255.255.252",
                true,
            ),
            ("interface Gi0/2 switchport access vlan 30", true),
            (
                "access-list 100 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
                true,
            ),
            ("no access-list 100 line 2", true),
            ("ip route 0.0.0.0 0.0.0.0 203.0.113.1", true),
            ("router ospf network 10.255.0.12 0.0.0.3 area 0", true),
            ("write erase", true),
            ("reload", true),
        ] {
            let cmd = Command::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(cmd.is_mutating(), mutating, "{line}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Command::parse("sudo rm -rf /").is_err());
        assert!(Command::parse("ping not-an-ip").is_err());
        assert!(Command::parse("").is_err());
    }

    #[test]
    fn classification_targets_the_right_resource() {
        let (a, r) = Command::parse("interface Gi0/2 shutdown")
            .unwrap()
            .classify("acc3");
        assert_eq!(a, Action::ModifyInterfaceState);
        assert_eq!(
            r,
            Resource::Interface {
                device: "acc3".into(),
                iface: "Gi0/2".into()
            }
        );
        let (a, r) = Command::parse("no access-list 100 line 1")
            .unwrap()
            .classify("fw1");
        assert_eq!(a, Action::ModifyAcl);
        assert_eq!(
            r,
            Resource::Acl {
                device: "fw1".into(),
                name: "100".into()
            }
        );
    }

    #[test]
    fn ping_and_fix_workflow_executes() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        // Break LAN2 -> DMZ by removing fw1's permit, then verify via ping,
        // then fix by reinserting.
        let out = execute(&mut emu, "h4", &Command::parse("ping 10.2.1.10").unwrap()).unwrap();
        assert!(out.starts_with("!!!!!"), "{out}");
        // Insert a blanket deny ahead of everything (breaks even ICMP).
        execute(
            &mut emu,
            "fw1",
            &Command::parse("access-list 100 line 1 deny ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255")
                .unwrap(),
        )
        .unwrap();
        let out = execute(&mut emu, "h4", &Command::parse("ping 10.2.1.10").unwrap()).unwrap();
        assert!(out.starts_with("....."), "{out}");
        execute(
            &mut emu,
            "fw1",
            &Command::parse("no access-list 100 line 1").unwrap(),
        )
        .unwrap();
        let out = execute(&mut emu, "h4", &Command::parse("ping 10.2.1.10").unwrap()).unwrap();
        assert!(out.starts_with("!!!!!"), "{out}");
    }

    #[test]
    fn show_ip_ospf_overview() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let out = execute(&mut emu, "core1", &Command::parse("show ip ospf").unwrap()).unwrap();
        assert!(out.contains("area 0:"), "{out}");
        assert!(out.contains("adjacencies"), "{out}");
    }

    #[test]
    fn show_outputs_render() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let run = execute(&mut emu, "fw1", &Command::ShowRunning).unwrap();
        assert!(run.contains("hostname fw1"));
        let routes = execute(&mut emu, "acc1", &Command::ShowIpRoute).unwrap();
        assert!(routes.contains("O "), "{routes}");
        let ifaces = execute(&mut emu, "acc3", &Command::ShowInterfaces).unwrap();
        assert!(ifaces.contains("Vlan30"));
        let vlans = execute(&mut emu, "acc3", &Command::ShowVlan).unwrap();
        assert!(vlans.contains("access vlan 30"));
        let acls = execute(&mut emu, "fw1", &Command::ShowAccessLists).unwrap();
        assert!(acls.contains("permit ip 10.1.1.0 0.0.0.255"));
        let counters = execute(&mut emu, "fw1", &Command::ShowCounters).unwrap();
        assert!(counters.contains("fib routes:"), "{counters}");
        assert!(counters.contains("acl hits: 0"), "{counters}");
    }

    #[test]
    fn errors_name_missing_objects() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let e = execute(
            &mut emu,
            "fw1",
            &Command::parse("interface Nope0 shutdown").unwrap(),
        );
        assert!(matches!(e, Err(CommandError::NoSuchObject(_))));
        let e = execute(&mut emu, "nodev", &Command::ShowRunning);
        assert!(matches!(e, Err(CommandError::NoSuchObject(_))));
        let e = execute(
            &mut emu,
            "fw1",
            &Command::parse("no access-list 100 line 99").unwrap(),
        );
        assert!(matches!(e, Err(CommandError::NoSuchObject(_))));
    }

    #[test]
    fn write_erase_wipes_config() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        execute(&mut emu, "core1", &Command::WriteErase).unwrap();
        let d = emu.network().device_by_name("core1").unwrap();
        assert!(d.config.interfaces.is_empty());
        assert!(d.config.ospf.is_none());
    }
}
