//! # heimdall-twin
//!
//! The twin network — the paper's second component: "an emulated network
//! environment that mimics the production network but is isolated to
//! restrict malicious behavior, for the technician to resolve problems."
//!
//! Figure 5(d)'s decomposition maps directly onto this crate's modules:
//!
//! - [`slice`](mod@slice) — *task-driven minimization*: only the devices relevant to
//!   the ticket are cloned, and their configs are scrubbed of secrets
//!   before entering the emulation layer;
//! - [`emu`] — the *emulation layer*: an in-process network simulator
//!   (configs + control plane + data plane) the technician's commands act
//!   on;
//! - [`console`] — the *presentation layer*'s per-node consoles: an
//!   IOS-flavored command language (`show`, `ping`, single-line config
//!   edits) rendered as text;
//! - [`presentation`] — the topology view the technician is shown;
//! - [`monitor`] — the *reference monitor* "mediating each request sent
//!   from the presentation layer to the emulation layer and ensuring that
//!   the Privilege_msp is not violated";
//! - [`session`] — a technician session tying it together and emitting the
//!   final [`heimdall_netmodel::diff::ConfigDiff`] for the policy enforcer.
//!
//! ```
//! use heimdall_privilege::derive::{derive_privileges, Task};
//! use heimdall_twin::session::TwinSession;
//! use heimdall_twin::slice::slice_for_task;
//!
//! let g = heimdall_netmodel::gen::enterprise_network();
//! let task = Task::connectivity("h4", "srv1");
//!
//! let twin = slice_for_task(&g.net, &task);       // minimal, sanitized
//! let spec = derive_privileges(&g.net, &task);    // least privilege
//! let mut session = TwinSession::open("alice", twin, spec);
//!
//! // In-scope commands run; out-of-scope ones are denied and audited.
//! assert!(session.exec("h4", "ping 10.2.1.10").unwrap().contains("success"));
//! assert!(session.exec("fw1", "write erase").is_err());
//! let (changes, monitor) = session.finish();
//! assert!(changes.is_empty());
//! assert_eq!(monitor.denials().len(), 1);
//! ```

pub mod console;
pub mod emu;
pub mod monitor;
pub mod presentation;
pub mod session;
pub mod slice;

pub use console::{Command, CommandError};
pub use emu::{DeviceCounters, EmulatedNetwork};
pub use monitor::{MediationEvent, ReferenceMonitor};
pub use session::{SessionError, TwinSession};
pub use slice::{slice_for_task, TwinSpec};
