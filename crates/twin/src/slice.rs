//! Task-driven twin slicing: build the minimal, sanitized sub-network a
//! ticket needs.
//!
//! This is the answer to the paper's Challenge 2. Cloning everything
//! (Figure 5(b)) leaks the whole network; cloning only the affected nodes'
//! neighbors (Figure 5(c)) cannot reproduce the failure. The slice here is
//! the union of designed shortest paths between the ticket's endpoints —
//! large enough to contain the root cause of any on-path failure, small
//! enough to hide everything else.

use heimdall_netmodel::topology::{DeviceIdx, Network};
use heimdall_privilege::derive::{relevant_devices, Task};
use std::collections::BTreeSet;

/// The specification of a twin: which production devices it contains and
/// the isolated, sanitized network built from them.
#[derive(Debug, Clone)]
pub struct TwinSpec {
    /// Production device names included, sorted.
    pub included: Vec<String>,
    /// The isolated emulation substrate: sanitized configs, only
    /// internal links.
    pub net: Network,
}

impl TwinSpec {
    /// Whether a production device made it into the twin.
    pub fn includes(&self, device: &str) -> bool {
        self.included.iter().any(|d| d == device)
    }

    /// Exposure ratio: fraction of production devices visible in the twin
    /// (one ingredient of the attack-surface story).
    pub fn exposure(&self, production: &Network) -> f64 {
        self.included.len() as f64 / production.device_count() as f64
    }
}

/// Builds the twin slice for a task: the relevant device set, induced
/// links, sanitized configs.
pub fn slice_for_task(production: &Network, task: &Task) -> TwinSpec {
    let relevant = relevant_devices(production, task);
    slice_devices(production, &relevant)
}

/// Builds a twin from an explicit device set (the All/Neighbor baselines
/// use this too).
pub fn slice_devices(production: &Network, devices: &BTreeSet<DeviceIdx>) -> TwinSpec {
    let mut net = Network::new();
    let mut included: Vec<String> = Vec::new();
    for &d in devices {
        let dev = production.device(d);
        let mut clone = dev.clone();
        clone.config = dev.config.sanitized();
        net.add_device(clone).expect("unique names from production");
        included.push(dev.name.clone());
    }
    for link in production.links() {
        if devices.contains(&link.a) && devices.contains(&link.b) {
            let a = &production.device(link.a).name;
            let b = &production.device(link.b).name;
            net.add_link(a, &link.a_iface, b, &link.b_iface)
                .expect("interfaces cloned with devices");
        }
    }
    included.sort();
    TwinSpec { included, net }
}

/// The *All* baseline: clone every device (Figure 5(b)).
pub fn slice_all(production: &Network) -> TwinSpec {
    let all: BTreeSet<DeviceIdx> = production.devices().map(|(i, _)| i).collect();
    slice_devices(production, &all)
}

/// The *Neighbor* baseline: affected devices plus their direct neighbors
/// (Figure 5(c)).
pub fn slice_neighbors(production: &Network, task: &Task) -> TwinSpec {
    let mut set: BTreeSet<DeviceIdx> = BTreeSet::new();
    for name in &task.affected {
        if let Ok(i) = production.idx(name) {
            set.insert(i);
            set.extend(production.neighbors_any_state(i));
        }
    }
    slice_devices(production, &set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::Task;

    #[test]
    fn slice_contains_path_and_hides_rest() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let twin = slice_for_task(&g.net, &task);
        for must in ["h1", "acc1", "dist1", "fw1", "srv1"] {
            assert!(twin.includes(must), "{must} missing");
        }
        assert!(!twin.includes("acc3"));
        assert!(!twin.includes("h7"));
        assert!(!twin.includes("bdr1"));
        assert!(twin.exposure(&g.net) < 1.0);
    }

    #[test]
    fn slice_configs_are_sanitized() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let twin = slice_for_task(&g.net, &task);
        for (_, d) in twin.net.devices() {
            assert!(d.config.secrets.is_empty(), "{} leaked secrets", d.name);
        }
        // And the printed configs contain none of the production secret
        // strings (the APT10 exfiltration target).
        for name in &twin.included {
            let prod = g.net.device_by_name(name).unwrap();
            let twin_dev = twin.net.device_by_name(name).unwrap();
            let text = heimdall_netmodel::printer::print_config(&twin_dev.config);
            for secret in prod.config.secrets.all_values() {
                assert!(!text.contains(secret), "{name} leaked {secret}");
            }
        }
    }

    #[test]
    fn slice_keeps_only_internal_links() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let twin = slice_for_task(&g.net, &task);
        // Each twin link must join two included devices.
        for l in twin.net.links() {
            let a = &twin.net.device(l.a).name;
            let b = &twin.net.device(l.b).name;
            assert!(twin.includes(a) && twin.includes(b));
        }
        assert!(twin.net.link_count() < g.net.link_count());
    }

    #[test]
    fn all_baseline_clones_everything() {
        let g = enterprise_network();
        let twin = slice_all(&g.net);
        assert_eq!(twin.net.device_count(), g.net.device_count());
        assert_eq!(twin.net.link_count(), g.net.link_count());
        assert!((twin.exposure(&g.net) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn neighbor_baseline_misses_midpath_root_cause() {
        // The paper's Figure 5(c) critique, as a test: for a ticket between
        // h1 and srv1, the Neighbor baseline cannot see dist1/core1.
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let twin = slice_neighbors(&g.net, &task);
        assert!(twin.includes("h1"));
        assert!(twin.includes("acc1")); // h1's neighbor
        assert!(twin.includes("fw1")); // srv1's neighbor
        assert!(!twin.includes("dist1"), "mid-path device must be absent");
        assert!(!twin.includes("core1"));
    }

    #[test]
    fn broken_path_still_sliced_by_design() {
        // Even with acc1's uplink down (the issue), the slice includes the
        // designed path through acc1 — so the root cause is visible.
        let g = enterprise_network();
        let mut net = g.net.clone();
        net.device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .enabled = false;
        let task = Task::connectivity("h1", "srv1");
        let twin = slice_for_task(&net, &task);
        assert!(twin.includes("acc1"));
        // The downed state is preserved inside the twin (issue reproduces).
        let acc1 = twin.net.device_by_name("acc1").unwrap();
        assert!(!acc1.config.interface("Gi0/0").unwrap().is_up());
    }
}
