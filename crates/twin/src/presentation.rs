//! The presentation layer: what the technician is allowed to *see*.
//!
//! The twin already contains only relevant devices; on top of that the
//! topology view filters by `view` privilege, so a spec that denies a
//! device hides it even inside the twin.

use heimdall_netmodel::topology::Network;
use heimdall_privilege::eval::is_allowed;
use heimdall_privilege::model::{Action, PrivilegeMsp, Resource};

/// The visible topology for a technician under `spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyView {
    /// Visible device names with their kinds.
    pub devices: Vec<(String, String)>,
    /// Visible links (both endpoints visible): `(a, a_iface, b, b_iface)`.
    pub links: Vec<(String, String, String, String)>,
}

impl TopologyView {
    /// Whether a device is visible.
    pub fn shows(&self, device: &str) -> bool {
        self.devices.iter().any(|(d, _)| d == device)
    }

    /// Renders the view as a text diagram (device list + adjacency list).
    pub fn render(&self) -> String {
        let mut out = String::from("== topology ==\n");
        for (d, k) in &self.devices {
            out.push_str(&format!("  {d} [{k}]\n"));
        }
        out.push_str("== links ==\n");
        for (a, ai, b, bi) in &self.links {
            out.push_str(&format!("  {a}.{ai} -- {b}.{bi}\n"));
        }
        out
    }
}

/// Computes the topology view: devices the spec grants `view` on, and
/// links whose both endpoints are visible.
pub fn topology_view(net: &Network, spec: &PrivilegeMsp) -> TopologyView {
    let mut devices = Vec::new();
    for (_, d) in net.devices() {
        if is_allowed(spec, Action::View, &Resource::Device(d.name.clone())) {
            devices.push((d.name.clone(), d.kind.keyword().to_string()));
        }
    }
    devices.sort();
    let visible = |name: &str| devices.iter().any(|(d, _)| d == name);
    let mut links = Vec::new();
    for l in net.links() {
        let a = &net.device(l.a).name;
        let b = &net.device(l.b).name;
        if visible(a) && visible(b) {
            links.push((a.clone(), l.a_iface.clone(), b.clone(), l.b_iface.clone()));
        }
    }
    TopologyView { devices, links }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, Task};
    use heimdall_privilege::model::{Predicate, PrivilegeMsp, ResourcePattern};

    #[test]
    fn view_follows_privileges() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let spec = derive_privileges(&g.net, &task);
        let view = topology_view(&g.net, &spec);
        assert!(view.shows("fw1"));
        assert!(view.shows("h1"));
        assert!(!view.shows("acc3"));
        assert!(!view.shows("h7"));
    }

    #[test]
    fn links_need_both_ends_visible() {
        let g = enterprise_network();
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow(
                heimdall_privilege::model::Action::View,
                ResourcePattern::Device("core1".into()),
            ))
            .with(Predicate::allow(
                heimdall_privilege::model::Action::View,
                ResourcePattern::Device("core2".into()),
            ));
        let view = topology_view(&g.net, &spec);
        assert_eq!(view.devices.len(), 2);
        // Exactly the core1-core2 link is visible.
        assert_eq!(view.links.len(), 1);
    }

    #[test]
    fn full_spec_shows_everything() {
        let g = enterprise_network();
        let view = topology_view(&g.net, &PrivilegeMsp::allow_everything());
        assert_eq!(view.devices.len(), g.net.device_count());
        assert_eq!(view.links.len(), g.net.link_count());
        let text = view.render();
        assert!(text.contains("fw1 [firewall]"));
        assert!(text.contains("--"));
    }

    #[test]
    fn empty_spec_shows_nothing() {
        let g = enterprise_network();
        let view = topology_view(&g.net, &PrivilegeMsp::new());
        assert!(view.devices.is_empty());
        assert!(view.links.is_empty());
    }
}
