//! A technician session: ticket in, mediated commands through, change-set
//! out.
//!
//! The session snapshots the twin at start; [`TwinSession::finish`] diffs
//! the edited twin against that snapshot to produce the
//! [`ConfigDiff`] handed to the policy enforcer (step 3 of the Heimdall
//! workflow).

use crate::console::{execute, Command, CommandError};
use crate::emu::EmulatedNetwork;
use crate::monitor::ReferenceMonitor;
use crate::presentation::{topology_view, TopologyView};
use crate::slice::TwinSpec;
use heimdall_netmodel::diff::{diff_networks, ConfigDiff};
use heimdall_netmodel::topology::Network;
use heimdall_privilege::model::PrivilegeMsp;
use heimdall_telemetry::{SpanContext, SpanStatus, Stage};

/// Why a session command failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The reference monitor refused the command.
    PermissionDenied { command: String },
    /// The command did not parse or execute.
    Command(CommandError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::PermissionDenied { command } => {
                write!(f, "% Permission denied by Privilege_msp: {command}")
            }
            SessionError::Command(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// An active technician session on a twin.
pub struct TwinSession {
    baseline: Network,
    emu: EmulatedNetwork,
    monitor: ReferenceMonitor,
    commands_run: usize,
    tracing: SpanContext,
}

impl TwinSession {
    /// Opens a session on a twin for `technician` under `spec`.
    pub fn open(technician: &str, twin: TwinSpec, spec: PrivilegeMsp) -> Self {
        TwinSession {
            baseline: twin.net.clone(),
            emu: EmulatedNetwork::new(twin.net),
            monitor: ReferenceMonitor::new(technician, spec),
            commands_run: 0,
            tracing: SpanContext::disabled(),
        }
    }

    /// Attaches a telemetry context: every subsequent mediated console
    /// line records a `console` span (child of the context's span) with
    /// the device label and the monitor's allow/deny decision.
    pub fn set_tracing(&mut self, ctx: SpanContext) {
        self.tracing = ctx;
    }

    /// Executes one mediated console line on `device`.
    pub fn exec(&mut self, device: &str, line: &str) -> Result<String, SessionError> {
        let mut span = self.tracing.span(Stage::Console);
        if let Some(s) = span.as_mut() {
            s.set_device(device);
        }
        let cmd = match Command::parse(line) {
            Ok(cmd) => cmd,
            Err(e) => {
                if let Some(s) = span.as_mut() {
                    s.set_status(SpanStatus::Error);
                    s.set_detail("unparseable command");
                }
                return Err(SessionError::Command(e));
            }
        };
        let decision = self.monitor.mediate(device, line, &cmd);
        if !decision.is_allowed() {
            if let Some(s) = span.as_mut() {
                s.set_status(SpanStatus::Denied);
                s.set_detail(format!("denied: {line}"));
            }
            return Err(SessionError::PermissionDenied {
                command: line.to_string(),
            });
        }
        self.commands_run += 1;
        match execute(&mut self.emu, device, &cmd) {
            Ok(out) => Ok(out),
            Err(e) => {
                if let Some(s) = span.as_mut() {
                    s.set_status(SpanStatus::Error);
                }
                Err(SessionError::Command(e))
            }
        }
    }

    /// Polls `device`'s operational counters *through* the reference
    /// monitor: the poll is classified as a read-only `View`, mediated
    /// against the session's `Privilege_msp`, and recorded like any other
    /// command — scraping a device the technician may not view is a
    /// recorded denial, and no counters leak.
    pub fn poll_counters(
        &mut self,
        device: &str,
    ) -> Result<crate::emu::DeviceCounters, SessionError> {
        let cmd = Command::ShowCounters;
        let decision = self.monitor.mediate(device, "show counters", &cmd);
        if !decision.is_allowed() {
            // Only a denied (or failed) poll leaves a span: successful
            // polls run at scrape cadence, and span-per-poll would both
            // drown the technician's interactive trace in monitoring
            // noise and evict real spans from the ring.
            if let Some(mut s) = self.tracing.span(Stage::Console) {
                s.set_device(device);
                s.set_status(SpanStatus::Denied);
                s.set_detail(format!("denied: counter poll on {device}"));
            }
            return Err(SessionError::PermissionDenied {
                command: format!("show counters ({device})"),
            });
        }
        self.emu.device_counters(device).ok_or_else(|| {
            if let Some(mut s) = self.tracing.span(Stage::Console) {
                s.set_device(device);
                s.set_status(SpanStatus::Error);
                s.set_detail(format!("counter poll on missing device {device}"));
            }
            SessionError::Command(CommandError::NoSuchObject(format!("device {device}")))
        })
    }

    /// The topology view the technician sees.
    pub fn view(&self) -> TopologyView {
        topology_view(self.emu.network(), self.monitor.spec())
    }

    /// The reference monitor (audit feed, live spec for escalations).
    pub fn monitor(&self) -> &ReferenceMonitor {
        &self.monitor
    }

    /// Mutable monitor access (escalation grants).
    pub fn monitor_mut(&mut self) -> &mut ReferenceMonitor {
        &mut self.monitor
    }

    /// The emulation (for assertions/tests and the workflow driver).
    pub fn emu_mut(&mut self) -> &mut EmulatedNetwork {
        &mut self.emu
    }

    /// Number of successfully executed commands.
    pub fn commands_run(&self) -> usize {
        self.commands_run
    }

    /// Closes the session: the change-set to hand to the enforcer.
    pub fn finish(self) -> (ConfigDiff, ReferenceMonitor) {
        let diff = diff_networks(&self.baseline, self.emu.network());
        (diff, self.monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::slice_for_task;
    use heimdall_netmodel::acl::AclAction;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, Task, TaskKind};

    /// Production with the Figure 6 misconfig: fw1's LAN2->DMZ permit
    /// flipped to deny.
    fn broken_production() -> heimdall_netmodel::topology::Network {
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[1]
            .action = AclAction::Deny;
        net
    }

    fn acl_task() -> Task {
        Task {
            kind: TaskKind::AccessControl,
            affected: vec!["h4".to_string(), "srv1".to_string()],
        }
    }

    #[test]
    fn full_debug_and_fix_session() {
        let net = broken_production();
        let task = acl_task();
        let twin = slice_for_task(&net, &task);
        let spec = derive_privileges(&net, &task);
        let mut s = TwinSession::open("alice", twin, spec);

        // Reproduce: ping fails in the twin exactly like production.
        let out = s.exec("h4", "ping 10.2.1.10").unwrap();
        assert!(out.contains("failed"), "{out}");
        assert!(out.contains("acl 100"), "{out}");

        // Inspect and fix the ACL.
        let acls = s.exec("fw1", "show access-lists").unwrap();
        assert!(acls.contains("deny ip 10.1.2.0 0.0.0.255"));
        s.exec("fw1", "no access-list 100 line 2").unwrap();
        s.exec(
            "fw1",
            "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
        )
        .unwrap();

        // Verify the fix inside the twin.
        let out = s.exec("h4", "ping 10.2.1.10").unwrap();
        assert!(out.contains("success"), "{out}");

        let (diff, monitor) = s.finish();
        assert_eq!(diff.len(), 1, "one ACL replacement: {diff:?}");
        assert_eq!(diff.changes[0].device(), "fw1");
        assert!(monitor.denials().is_empty());
    }

    #[test]
    fn off_privilege_command_is_blocked_and_audited() {
        let net = broken_production();
        let task = acl_task();
        let twin = slice_for_task(&net, &task);
        let spec = derive_privileges(&net, &task);
        let mut s = TwinSession::open("mallory", twin, spec);

        // The ACL task does not include route changes.
        let e = s
            .exec("fw1", "ip route 0.0.0.0 0.0.0.0 10.255.0.1")
            .unwrap_err();
        assert!(matches!(e, SessionError::PermissionDenied { .. }));
        // And certainly not credential theft or destruction.
        let e = s.exec("fw1", "write erase").unwrap_err();
        assert!(matches!(e, SessionError::PermissionDenied { .. }));
        assert_eq!(s.monitor().denials().len(), 2);
        // Nothing changed.
        let (diff, _) = s.finish();
        assert!(diff.is_empty());
    }

    #[test]
    fn malicious_extra_edit_is_visible_in_the_diff() {
        // Figure 6's malicious technician: fixes the rule AND quietly
        // permits LAN2 -> LAN3 by editing another ACL they have rights to.
        let net = broken_production();
        let task = acl_task();
        let twin = slice_for_task(&net, &task);
        let spec = derive_privileges(&net, &task);
        let mut s = TwinSession::open("mallory", twin, spec);
        s.exec("fw1", "no access-list 100 line 2").unwrap();
        s.exec(
            "fw1",
            "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
        )
        .unwrap();
        // The sneaky extra change (same legitimate-looking command shape).
        s.exec(
            "fw1",
            "access-list 100 line 1 permit ip 10.1.2.0 0.0.0.255 10.1.3.0 0.0.0.255",
        )
        .unwrap();
        let (diff, _) = s.finish();
        // The enforcer will see the whole ACL replacement including the
        // malicious entry; nothing is hidden.
        assert_eq!(diff.len(), 1);
        match &diff.changes[0] {
            heimdall_netmodel::diff::ConfigChange::ReplaceAcl { entries, .. } => {
                assert_eq!(
                    entries.len(),
                    7,
                    "5 original + 1 malicious + ... got {}",
                    entries.len()
                );
            }
            other => panic!("unexpected change {other:?}"),
        }
    }

    #[test]
    fn counter_poll_is_mediated_and_denied_polls_leak_nothing() {
        let net = broken_production();
        let task = acl_task();
        let twin = slice_for_task(&net, &task);
        let spec = derive_privileges(&net, &task);
        let mut s = TwinSession::open("alice", twin, spec);

        // In-slice device: counters come back.
        let c = s.poll_counters("fw1").expect("fw1 is viewable");
        assert_eq!(c.device, "fw1");
        assert!(c.fib_routes > 0);

        // bdr1 is outside the ACL ticket's slice: the poll is a recorded
        // denial and returns no counters.
        let before = s.monitor().total_denials();
        let e = s.poll_counters("bdr1").unwrap_err();
        assert!(matches!(e, SessionError::PermissionDenied { .. }));
        assert_eq!(s.monitor().total_denials(), before + 1);
        let denied = s.monitor().denials();
        assert!(
            denied.iter().any(|ev| ev.device == "bdr1"),
            "denied poll must be in the audit trail"
        );
    }

    #[test]
    fn view_is_scoped_to_the_twin() {
        let net = broken_production();
        let task = acl_task();
        let twin = slice_for_task(&net, &task);
        let spec = derive_privileges(&net, &task);
        let s = TwinSession::open("alice", twin, spec);
        let view = s.view();
        assert!(view.shows("fw1"));
        assert!(!view.shows("acc3"));
        assert!(!view.shows("bdr1"));
    }

    #[test]
    fn session_counts_successful_commands_only() {
        let net = broken_production();
        let task = acl_task();
        let twin = slice_for_task(&net, &task);
        let spec = derive_privileges(&net, &task);
        let mut s = TwinSession::open("alice", twin, spec);
        s.exec("h4", "ping 10.2.1.10").unwrap();
        let _ = s.exec("fw1", "write erase");
        assert_eq!(s.commands_run(), 1);
    }
}
