//! Property tests for the WAL record format and recovery invariants:
//! round-trips are lossless, any single corrupted byte is detected (a
//! typed error, never a garbage record), and truncation at *every*
//! byte offset recovers exactly the longest valid prefix.

use heimdall_store::record;
use heimdall_store::{MemStorage, Storage, Wal, WalConfig, GENESIS_CHAIN};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    collection::vec(any::<u8>(), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_round_trips(
        seq in any::<u64>(),
        kind in any::<u8>(),
        payload in arb_payload(),
        prev_seed in any::<u64>(),
    ) {
        let prev = record::chain_digest(&GENESIS_CHAIN, prev_seed, 0, b"prev");
        let (frame, chain) = record::encode(seq, kind, &payload, &prev);
        let (rec, used) = record::decode_chained(&frame, seq, &prev)
            .expect("clean frame decodes");
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(rec.seq, seq);
        prop_assert_eq!(rec.kind, kind);
        prop_assert_eq!(rec.payload, payload);
        prop_assert_eq!(rec.chain, chain);
    }

    #[test]
    fn any_single_flipped_byte_is_a_decode_error(
        seq in any::<u64>(),
        kind in any::<u8>(),
        payload in arb_payload(),
        pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut frame, _) = record::encode(seq, kind, &payload, &GENESIS_CHAIN);
        let idx = (pick % frame.len() as u64) as usize;
        frame[idx] ^= 1 << bit;
        // Every byte of the frame is covered by magic, version, CRC or
        // the CRC'd header: corruption must surface as an error, never
        // as a successfully decoded (garbage) record.
        prop_assert!(record::decode(&frame).is_err(), "flip at byte {} undetected", idx);
    }

    #[test]
    fn flipped_byte_never_passes_chain_verification(
        payload in arb_payload(),
        pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut frame, _) = record::encode(3, 1, &payload, &GENESIS_CHAIN);
        let idx = (pick % frame.len() as u64) as usize;
        frame[idx] ^= 1 << bit;
        prop_assert!(record::decode_chained(&frame, 3, &GENESIS_CHAIN).is_err());
    }

    #[test]
    fn torn_tail_at_every_offset_recovers_longest_valid_prefix(
        lens in collection::vec(0usize..40, 1..7),
        fill in any::<u8>(),
    ) {
        // Build a clean chained log by hand so each truncation round
        // starts from pristine bytes (recovery truncates in place).
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut chain = GENESIS_CHAIN;
        for (i, len) in lens.iter().enumerate() {
            let payload = vec![fill.wrapping_add(i as u8); *len];
            let (frame, c) = record::encode(i as u64, (i % 5) as u8, &payload, &chain);
            chain = c;
            frames.push(frame);
        }
        let full: Vec<u8> = frames.iter().flatten().copied().collect();
        let boundaries: Vec<usize> = frames
            .iter()
            .scan(0usize, |acc, f| {
                *acc += f.len();
                Some(*acc)
            })
            .collect();
        for cut in 0..=full.len() {
            let storage = MemStorage::new();
            storage.append("wal-0000000000000000.log", &full[..cut]).unwrap();
            let (_, rec) = Wal::open(Box::new(storage), WalConfig::default())
                .expect("recovery never fails on a torn tail");
            let expected = boundaries.iter().filter(|b| **b <= cut).count();
            prop_assert_eq!(
                rec.records.len(),
                expected,
                "cut at byte {} of {}",
                cut,
                full.len()
            );
            prop_assert_eq!(
                rec.report.torn_bytes_discarded,
                (cut - boundaries.get(expected.wrapping_sub(1)).copied().unwrap_or(0)) as u64
            );
        }
    }
}

/// Deterministic (non-proptest) exhaustive sweep used by CI: a synced
/// multi-record log torn at every byte boundary always recovers a
/// prefix, and re-opening after recovery is idempotent.
#[test]
fn torn_tail_sweep_via_wal_api() {
    let storage = MemStorage::new();
    let (wal, _) = Wal::open(Box::new(storage.clone()), WalConfig::default()).unwrap();
    for i in 0..12u64 {
        wal.append_sync(1, format!("journal-entry-{i:02}").as_bytes())
            .unwrap();
    }
    let seg = wal.segment_names().pop().unwrap();
    drop(wal);
    let full = storage.contents(&seg).unwrap();
    let mut last_count = usize::MAX;
    for cut in (0..=full.len()).rev() {
        let fresh = MemStorage::new();
        fresh.append(&seg, &full[..cut]).unwrap();
        let (_, rec) = Wal::open(Box::new(fresh.clone()), WalConfig::default()).unwrap();
        assert!(
            rec.records.len() <= last_count,
            "prefix shrinks monotonically"
        );
        last_count = rec.records.len();
        // Recovery truncated the torn bytes: a second open is clean.
        let (_, again) = Wal::open(Box::new(fresh), WalConfig::default()).unwrap();
        assert_eq!(again.records.len(), rec.records.len());
        assert_eq!(again.report.torn_bytes_discarded, 0);
    }
    assert_eq!(last_count, 0, "cut at 0 recovers the empty log");
}
