//! heimdall-store: crash-safe persistence for the Heimdall pipeline.
//!
//! The paper's trust story rests on a tamper-evident audit trail and
//! integrity-sealed enforcer state — none of which helps if a crashed
//! broker forgets it. This crate makes durability a first-class
//! subsystem: a segmented append-only write-ahead log whose records are
//! CRC-framed *and* SHA-256 hash-chained (the same primitive as the
//! enforcer's in-memory audit chain, so the on-disk log extends the
//! same tamper-evidence argument to rest), with group-commit batching
//! for concurrent appenders, snapshots plus segment compaction to bound
//! replay, and a deterministic recovery pass that hands back the
//! longest fully-verified prefix.
//!
//! Storage sits behind the [`Storage`] trait: [`FileStorage`] for real
//! fsync-backed files, and [`MemStorage`] with deterministic fault
//! injection (torn tail, bit flip, short read, delayed sync, simulated
//! power loss) so crash tests run offline and reproducibly.
//!
//! The contract consumers build on: a record acknowledged by
//! [`Wal::append_sync`] or covered by a returned [`Wal::sync_barrier`]
//! survives any crash; recovery never yields a record that fails CRC,
//! sequence, or chain verification; and whatever is lost is a suffix —
//! never a hole.

pub mod record;
pub mod storage;
pub mod wal;

pub use record::{chain_digest, crc32, DecodeError, Record, GENESIS_CHAIN, RECORD_VERSION};
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{CompactReport, Durability, Recovered, RecoveryReport, Wal, WalConfig, WalError};

#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn wal_is_send_sync() {
        assert_send_sync::<Wal>();
        assert_send_sync::<MemStorage>();
        assert_send_sync::<FileStorage>();
    }
}
