//! The segmented write-ahead log: group commit, snapshots, compaction,
//! and deterministic recovery.
//!
//! # Write path
//!
//! Appenders encode their record under the state lock (which serializes
//! sequence numbers and the hash chain) and enqueue the frame into a
//! shared pending buffer. The first appender to find no active writer
//! becomes the *leader*: it repeatedly swaps the pending buffer out and
//! writes it as one `append` + (in [`Durability::GroupCommitSync`]
//! mode) one `sync`, while later appenders keep enqueuing concurrently.
//! One device flush therefore amortizes over every record that arrived
//! while the previous flush was in flight — the classic group commit.
//! With `group_commit` disabled each record is written and synced alone
//! under the state lock, which is the honest per-record baseline the
//! bench compares against.
//!
//! # Recovery invariants
//!
//! [`Wal::open`] restores the longest *prefix* of the log that is fully
//! intact: it picks the newest decodable snapshot, then replays records
//! in sequence order, verifying CRC, sequence continuity, and hash-chain
//! linkage. The first undecodable byte ends the prefix — the torn tail
//! is truncated away and any later segments are discarded, so a
//! subsequent append continues a clean, verified chain. A record is
//! *acknowledged* only after its sync barrier returns, and sync order
//! equals sequence order, so an acknowledged record can never sit after
//! a lost one: prefix recovery implies zero lost acknowledged records.

use crate::record::{self, DecodeError, Record, GENESIS_CHAIN};
use crate::storage::Storage;
use heimdall_enforcer::crypto::Digest;
use parking_lot::{Condvar, Mutex};

/// How much durability the caller wants from the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No journal at all (callers skip the WAL entirely).
    Off,
    /// Records are written but not fsynced on the hot path; a crash may
    /// lose the tail. Explicit [`Wal::sync_barrier`] calls still flush.
    Async,
    /// Acknowledgements wait for a (group-committed) sync.
    #[default]
    GroupCommitSync,
}

/// WAL tuning knobs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Durability level; [`Durability::Off`] behaves like `Async` if a
    /// `Wal` is constructed with it (callers normally skip the WAL).
    pub durability: Durability,
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_max_bytes: usize,
    /// Batch concurrent appenders into shared flushes (leader/follower
    /// group commit). `false` serializes one write + sync per record.
    pub group_commit: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            durability: Durability::GroupCommitSync,
            segment_max_bytes: 1 << 20,
            group_commit: true,
        }
    }
}

/// Errors from WAL operations. IO errors are sticky: once a write
/// fails the log refuses further appends rather than leaving a gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying storage failure.
    Io(String),
    /// The on-disk layout is inconsistent (gaps, bad snapshot linkage).
    Corrupt(String),
    /// Segments exist but the prefix needed to verify them from genesis
    /// (or a snapshot) is gone.
    MissingPrefix,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(e) => write!(f, "wal corrupt: {e}"),
            WalError::MissingPrefix => write!(f, "wal prefix missing: cannot verify chain"),
        }
    }
}

impl std::error::Error for WalError {}

/// What a recovery pass found and discarded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records after the snapshot cut returned to the caller.
    pub records_replayed: u64,
    /// Pre-snapshot records CRC-skipped while locating the cut point.
    pub records_skipped: u64,
    /// Bytes dropped from torn tails, corrupt frames, and orphaned
    /// suffix segments.
    pub torn_bytes_discarded: u64,
    /// Segment files visited.
    pub segments_scanned: u64,
    /// Whole segment files discarded (suffix after a corrupt frame).
    pub segments_discarded: u64,
    /// Snapshot files that failed to decode and were removed.
    pub snapshots_discarded: u64,
    /// Whether a snapshot seeded the recovered state.
    pub used_snapshot: bool,
}

/// The outcome of [`Wal::open`]: the recovered prefix.
#[derive(Debug)]
pub struct Recovered {
    /// Payload of the newest valid snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Sequence-count cut point of that snapshot (records with
    /// `seq < snapshot_through` are inside the snapshot).
    pub snapshot_through: Option<u64>,
    /// Verified records after the cut, in sequence order.
    pub records: Vec<Record>,
    /// What was replayed and what was discarded.
    pub report: RecoveryReport,
}

/// Compaction summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Segment files removed (fully covered by the newest snapshot).
    pub segments_removed: u64,
    /// Superseded snapshot files removed.
    pub snapshots_removed: u64,
}

const SNAP_MAGIC: [u8; 4] = *b"HSN1";
const SNAP_VERSION: u8 = 1;
const SNAP_HEADER_LEN: usize = 60;

fn encode_snapshot(through: u64, chain: &Digest, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SNAP_HEADER_LEN + payload.len());
    buf.extend_from_slice(&SNAP_MAGIC);
    buf.push(SNAP_VERSION);
    buf.extend_from_slice(&[0u8; 3]);
    buf.extend_from_slice(&through.to_le_bytes());
    buf.extend_from_slice(chain);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let mut crc = record::crc32(&buf[4..56]);
    crc ^= record::crc32(payload).rotate_left(1);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn decode_snapshot(buf: &[u8]) -> Result<(u64, Digest, Vec<u8>), DecodeError> {
    if buf.len() < SNAP_HEADER_LEN {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need: SNAP_HEADER_LEN,
        });
    }
    if buf[0..4] != SNAP_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if buf[4] != SNAP_VERSION {
        return Err(DecodeError::UnsupportedVersion(buf[4]));
    }
    let through = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let mut chain = [0u8; 32];
    chain.copy_from_slice(&buf[16..48]);
    let len = u64::from_le_bytes(buf[48..56].try_into().expect("8 bytes")) as usize;
    if len > record::MAX_PAYLOAD {
        return Err(DecodeError::TooLarge(len as u32));
    }
    if buf.len() < SNAP_HEADER_LEN + len {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need: SNAP_HEADER_LEN + len,
        });
    }
    let stored = u32::from_le_bytes(buf[56..60].try_into().expect("4 bytes"));
    let payload = &buf[SNAP_HEADER_LEN..SNAP_HEADER_LEN + len];
    let mut crc = record::crc32(&buf[4..56]);
    crc ^= record::crc32(payload).rotate_left(1);
    if crc != stored {
        return Err(DecodeError::BadCrc);
    }
    Ok((through, chain, payload.to_vec()))
}

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016x}.log")
}

fn snapshot_name(through: u64) -> String {
    format!("snap-{through:016x}.snap")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

#[derive(Debug, Clone)]
struct Segment {
    first_seq: u64,
    name: String,
    bytes: usize,
}

struct WalState {
    /// Encoded frames waiting for the leader to write them.
    pending: Vec<u8>,
    /// Sequence number of the first frame in `pending`.
    pending_first_seq: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Running chain digest (of the last assigned record).
    chain: Digest,
    /// Whether a leader is currently draining `pending`.
    writer_active: bool,
    /// Cut point of the newest snapshot written or recovered.
    last_snapshot: Option<u64>,
}

struct Progress {
    /// Records `[0, written)` have reached storage.
    written: u64,
    /// Records `[0, durable)` have been synced.
    durable: u64,
    /// Sticky IO failure: the log is wedged once set.
    error: Option<String>,
}

/// A segmented, hash-chained, group-committing write-ahead log.
pub struct Wal {
    storage: Box<dyn Storage>,
    cfg: WalConfig,
    state: Mutex<WalState>,
    /// Segment bookkeeping; locked by whichever thread is writing.
    /// Lock order: `state` → `segments` → `progress`.
    segments: Mutex<Vec<Segment>>,
    progress: Mutex<Progress>,
    cv: Condvar,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Wal")
            .field("next_seq", &st.next_seq)
            .field("last_snapshot", &st.last_snapshot)
            .finish()
    }
}

impl Wal {
    /// Opens (recovering if data exists) a WAL on `storage`.
    pub fn open(storage: Box<dyn Storage>, cfg: WalConfig) -> Result<(Wal, Recovered), WalError> {
        let names = storage.list().map_err(|e| WalError::Io(e.to_string()))?;
        let mut seg_names: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| parse_segment_name(n).map(|f| (f, n.clone())))
            .collect();
        seg_names.sort();
        let mut snap_names: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| parse_snapshot_name(n).map(|t| (t, n.clone())))
            .collect();
        snap_names.sort_by_key(|s| std::cmp::Reverse(s.0));

        let mut report = RecoveryReport::default();
        let mut snapshot: Option<(u64, Digest, Vec<u8>)> = None;
        for (through, name) in &snap_names {
            if snapshot.is_some() {
                break;
            }
            let decoded = storage
                .read(name)
                .ok()
                .and_then(|bytes| decode_snapshot(&bytes).ok())
                .filter(|(t, _, _)| t == through);
            match decoded {
                Some(found) => snapshot = Some(found),
                None => {
                    let _ = storage.remove(name);
                    report.snapshots_discarded += 1;
                }
            }
        }
        report.used_snapshot = snapshot.is_some();
        let (start, snap_chain) = match &snapshot {
            Some((t, c, _)) => (*t, *c),
            None => (0, GENESIS_CHAIN),
        };

        let scan_from = if seg_names.is_empty() {
            0
        } else {
            match seg_names.iter().rposition(|(f, _)| *f <= start) {
                Some(i) => i,
                None if snapshot.is_none() => return Err(WalError::MissingPrefix),
                None => {
                    return Err(WalError::Corrupt(format!(
                        "gap between snapshot cut {start} and first segment {}",
                        seg_names[0].0
                    )))
                }
            }
        };

        let mut chain = snap_chain;
        // `next` tracks the sequence expected at the scan cursor; records
        // below `start` are CRC-skipped, records at/after it are
        // chain-verified against the snapshot's digest.
        let mut next = seg_names.get(scan_from).map(|(f, _)| *f).unwrap_or(start);
        let mut records = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut discard_from: Option<usize> = None;

        'scan: for (idx, (first, name)) in seg_names.iter().enumerate() {
            if idx < scan_from {
                let bytes = storage.size(name).unwrap_or(0) as usize;
                segments.push(Segment {
                    first_seq: *first,
                    name: name.clone(),
                    bytes,
                });
                continue;
            }
            report.segments_scanned += 1;
            if idx > scan_from && *first != next {
                discard_from = Some(idx);
                break 'scan;
            }
            let data = match storage.read(name) {
                Ok(d) => d,
                Err(_) => {
                    discard_from = Some(idx);
                    break 'scan;
                }
            };
            let mut off = 0usize;
            while off < data.len() {
                let res = if next < start {
                    record::decode(&data[off..]).and_then(|(r, used)| {
                        if r.seq != next {
                            Err(DecodeError::BadSeq {
                                expected: next,
                                found: r.seq,
                            })
                        } else {
                            Ok((r, used))
                        }
                    })
                } else {
                    record::decode_chained(&data[off..], next, &chain)
                };
                match res {
                    Ok((rec, used)) => {
                        off += used;
                        next += 1;
                        if rec.seq >= start {
                            chain = rec.chain;
                            report.records_replayed += 1;
                            records.push(rec);
                        } else {
                            report.records_skipped += 1;
                        }
                    }
                    Err(_) => {
                        report.torn_bytes_discarded += (data.len() - off) as u64;
                        storage
                            .truncate(name, off as u64)
                            .map_err(|e| WalError::Io(e.to_string()))?;
                        segments.push(Segment {
                            first_seq: *first,
                            name: name.clone(),
                            bytes: off,
                        });
                        discard_from = Some(idx + 1);
                        break 'scan;
                    }
                }
            }
            segments.push(Segment {
                first_seq: *first,
                name: name.clone(),
                bytes: data.len(),
            });
        }
        if let Some(from) = discard_from {
            for (_, name) in &seg_names[from..] {
                report.torn_bytes_discarded += storage.size(name).unwrap_or(0);
                let _ = storage.remove(name);
                report.segments_discarded += 1;
            }
        }
        if segments.is_empty() {
            segments.push(Segment {
                first_seq: next,
                name: segment_name(next),
                bytes: 0,
            });
        }

        let snapshot_through = snapshot.as_ref().map(|(t, _, _)| *t);
        let snapshot_payload = snapshot.map(|(_, _, p)| p);
        let wal = Wal {
            storage,
            cfg,
            state: Mutex::new(WalState {
                pending: Vec::new(),
                pending_first_seq: 0,
                next_seq: next,
                chain,
                writer_active: false,
                last_snapshot: snapshot_through,
            }),
            segments: Mutex::new(segments),
            progress: Mutex::new(Progress {
                written: next,
                durable: next,
                error: None,
            }),
            cv: Condvar::new(),
        };
        Ok((
            wal,
            Recovered {
                snapshot: snapshot_payload,
                snapshot_through,
                records,
                report,
            },
        ))
    }

    /// The next sequence number the log will assign.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// The running chain digest (of the last assigned record).
    pub fn chain(&self) -> Digest {
        self.state.lock().chain
    }

    /// How many records are durable (`[0, n)`).
    pub fn durable(&self) -> u64 {
        self.progress.lock().durable
    }

    /// Names of the current segment files, oldest first.
    pub fn segment_names(&self) -> Vec<String> {
        self.segments
            .lock()
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }

    /// Cut point of the newest snapshot, if one exists.
    pub fn last_snapshot(&self) -> Option<u64> {
        self.state.lock().last_snapshot
    }

    fn sticky(&self, e: std::io::Error) -> WalError {
        let msg = e.to_string();
        let mut p = self.progress.lock();
        p.error = Some(msg.clone());
        self.cv.notify_all();
        WalError::Io(msg)
    }

    fn check_error(&self) -> Result<(), WalError> {
        let p = self.progress.lock();
        match &p.error {
            Some(e) => Err(WalError::Io(e.clone())),
            None => Ok(()),
        }
    }

    /// Writes one contiguous run of frames covering seqs
    /// `[first, last]`, rotating segments as needed. Caller coordinates
    /// exclusivity (leader role or the per-record state lock).
    fn write_batch(&self, bytes: &[u8], first: u64, last: u64, sync: bool) -> Result<(), WalError> {
        let mut segs = self.segments.lock();
        let rotate = match segs.last() {
            None => true,
            Some(s) => s.bytes > 0 && s.bytes + bytes.len() > self.cfg.segment_max_bytes,
        };
        if rotate {
            if let Some(prev) = segs.last() {
                // Keep the invariant that only the active segment can
                // hold unsynced bytes: flush before rotating away.
                let name = prev.name.clone();
                self.storage.sync(&name).map_err(|e| self.sticky(e))?;
                let mut p = self.progress.lock();
                p.durable = p.durable.max(p.written);
            }
            segs.push(Segment {
                first_seq: first,
                name: segment_name(first),
                bytes: 0,
            });
        }
        let active = segs.last_mut().expect("active segment");
        let name = active.name.clone();
        self.storage
            .append(&name, bytes)
            .map_err(|e| self.sticky(e))?;
        active.bytes += bytes.len();
        if sync {
            self.storage.sync(&name).map_err(|e| self.sticky(e))?;
        }
        drop(segs);
        let mut p = self.progress.lock();
        p.written = p.written.max(last + 1);
        if sync {
            p.durable = p.durable.max(last + 1);
        }
        self.cv.notify_all();
        Ok(())
    }

    /// Leader loop: drains the pending buffer batch by batch until it
    /// is empty, then retires the leader role.
    fn drain(&self) -> Result<(), WalError> {
        let sync = matches!(self.cfg.durability, Durability::GroupCommitSync);
        loop {
            let (batch, first, last) = {
                let mut st = self.state.lock();
                if st.pending.is_empty() {
                    st.writer_active = false;
                    return Ok(());
                }
                (
                    std::mem::take(&mut st.pending),
                    st.pending_first_seq,
                    st.next_seq - 1,
                )
            };
            if let Err(e) = self.write_batch(&batch, first, last, sync) {
                self.state.lock().writer_active = false;
                return Err(e);
            }
        }
    }

    /// Encodes and enqueues one record; returns its seq and whether the
    /// caller became the leader.
    fn enqueue(&self, kind: u8, payload: &[u8]) -> Result<(u64, bool), WalError> {
        let mut st = self.state.lock();
        self.check_error()?;
        let seq = st.next_seq;
        st.next_seq += 1;
        let (frame, chain) = record::encode(seq, kind, payload, &st.chain);
        st.chain = chain;
        if st.pending.is_empty() {
            st.pending_first_seq = seq;
        }
        st.pending.extend_from_slice(&frame);
        let lead = !st.writer_active;
        if lead {
            st.writer_active = true;
        }
        Ok((seq, lead))
    }

    /// Appends a record without waiting for durability. The record is
    /// ordered before any later append, so a later [`Wal::sync_barrier`]
    /// (or synced record) also makes this one durable.
    pub fn append(&self, kind: u8, payload: &[u8]) -> Result<u64, WalError> {
        if self.cfg.group_commit {
            let (seq, lead) = self.enqueue(kind, payload)?;
            if lead {
                self.drain()?;
            }
            Ok(seq)
        } else {
            let mut st = self.state.lock();
            self.check_error()?;
            let seq = st.next_seq;
            st.next_seq += 1;
            let (frame, chain) = record::encode(seq, kind, payload, &st.chain);
            st.chain = chain;
            self.write_batch(&frame, seq, seq, false)?;
            Ok(seq)
        }
    }

    /// Appends a record and waits until it is durable.
    pub fn append_sync(&self, kind: u8, payload: &[u8]) -> Result<u64, WalError> {
        if !matches!(self.cfg.durability, Durability::GroupCommitSync) {
            let seq = self.append(kind, payload)?;
            self.sync_barrier()?;
            return Ok(seq);
        }
        if self.cfg.group_commit {
            let (seq, lead) = self.enqueue(kind, payload)?;
            if lead {
                self.drain()?;
            }
            self.wait_durable(seq + 1)?;
            Ok(seq)
        } else {
            let mut st = self.state.lock();
            self.check_error()?;
            let seq = st.next_seq;
            st.next_seq += 1;
            let (frame, chain) = record::encode(seq, kind, payload, &st.chain);
            st.chain = chain;
            self.write_batch(&frame, seq, seq, true)?;
            Ok(seq)
        }
    }

    fn wait_durable(&self, target: u64) -> Result<(), WalError> {
        let mut p = self.progress.lock();
        loop {
            if let Some(e) = &p.error {
                return Err(WalError::Io(e.clone()));
            }
            if p.durable >= target {
                return Ok(());
            }
            self.cv.wait(&mut p);
        }
    }

    /// Flushes and syncs everything appended so far. On return, every
    /// previously appended record is durable — this is the
    /// acknowledgement point for group-committed commits.
    pub fn sync_barrier(&self) -> Result<(), WalError> {
        let target = self.state.lock().next_seq;
        if target == 0 {
            return Ok(());
        }
        if self.cfg.group_commit {
            let lead = {
                let mut st = self.state.lock();
                if !st.pending.is_empty() && !st.writer_active {
                    st.writer_active = true;
                    true
                } else {
                    false
                }
            };
            if lead {
                self.drain()?;
            }
            // Wait for the (possibly other-thread) leader to land our
            // prefix in storage.
            let mut p = self.progress.lock();
            loop {
                if let Some(e) = &p.error {
                    return Err(WalError::Io(e.clone()));
                }
                if p.written >= target {
                    break;
                }
                self.cv.wait(&mut p);
            }
        }
        if self.progress.lock().durable >= target {
            return Ok(());
        }
        // Only the active segment can hold unsynced bytes (rotation
        // flushes the previous one), so one sync covers the gap.
        let name = self.segments.lock().last().map(|s| s.name.clone());
        if let Some(name) = name {
            self.storage.sync(&name).map_err(|e| self.sticky(e))?;
        }
        let mut p = self.progress.lock();
        p.durable = p.durable.max(target);
        self.cv.notify_all();
        Ok(())
    }

    /// Writes a snapshot whose payload must describe all state through
    /// the current cut (every record appended so far). Returns the cut
    /// point. The prefix is synced before the snapshot lands, and the
    /// snapshot file is written atomically, so a crash anywhere leaves
    /// either the old recovery path or the new one — never neither.
    pub fn write_snapshot(&self, payload: &[u8]) -> Result<u64, WalError> {
        let (through, chain) = {
            let st = self.state.lock();
            (st.next_seq, st.chain)
        };
        self.sync_barrier()?;
        let bytes = encode_snapshot(through, &chain, payload);
        self.storage
            .write_atomic(&snapshot_name(through), &bytes)
            .map_err(|e| self.sticky(e))?;
        self.state.lock().last_snapshot = Some(through);
        Ok(through)
    }

    /// Removes segments fully covered by the newest snapshot, plus
    /// superseded snapshot files.
    pub fn compact(&self) -> Result<CompactReport, WalError> {
        let mut report = CompactReport::default();
        let through = match self.state.lock().last_snapshot {
            Some(t) => t,
            None => return Ok(report),
        };
        let names = self
            .storage
            .list()
            .map_err(|e| WalError::Io(e.to_string()))?;
        for name in names {
            if let Some(t) = parse_snapshot_name(&name) {
                if t < through {
                    let _ = self.storage.remove(&name);
                    report.snapshots_removed += 1;
                }
            }
        }
        let mut segs = self.segments.lock();
        while segs.len() > 1 && segs[1].first_seq <= through {
            let victim = segs.remove(0);
            self.storage
                .remove(&victim.name)
                .map_err(|e| WalError::Io(e.to_string()))?;
            report.segments_removed += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use std::sync::Arc;

    fn mem_wal(cfg: WalConfig) -> (Wal, MemStorage) {
        let storage = MemStorage::new();
        let (wal, rec) = Wal::open(Box::new(storage.clone()), cfg).unwrap();
        assert_eq!(rec.records.len(), 0);
        (wal, storage)
    }

    #[test]
    fn append_recover_round_trip() {
        let (wal, storage) = mem_wal(WalConfig::default());
        for i in 0..20u8 {
            wal.append_sync(i % 3, format!("payload-{i}").as_bytes())
                .unwrap();
        }
        drop(wal);
        let (wal2, rec) = Wal::open(Box::new(storage), WalConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 20);
        assert_eq!(rec.report.records_replayed, 20);
        assert_eq!(rec.records[7].payload, b"payload-7");
        assert_eq!(wal2.next_seq(), 20);
    }

    #[test]
    fn unsynced_tail_lost_on_crash_but_prefix_survives() {
        let (wal, storage) = mem_wal(WalConfig {
            durability: Durability::Async,
            ..WalConfig::default()
        });
        wal.append(1, b"one").unwrap();
        wal.append(1, b"two").unwrap();
        wal.sync_barrier().unwrap();
        wal.append(1, b"three-unsynced").unwrap();
        storage.crash();
        let (_, rec) = Wal::open(Box::new(storage), WalConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1].payload, b"two");
    }

    #[test]
    fn group_commit_batches_syncs() {
        let storage = MemStorage::new();
        storage.set_sync_cost(std::time::Duration::from_micros(200));
        let (wal, _) = Wal::open(Box::new(storage.clone()), WalConfig::default()).unwrap();
        let wal = Arc::new(wal);
        let threads = 8;
        let per = 40u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..per {
                        wal.append_sync(1, format!("t{t}-{i}").as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = threads as u64 * per;
        assert_eq!(wal.durable(), total);
        assert!(
            storage.sync_count() < total,
            "expected batched syncs, got {} for {} records",
            storage.sync_count(),
            total
        );
        drop(wal);
        let (_, rec) = Wal::open(Box::new(storage), WalConfig::default()).unwrap();
        assert_eq!(rec.records.len(), total as usize);
        // Sequence order and chain already verified by open(); spot-check order.
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn rotation_spans_segments_and_recovers() {
        let cfg = WalConfig {
            segment_max_bytes: 256,
            ..WalConfig::default()
        };
        let (wal, storage) = mem_wal(cfg.clone());
        for i in 0..50u64 {
            wal.append_sync(2, format!("record-number-{i:04}").as_bytes())
                .unwrap();
        }
        assert!(wal.segment_names().len() > 1, "expected rotation");
        drop(wal);
        let (_, rec) = Wal::open(Box::new(storage), cfg).unwrap();
        assert_eq!(rec.records.len(), 50);
        assert!(rec.report.segments_scanned > 1);
    }

    #[test]
    fn snapshot_and_compaction() {
        let cfg = WalConfig {
            segment_max_bytes: 200,
            ..WalConfig::default()
        };
        let (wal, storage) = mem_wal(cfg.clone());
        for i in 0..30u64 {
            wal.append_sync(1, format!("pre-snapshot-{i:03}").as_bytes())
                .unwrap();
        }
        let through = wal.write_snapshot(b"state-at-30").unwrap();
        assert_eq!(through, 30);
        let report = wal.compact().unwrap();
        assert!(report.segments_removed > 0, "expected compaction");
        for i in 0..5u64 {
            wal.append_sync(1, format!("post-snapshot-{i}").as_bytes())
                .unwrap();
        }
        drop(wal);
        let (_, rec) = Wal::open(Box::new(storage), cfg).unwrap();
        assert!(rec.report.used_snapshot);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state-at-30"[..]));
        assert_eq!(rec.snapshot_through, Some(30));
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.records[0].seq, 30);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older() {
        let (wal, storage) = mem_wal(WalConfig::default());
        for i in 0..10u64 {
            wal.append_sync(1, format!("r{i}").as_bytes()).unwrap();
        }
        wal.write_snapshot(b"older-good").unwrap();
        for i in 10..14u64 {
            wal.append_sync(1, format!("r{i}").as_bytes()).unwrap();
        }
        wal.write_snapshot(b"newer-corrupted").unwrap();
        drop(wal);
        storage.flip_bit(&snapshot_name(14), 61, 0);
        let (_, rec) = Wal::open(Box::new(storage), WalConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"older-good"[..]));
        assert_eq!(rec.snapshot_through, Some(10));
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.report.snapshots_discarded, 1);
    }

    #[test]
    fn bit_flip_mid_log_discards_suffix_only() {
        let (wal, storage) = mem_wal(WalConfig::default());
        let mut offsets = Vec::new();
        let seg = wal.segment_names().pop().unwrap();
        for i in 0..10u64 {
            wal.append_sync(1, format!("record-{i}").as_bytes())
                .unwrap();
            offsets.push(storage.size(&seg).unwrap());
        }
        drop(wal);
        // Flip one bit inside record 6's frame.
        storage.flip_bit(&seg, offsets[5] as usize + 10, 3);
        let (_, rec) = Wal::open(Box::new(storage), WalConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 6, "prefix before the flip survives");
        assert!(rec.report.torn_bytes_discarded > 0);
    }

    #[test]
    fn short_read_recovers_prefix() {
        let (wal, storage) = mem_wal(WalConfig::default());
        for i in 0..8u64 {
            wal.append_sync(1, format!("record-{i}").as_bytes())
                .unwrap();
        }
        let seg = wal.segment_names().pop().unwrap();
        drop(wal);
        let full = storage.size(&seg).unwrap();
        storage.set_short_read(&seg, full as usize / 2);
        let (_, rec) = Wal::open(Box::new(storage), WalConfig::default()).unwrap();
        assert!(rec.records.len() < 8);
        assert!(!rec.records.is_empty());
    }

    #[test]
    fn missing_prefix_is_detected() {
        let cfg = WalConfig {
            segment_max_bytes: 128,
            ..WalConfig::default()
        };
        let (wal, storage) = mem_wal(cfg.clone());
        for i in 0..40u64 {
            wal.append_sync(1, format!("record-number-{i:04}").as_bytes())
                .unwrap();
        }
        let first = wal.segment_names().remove(0);
        drop(wal);
        storage.remove(&first).unwrap();
        assert!(matches!(
            Wal::open(Box::new(storage), cfg),
            Err(WalError::MissingPrefix)
        ));
    }

    #[test]
    fn sticky_error_after_storage_failure() {
        // Removing the active segment out from under FileStorage makes
        // sync fail; MemStorage never fails, so use a tiny adversarial
        // wrapper instead.
        struct FailingSync(MemStorage, std::sync::atomic::AtomicBool);
        impl Storage for FailingSync {
            fn list(&self) -> std::io::Result<Vec<String>> {
                self.0.list()
            }
            fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
                self.0.read(name)
            }
            fn append(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
                self.0.append(name, data)
            }
            fn sync(&self, name: &str) -> std::io::Result<()> {
                if self.1.load(std::sync::atomic::Ordering::SeqCst) {
                    return Err(std::io::Error::other("injected sync failure"));
                }
                self.0.sync(name)
            }
            fn write_atomic(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
                self.0.write_atomic(name, data)
            }
            fn remove(&self, name: &str) -> std::io::Result<()> {
                self.0.remove(name)
            }
            fn truncate(&self, name: &str, len: u64) -> std::io::Result<()> {
                self.0.truncate(name, len)
            }
            fn size(&self, name: &str) -> std::io::Result<u64> {
                self.0.size(name)
            }
        }
        let backing = MemStorage::new();
        let failing = FailingSync(backing, std::sync::atomic::AtomicBool::new(false));
        let (wal, _) = Wal::open(Box::new(failing), WalConfig::default()).unwrap();
        wal.append_sync(1, b"fine").unwrap();
        // Flip the failure on via the storage trait object: we no longer
        // hold it, so drive the state through a fresh handle instead.
        // (Simpler: construct the wal with the flag pre-armed.)
        let backing = MemStorage::new();
        let failing = FailingSync(backing, std::sync::atomic::AtomicBool::new(true));
        let (wal, _) = Wal::open(Box::new(failing), WalConfig::default()).unwrap();
        assert!(matches!(
            wal.append_sync(1, b"doomed"),
            Err(WalError::Io(_))
        ));
        // And the error is sticky.
        assert!(matches!(wal.append(1, b"after"), Err(WalError::Io(_))));
    }
}
