//! Storage backends for the WAL.
//!
//! Everything the log needs from the world sits behind the [`Storage`]
//! trait: named append-only blobs with explicit sync and an atomic
//! whole-file write for snapshots. Two implementations ship:
//!
//! - [`FileStorage`]: real files under a root directory (fsync-backed).
//! - [`MemStorage`]: an in-memory store with deterministic fault
//!   injection — torn tails, single-bit flips, short reads, simulated
//!   sync latency, and a power-loss `crash()` that discards every byte
//!   written since the last sync. Crash tests run offline and
//!   byte-for-byte reproducibly against it.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Abstract storage: a flat namespace of append-only blobs.
///
/// Implementations must be safe to share across threads; the WAL
/// serializes writes itself but recovery and compaction may race reads
/// from other handles in tests.
pub trait Storage: Send + Sync {
    /// All blob names currently present, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Reads an entire blob.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Appends bytes to a blob, creating it if absent. Appended bytes
    /// are *not* durable until [`Storage::sync`] returns.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Makes all previously appended bytes of `name` durable.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Atomically replaces (or creates) a blob with `data`, durably.
    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Removes a blob (used by compaction and suffix discard).
    fn remove(&self, name: &str) -> io::Result<()>;
    /// Truncates a blob to `len` bytes (used to cut a torn tail).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
    /// Current size of a blob in bytes.
    fn size(&self, name: &str) -> io::Result<u64>;
}

/// Real files under a root directory.
///
/// `write_atomic` uses the classic tmp-file + rename + directory-sync
/// dance so a crash mid-snapshot leaves either the old file or the new
/// one, never a torn hybrid.
#[derive(Debug, Clone)]
pub struct FileStorage {
    root: PathBuf,
}

impl FileStorage {
    /// Opens (creating if needed) a storage root directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FileStorage { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for FileStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    // Skip leftover atomic-write temporaries.
                    if !name.starts_with(".tmp-") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))?
            .sync_all()
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let tmp = self.path(&format!(".tmp-{name}"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(name))?;
        // Sync the directory so the rename itself is durable.
        if let Ok(dir) = std::fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }
}

#[derive(Debug, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes [0, synced_len) survive a simulated power loss.
    synced_len: usize,
}

#[derive(Debug, Default)]
struct MemInner {
    files: BTreeMap<String, MemFile>,
    sync_cost: Duration,
    sync_count: u64,
    append_count: u64,
    /// One-shot: the next `read` of this name returns only a prefix.
    short_read: Option<(String, usize)>,
}

/// In-memory storage with deterministic fault injection. Cloning shares
/// the underlying store, so a test can keep a handle across a simulated
/// broker crash (drop the broker, keep the storage, "reboot").
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every `sync` spin-waits this long, simulating device flush
    /// latency. Spin (not sleep) keeps the cost meaningful at the
    /// tens-of-microseconds scale OS timers cannot hit.
    pub fn set_sync_cost(&self, cost: Duration) {
        self.inner.lock().sync_cost = cost;
    }

    /// How many syncs have been issued (batching assertions).
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().sync_count
    }

    /// How many appends have been issued.
    pub fn append_count(&self) -> u64 {
        self.inner.lock().append_count
    }

    /// Simulated power loss: every file loses the bytes appended since
    /// its last sync (the torn tail a real disk would leave).
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        for file in inner.files.values_mut() {
            file.data.truncate(file.synced_len);
        }
    }

    /// Truncates a file to exactly `len` bytes, regardless of sync
    /// state — used to sweep "crash at every byte boundary".
    pub fn tear_to(&self, name: &str, len: usize) {
        let mut inner = self.inner.lock();
        if let Some(file) = inner.files.get_mut(name) {
            file.data.truncate(len);
            file.synced_len = file.synced_len.min(len);
        }
    }

    /// Flips one bit of one byte in a file.
    pub fn flip_bit(&self, name: &str, offset: usize, bit: u8) {
        let mut inner = self.inner.lock();
        if let Some(file) = inner.files.get_mut(name) {
            if let Some(b) = file.data.get_mut(offset) {
                *b ^= 1 << (bit % 8);
            }
        }
    }

    /// Arms a one-shot short read: the next `read(name)` returns only
    /// the first `len` bytes.
    pub fn set_short_read(&self, name: &str, len: usize) {
        self.inner.lock().short_read = Some((name.to_string(), len));
    }

    /// Raw contents of a file (diagnostics in tests).
    pub fn contents(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.lock().files.get(name).map(|f| f.data.clone())
    }
}

impl Storage for MemStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.inner.lock().files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        let short = match &inner.short_read {
            Some((n, len)) if n == name => {
                let len = *len;
                inner.short_read = None;
                Some(len)
            }
            _ => None,
        };
        let file = inner
            .files
            .get(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        let mut data = file.data.clone();
        if let Some(len) = short {
            data.truncate(len);
        }
        Ok(data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.append_count += 1;
        inner
            .files
            .entry(name.to_string())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let cost = {
            let mut inner = self.inner.lock();
            inner.sync_count += 1;
            if let Some(file) = inner.files.get_mut(name) {
                file.synced_len = file.data.len();
            }
            inner.sync_cost
        };
        if !cost.is_zero() {
            let end = Instant::now() + cost;
            while Instant::now() < end {
                std::hint::spin_loop();
            }
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let file = inner.files.entry(name.to_string()).or_default();
        file.data = data.to_vec();
        file.synced_len = data.len();
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner
            .files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let file = inner
            .files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        file.data.truncate(len as usize);
        file.synced_len = file.synced_len.min(len as usize);
        Ok(())
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        let inner = self.inner.lock();
        inner
            .files
            .get(name)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_discards_unsynced_tail() {
        let s = MemStorage::new();
        s.append("a.log", b"durable").unwrap();
        s.sync("a.log").unwrap();
        s.append("a.log", b" volatile").unwrap();
        s.crash();
        assert_eq!(s.read("a.log").unwrap(), b"durable");
    }

    #[test]
    fn mem_short_read_is_one_shot() {
        let s = MemStorage::new();
        s.append("a.log", b"0123456789").unwrap();
        s.set_short_read("a.log", 4);
        assert_eq!(s.read("a.log").unwrap(), b"0123");
        assert_eq!(s.read("a.log").unwrap(), b"0123456789");
    }

    #[test]
    fn mem_clone_shares_state() {
        let s = MemStorage::new();
        let t = s.clone();
        s.append("a.log", b"xyz").unwrap();
        assert_eq!(t.read("a.log").unwrap(), b"xyz");
    }

    #[test]
    fn file_storage_round_trip() {
        let root = std::env::temp_dir().join(format!(
            "heimdall-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let s = FileStorage::open(&root).unwrap();
        s.append("seg.log", b"abc").unwrap();
        s.append("seg.log", b"def").unwrap();
        s.sync("seg.log").unwrap();
        assert_eq!(s.read("seg.log").unwrap(), b"abcdef");
        s.write_atomic("snap", b"state").unwrap();
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["seg.log".to_string(), "snap".to_string()]);
        s.truncate("seg.log", 2).unwrap();
        assert_eq!(s.read("seg.log").unwrap(), b"ab");
        s.remove("snap").unwrap();
        assert_eq!(s.list().unwrap(), vec!["seg.log".to_string()]);
        let _ = std::fs::remove_dir_all(&root);
    }
}
