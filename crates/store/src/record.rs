//! WAL record framing: CRC-guarded, hash-chained, versioned.
//!
//! Every record carries enough redundancy that *any* single corrupted
//! byte in a frame is detected and surfaces as a typed [`DecodeError`]
//! rather than a garbage record:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   "HWL1"
//! 4       1     format version (see RECORD_VERSION)
//! 5       1     record kind (caller-defined)
//! 6       4     payload length, u32 LE
//! 10      8     sequence number, u64 LE
//! 18      32    chain digest = SHA-256(prev || seq || ver || kind || len || payload)
//! 50      4     CRC-32 (IEEE) over bytes [4, 50) ++ payload, u32 LE
//! 54      len   payload
//! ```
//!
//! The chain digest extends the same construction the enforcer's
//! in-memory audit chain uses (SHA-256 over the previous head plus the
//! entry), so the on-disk log is a tamper-evident chain in its own
//! right: replay verifies each record's digest against the running
//! chain, and a record spliced, reordered, or altered after the fact
//! breaks the chain even if its CRC is recomputed.

use heimdall_enforcer::crypto::{Digest, Sha256};

/// Per-record magic, distinct from the snapshot magic.
pub const RECORD_MAGIC: [u8; 4] = *b"HWL1";
/// Current record format version. Decoders reject other values with
/// [`DecodeError::UnsupportedVersion`] so a future format bump can never
/// be misparsed as v1 data.
pub const RECORD_VERSION: u8 = 1;
/// Fixed header length in bytes (payload follows).
pub const HEADER_LEN: usize = 54;
/// Hard cap on payload size; a corrupted length field cannot ask the
/// decoder to allocate unbounded memory.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// The chain value before any record exists (mirrors the audit log's
/// all-zero genesis head).
pub const GENESIS_CHAIN: Digest = [0u8; 32];

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number, global across segments.
    pub seq: u64,
    /// Caller-defined record kind byte.
    pub kind: u8,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
    /// Chain digest stored in the frame (already verified on decode).
    pub chain: Digest,
}

/// Typed decode failures. Every corruption mode maps to exactly one of
/// these; none of them can yield a partially-believed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame does not start with [`RECORD_MAGIC`].
    BadMagic,
    /// The version byte is not one this decoder understands.
    UnsupportedVersion(u8),
    /// The buffer ends before the frame does (torn tail / short read).
    Truncated { have: usize, need: usize },
    /// The length field exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// CRC mismatch: at least one bit of the frame is corrupt.
    BadCrc,
    /// The stored chain digest does not extend the expected predecessor.
    BadChain { seq: u64 },
    /// The sequence number is not the expected next one.
    BadSeq { expected: u64, found: u64 },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad record magic"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported record version {v}"),
            DecodeError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            DecodeError::TooLarge(n) => write!(f, "payload length {n} exceeds cap"),
            DecodeError::BadCrc => write!(f, "frame CRC mismatch"),
            DecodeError::BadChain { seq } => write!(f, "chain digest mismatch at seq {seq}"),
            DecodeError::BadSeq { expected, found } => {
                write!(f, "sequence gap: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Feed `data` into a running CRC-32 state (start from `0xFFFF_FFFF`).
fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xff) as usize];
    }
    state
}

/// One-shot CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

/// The chain digest for a record, extending `prev`.
pub fn chain_digest(prev: &Digest, seq: u64, kind: u8, payload: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&seq.to_be_bytes());
    h.update(&[RECORD_VERSION, kind]);
    h.update(&(payload.len() as u64).to_be_bytes());
    h.update(payload);
    h.finalize()
}

/// Encodes one record frame, returning the frame bytes and the new
/// chain digest.
pub fn encode(seq: u64, kind: u8, payload: &[u8], prev_chain: &Digest) -> (Vec<u8>, Digest) {
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let chain = chain_digest(prev_chain, seq, kind, payload);
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&RECORD_MAGIC);
    frame.push(RECORD_VERSION);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&chain);
    let mut crc = crc32_update(0xFFFF_FFFF, &frame[4..50]);
    crc = crc32_update(crc, payload);
    frame.extend_from_slice(&(!crc).to_le_bytes());
    frame.extend_from_slice(payload);
    (frame, chain)
}

/// Decodes the frame at the start of `buf` without chain verification.
///
/// Returns the record and the number of bytes consumed. Chain linkage
/// is checked separately by [`decode_chained`] because recovery must be
/// able to CRC-skip records that precede a snapshot cut point.
pub fn decode(buf: &[u8]) -> Result<(Record, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need: HEADER_LEN,
        });
    }
    if buf[0..4] != RECORD_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if buf[4] != RECORD_VERSION {
        return Err(DecodeError::UnsupportedVersion(buf[4]));
    }
    let kind = buf[5];
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
    if len as usize > MAX_PAYLOAD {
        return Err(DecodeError::TooLarge(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need: total,
        });
    }
    let seq = u64::from_le_bytes(buf[10..18].try_into().expect("8 bytes"));
    let mut chain = [0u8; 32];
    chain.copy_from_slice(&buf[18..50]);
    let stored_crc = u32::from_le_bytes(buf[50..54].try_into().expect("4 bytes"));
    let payload = &buf[HEADER_LEN..total];
    let mut crc = crc32_update(0xFFFF_FFFF, &buf[4..50]);
    crc = crc32_update(crc, payload);
    if !crc != stored_crc {
        return Err(DecodeError::BadCrc);
    }
    Ok((
        Record {
            seq,
            kind,
            payload: payload.to_vec(),
            chain,
        },
        total,
    ))
}

/// Decodes the frame at the start of `buf` and verifies both sequence
/// continuity and chain linkage against the caller's running state.
pub fn decode_chained(
    buf: &[u8],
    expected_seq: u64,
    prev_chain: &Digest,
) -> Result<(Record, usize), DecodeError> {
    let (rec, used) = decode(buf)?;
    if rec.seq != expected_seq {
        return Err(DecodeError::BadSeq {
            expected: expected_seq,
            found: rec.seq,
        });
    }
    if rec.chain != chain_digest(prev_chain, rec.seq, rec.kind, &rec.payload) {
        return Err(DecodeError::BadChain { seq: rec.seq });
    }
    Ok((rec, used))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip() {
        let (frame, chain) = encode(7, 3, b"hello wal", &GENESIS_CHAIN);
        let (rec, used) = decode_chained(&frame, 7, &GENESIS_CHAIN).unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.kind, 3);
        assert_eq!(rec.payload, b"hello wal");
        assert_eq!(rec.chain, chain);
    }

    #[test]
    fn unknown_version_rejected_with_typed_error() {
        let (mut frame, _) = encode(0, 1, b"x", &GENESIS_CHAIN);
        frame[4] = 2;
        assert_eq!(
            decode(&frame).unwrap_err(),
            DecodeError::UnsupportedVersion(2)
        );
    }

    #[test]
    fn wrong_predecessor_breaks_chain() {
        let (frame, _) = encode(5, 1, b"payload", &GENESIS_CHAIN);
        let other_prev = [9u8; 32];
        assert_eq!(
            decode_chained(&frame, 5, &other_prev).unwrap_err(),
            DecodeError::BadChain { seq: 5 }
        );
    }

    #[test]
    fn truncation_reports_needed_length() {
        let (frame, _) = encode(0, 1, b"abcdef", &GENESIS_CHAIN);
        match decode(&frame[..frame.len() - 1]).unwrap_err() {
            DecodeError::Truncated { need, .. } => assert_eq!(need, frame.len()),
            e => panic!("unexpected error {e:?}"),
        }
    }
}
