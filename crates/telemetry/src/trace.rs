//! Structured spans and the fixed-capacity span ring.
//!
//! A [`Span`] is one timed stage of the ticket pipeline
//! (`open_session → derive_privilege → exec(n) → verify → schedule →
//! commit`), linked to its parent by [`SpanId`] and to its request by
//! [`TraceId`]. Completed spans land in a [`SpanRing`]: a fixed-capacity
//! MPSC ring that keeps the last N spans for trace queries and flight
//! recorder dumps. The hot-path cost of publishing a span is one
//! `fetch_add` to claim a slot plus one touch of that slot's micro-lock —
//! producers only ever contend on a slot when they lap the whole ring.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies every span of one request's journey through the pipeline.
///
/// The same id is stamped into the enforcer's audit records (as
/// lowercase hex, see `AuditEntry::trace`), so audit queries are joinable
/// with span trees.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null trace: tracing disabled / no trace attached.
    pub const NONE: TraceId = TraceId(0);

    pub fn is_none(&self) -> bool {
        self.0 == 0
    }

    /// Parses the canonical 16-hex-digit form (what [`fmt::Display`]
    /// produces and what audit records carry).
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// The pipeline stage a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Ticket intake: twin sliced, session hosted (the trace root).
    OpenSession,
    /// Shortest-path privilege derivation (cache misses only).
    DerivePrivilege,
    /// One mediated console line, broker-side (queueing + registry).
    Exec,
    /// The twin-side share of an exec: mediation + emulation.
    Console,
    /// Session close: diff extraction through commit (parent of
    /// verify/schedule/commit).
    Finish,
    /// Enforcer verification (privilege compliance + policy safety).
    Verify,
    /// Consistent-update scheduling of an accepted change-set.
    Schedule,
    /// Guarded installation into shared production.
    Commit,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::OpenSession,
        Stage::DerivePrivilege,
        Stage::Exec,
        Stage::Console,
        Stage::Finish,
        Stage::Verify,
        Stage::Schedule,
        Stage::Commit,
    ];

    /// The metric label for this stage.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::OpenSession => "open_session",
            Stage::DerivePrivilege => "derive_privilege",
            Stage::Exec => "exec",
            Stage::Console => "console",
            Stage::Finish => "finish",
            Stage::Verify => "verify",
            Stage::Schedule => "schedule",
            Stage::Commit => "commit",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanStatus {
    Ok,
    /// The reference monitor (or rate limiter) refused the operation.
    Denied,
    /// The enforcer rejected the change-set (any rejection verdict).
    Rejected,
    /// Anything else that failed.
    Error,
}

/// One completed, timed pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub trace: TraceId,
    pub id: SpanId,
    /// `None` for the trace root (`open_session`).
    pub parent: Option<SpanId>,
    pub stage: Stage,
    /// The technician (or subsystem) the span belongs to.
    pub actor: String,
    /// Device label, when the stage targets one device.
    pub device: Option<String>,
    /// Start, in nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    pub duration_ns: u64,
    pub status: SpanStatus,
    /// Free-form context (verdict, command summary, …).
    pub detail: String,
}

impl Span {
    /// One JSON line (the flight-recorder dump format).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("spans serialize")
    }
}

struct Slot {
    span: Mutex<Option<Span>>,
}

/// Fixed-capacity ring of the most recent completed spans.
///
/// Many producers, snapshot readers. A push claims a slot with one
/// `fetch_add` and publishes under that slot's micro-lock; the lock is
/// only ever contended when producers lap the entire ring, so the hot
/// path never serializes on a global lock. Old spans are overwritten —
/// this is a flight recorder's retention model, not a durable store.
pub struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl SpanRing {
    /// `capacity` is rounded up to at least 16.
    pub fn new(capacity: usize) -> SpanRing {
        let n = capacity.max(16);
        SpanRing {
            slots: (0..n)
                .map(|_| Slot {
                    span: Mutex::new(None),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (not the retained count).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes a completed span, overwriting the oldest if full.
    pub fn push(&self, span: Span) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        *slot.span.lock() = Some(span);
    }

    /// Copies out every retained span, oldest first (approximate order
    /// while producers are live; exact when quiescent).
    pub fn snapshot(&self) -> Vec<Span> {
        let n = self.slots.len() as u64;
        let head = self.head.load(Ordering::Relaxed);
        let mut out = Vec::new();
        // Walk from the oldest retained slot toward the newest.
        for off in 0..n {
            let idx = ((head + off) % n) as usize;
            if let Some(span) = self.slots[idx].span.lock().clone() {
                out.push(span);
            }
        }
        out
    }

    /// The retained spans of one trace, ordered by start time.
    pub fn for_trace(&self, trace: TraceId) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.id.0));
        spans
    }

    /// The newest `n` retained spans, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Span> {
        let mut all = self.snapshot();
        let skip = all.len().saturating_sub(n);
        all.drain(..skip);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, stage: Stage) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: None,
            stage,
            actor: "alice".into(),
            device: None,
            start_ns: id * 10,
            duration_ns: 5,
            status: SpanStatus::Ok,
            detail: String::new(),
        }
    }

    #[test]
    fn trace_id_round_trips_through_hex() {
        let t = TraceId(0xdead_beef_0042_1337);
        assert_eq!(TraceId::parse(&t.to_string()), Some(t));
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse(""), None);
        assert!(TraceId::NONE.is_none());
        assert!(!t.is_none());
    }

    #[test]
    fn ring_retains_last_capacity_spans() {
        let ring = SpanRing::new(16);
        for i in 0..40u64 {
            ring.push(span(1, i, Stage::Exec));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 16);
        assert_eq!(ring.pushed(), 40);
        // Oldest retained is 24, newest 39, oldest-first.
        assert_eq!(got.first().unwrap().id, SpanId(24));
        assert_eq!(got.last().unwrap().id, SpanId(39));
    }

    #[test]
    fn for_trace_filters_and_orders() {
        let ring = SpanRing::new(64);
        ring.push(span(2, 9, Stage::Commit));
        ring.push(span(1, 3, Stage::Exec));
        ring.push(span(1, 1, Stage::OpenSession));
        let t1 = ring.for_trace(TraceId(1));
        assert_eq!(t1.len(), 2);
        assert_eq!(t1[0].stage, Stage::OpenSession, "start-time order");
        assert!(ring.for_trace(TraceId(7)).is_empty());
    }

    #[test]
    fn concurrent_pushes_never_lose_the_newest() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(128));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.push(span(t, i, Stage::Exec));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.pushed(), 4000);
        assert_eq!(ring.snapshot().len(), 128, "ring stays at capacity");
    }

    #[test]
    fn span_serializes_to_one_json_line() {
        let s = span(1, 2, Stage::Verify);
        let line = s.to_json_line();
        assert!(!line.contains('\n'));
        let back: Span = serde_json::from_str(&line).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn every_stage_has_a_unique_label() {
        let labels: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(labels.len(), Stage::ALL.len());
    }
}
