//! heimdall-telemetry: end-to-end tracing, per-stage metrics, and a
//! flight recorder for the twin/enforcer pipeline.
//!
//! The paper's argument is auditability — tamper-evident logs recording
//! all the MSP's activities — but an audit chain alone cannot answer
//! *where time went* or *what the system was doing right before an
//! anomaly*. This crate adds that layer, written from scratch against the
//! vendored-deps/offline constraint (no tokio-tracing):
//!
//! - [`trace`] — structured [`trace::Span`]s with parent/child links and
//!   a [`trace::TraceId`] that is also stamped into the enforcer's audit
//!   records, retained in a fixed-capacity [`trace::SpanRing`];
//! - [`metrics`] — named counter/histogram series per pipeline stage and
//!   per device, with a Prometheus-style text exposition;
//! - [`recorder`] — the [`recorder::FlightRecorder`]: on anomaly
//!   triggers (denial burst, commit-conflict burst, p99 regression) it
//!   freezes the last N spans as JSON lines for post-mortem.
//!
//! The [`Telemetry`] facade owns all three. Instrumented crates carry a
//! [`SpanContext`] — a cheap clone holding the `Arc<Telemetry>`, the
//! trace id, and the parent span — and open [`ActiveSpan`]s from it;
//! spans record themselves (ring + per-stage metrics) on drop.

pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{render_counter, Counter, LatencyHistogram, MetricsRegistry};
pub use recorder::{AnomalyDump, AnomalyKind, FlightRecorder, RecorderConfig};
pub use trace::{Span, SpanId, SpanRing, SpanStatus, Stage, TraceId};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The stage-duration summary series (labels: `stage`, optionally
/// `device`).
pub const STAGE_DURATION_METRIC: &str = "heimdall_stage_duration_ns";
/// The stage-completion counter series (labels: `stage`, `status`).
pub const STAGE_TOTAL_METRIC: &str = "heimdall_stage_total";

/// Tunables for one [`Telemetry`] instance.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Completed spans retained for trace queries and dumps.
    pub ring_capacity: usize,
    pub recorder: RecorderConfig,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            ring_capacity: 8192,
            recorder: RecorderConfig::default(),
        }
    }
}

/// Shared telemetry hub: span ring + metrics registry + flight recorder.
pub struct Telemetry {
    epoch: Instant,
    next_id: AtomicU64,
    ring: SpanRing,
    registry: MetricsRegistry,
    recorder: FlightRecorder,
}

/// splitmix64: decorrelates sequential ids into well-spread u64s.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            ring: SpanRing::new(config.ring_capacity),
            registry: MetricsRegistry::new(),
            recorder: FlightRecorder::new(config.recorder),
        }
    }

    /// Nanoseconds since this instance was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// A fresh trace id (never [`TraceId::NONE`]).
    pub fn new_trace(&self) -> TraceId {
        loop {
            let id = splitmix64(self.next_id.fetch_add(1, Ordering::Relaxed));
            if id != 0 {
                return TraceId(id);
            }
        }
    }

    fn new_span_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The retained spans of `trace`, ordered by start time.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<Span> {
        self.ring.for_trace(trace)
    }

    /// The metrics registry rendered as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Forwards a privilege denial to the flight recorder.
    pub fn note_denial(&self) -> Option<AnomalyKind> {
        self.recorder.note_denial(self.now_ns(), &self.ring)
    }

    /// Forwards a commit conflict to the flight recorder.
    pub fn note_commit_conflict(&self) -> Option<AnomalyKind> {
        self.recorder
            .note_commit_conflict(self.now_ns(), &self.ring)
    }

    /// Checks the exec-latency ceiling against the stage histogram.
    pub fn check_exec_p99(&self) -> Option<AnomalyKind> {
        let h = self
            .registry
            .histogram(STAGE_DURATION_METRIC, &[("stage", Stage::Exec.as_str())]);
        self.recorder
            .note_exec_p99(h.quantile_ns(0.99), h.count(), self.now_ns(), &self.ring)
    }
}

/// Where new spans attach: the telemetry hub (if any), the trace, and the
/// parent span. Cheap to clone and pass down the stack; a disabled
/// context makes every span a no-op so uninstrumented callers pay
/// nothing.
#[derive(Clone, Default)]
pub struct SpanContext {
    telemetry: Option<Arc<Telemetry>>,
    trace: TraceId,
    parent: Option<SpanId>,
    actor: String,
}

impl SpanContext {
    /// A context that records nothing.
    pub fn disabled() -> SpanContext {
        SpanContext::default()
    }

    /// Roots a new trace for `actor`.
    pub fn root(telemetry: Arc<Telemetry>, trace: TraceId, actor: &str) -> SpanContext {
        SpanContext {
            telemetry: Some(telemetry),
            trace,
            parent: None,
            actor: actor.to_string(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.telemetry.is_some() && !self.trace.is_none()
    }

    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// The trace id as audit records carry it: canonical hex, or empty
    /// when tracing is disabled.
    pub fn trace_tag(&self) -> String {
        if self.is_enabled() {
            self.trace.to_string()
        } else {
            String::new()
        }
    }

    /// The same context re-parented under `span` (for handing to a
    /// deeper pipeline stage).
    pub fn under(&self, span: &ActiveSpan) -> SpanContext {
        SpanContext {
            telemetry: self.telemetry.clone(),
            trace: self.trace,
            parent: Some(span.id()),
            actor: self.actor.clone(),
        }
    }

    /// Opens a span for `stage`; `None` when the context is disabled.
    pub fn span(&self, stage: Stage) -> Option<ActiveSpan> {
        let telemetry = self.telemetry.as_ref()?;
        if self.trace.is_none() {
            return None;
        }
        Some(ActiveSpan {
            started: Instant::now(),
            span: Some(Span {
                trace: self.trace,
                id: telemetry.new_span_id(),
                parent: self.parent,
                stage,
                actor: self.actor.clone(),
                device: None,
                start_ns: telemetry.now_ns(),
                duration_ns: 0,
                status: SpanStatus::Ok,
                detail: String::new(),
            }),
            telemetry: Arc::clone(telemetry),
        })
    }
}

/// An open span. Records itself — into the ring, the per-stage duration
/// summary, and the per-stage/status counter — when dropped, so early
/// returns and panics still leave a record.
pub struct ActiveSpan {
    telemetry: Arc<Telemetry>,
    /// Always `Some` until drop takes it.
    span: Option<Span>,
    started: Instant,
}

impl ActiveSpan {
    fn inner(&mut self) -> &mut Span {
        self.span.as_mut().expect("span live until drop")
    }

    pub fn id(&self) -> SpanId {
        self.span.as_ref().expect("span live until drop").id
    }

    pub fn set_device(&mut self, device: &str) {
        self.inner().device = Some(device.to_string());
    }

    pub fn set_status(&mut self, status: SpanStatus) {
        self.inner().status = status;
    }

    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.inner().detail = detail.into();
    }

    /// Explicit finish (drop does the same).
    pub fn finish(self) {}
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let Some(mut span) = self.span.take() else {
            return;
        };
        span.duration_ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let stage = span.stage.as_str();
        let reg = self.telemetry.registry();
        reg.histogram(STAGE_DURATION_METRIC, &[("stage", stage)])
            .record_ns_tagged(span.duration_ns, span.trace);
        if let Some(device) = &span.device {
            reg.histogram(
                STAGE_DURATION_METRIC,
                &[("stage", stage), ("device", device)],
            )
            .record_ns(span.duration_ns);
        }
        let status = match span.status {
            SpanStatus::Ok => "ok",
            SpanStatus::Denied => "denied",
            SpanStatus::Rejected => "rejected",
            SpanStatus::Error => "error",
        };
        reg.counter(STAGE_TOTAL_METRIC, &[("stage", stage), ("status", status)])
            .inc();
        self.telemetry.ring().push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let t = Telemetry::default();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = t.new_trace();
            assert!(!id.is_none());
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }

    #[test]
    fn spans_record_on_drop_with_parent_links() {
        let t = Arc::new(Telemetry::default());
        let trace = t.new_trace();
        let ctx = SpanContext::root(Arc::clone(&t), trace, "alice");
        let root_id;
        {
            let root = ctx.span(Stage::OpenSession).expect("enabled");
            root_id = root.id();
            let child_ctx = ctx.under(&root);
            let mut child = child_ctx.span(Stage::DerivePrivilege).expect("enabled");
            child.set_detail("cache miss");
            drop(child);
            drop(root);
        }
        let spans = t.trace_spans(trace);
        assert_eq!(spans.len(), 2);
        let child = spans
            .iter()
            .find(|s| s.stage == Stage::DerivePrivilege)
            .unwrap();
        assert_eq!(child.parent, Some(root_id));
        let root = spans
            .iter()
            .find(|s| s.stage == Stage::OpenSession)
            .unwrap();
        assert_eq!(root.parent, None);
        // Metrics landed too.
        let text = t.render_prometheus();
        assert!(text.contains("heimdall_stage_duration_ns_count{stage=\"open_session\"} 1"));
        assert!(text.contains("heimdall_stage_total{stage=\"derive_privilege\",status=\"ok\"} 1"));
    }

    #[test]
    fn disabled_context_records_nothing() {
        let ctx = SpanContext::disabled();
        assert!(!ctx.is_enabled());
        assert!(ctx.span(Stage::Exec).is_none());
        assert_eq!(ctx.trace_tag(), "");
    }

    #[test]
    fn device_label_creates_a_per_device_series() {
        let t = Arc::new(Telemetry::default());
        let ctx = SpanContext::root(Arc::clone(&t), t.new_trace(), "bob");
        let mut s = ctx.span(Stage::Exec).unwrap();
        s.set_device("fw1");
        drop(s);
        let text = t.render_prometheus();
        assert!(
            text.contains("heimdall_stage_duration_ns_count{device=\"fw1\",stage=\"exec\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn exec_ceiling_check_reaches_the_recorder() {
        let t = Telemetry::new(TelemetryConfig {
            recorder: RecorderConfig {
                exec_p99_ceiling_ns: 1,
                exec_warmup_samples: 1,
                ..RecorderConfig::default()
            },
            ..TelemetryConfig::default()
        });
        t.registry()
            .histogram(STAGE_DURATION_METRIC, &[("stage", "exec")])
            .record_ns(1_000_000);
        assert_eq!(t.check_exec_p99(), Some(AnomalyKind::LatencyRegression));
        assert_eq!(t.recorder().dump_count(), 1);
    }
}
