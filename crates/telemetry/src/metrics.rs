//! Named metric series: lock-free counters and log₂ latency histograms,
//! organized by (metric name, label set) and rendered in Prometheus text
//! exposition format.
//!
//! The histogram started life in `heimdall-service::stats`; it lives here
//! now so every crate in the pipeline can record stage latencies into the
//! same registry. Recording is `AtomicU64` all the way down — the hot
//! exec path never serializes on a stats mutex. The registry itself is an
//! `RwLock<BTreeMap>` that is only write-locked the first time a series
//! is created; steady-state lookups are read-locked clones of an `Arc`,
//! and callers on hot paths should hold the `Arc` instead of re-looking
//! it up.

use crate::trace::TraceId;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const BUCKETS: usize = 64;

/// Log₂-bucketed latency histogram over nanoseconds.
///
/// A sample of `n` nanoseconds lands in bucket `⌊log₂ n⌋`; quantiles are
/// answered with the geometric midpoint of the covering bucket, so the
/// error is bounded by ~√2 of the true value — fine for p50/p99
/// dashboards. The running sum saturates instead of wrapping, so the
/// mean stays meaningful on arbitrarily long soak runs.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    /// Worst sample seen since the last [`LatencyHistogram::take_exemplar`].
    exemplar_ns: AtomicU64,
    /// Raw trace id of that worst sample; 0 when untagged.
    exemplar_trace: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            exemplar_ns: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn record_ns(&self, ns: u64) {
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulation: a soak run that would overflow u64
        // pins the sum at MAX instead of wrapping the mean around.
        let _ = self
            .sum_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(ns))
            });
    }

    /// Records a sample and, when it is the worst since the exemplar was
    /// last taken, tags it with `trace` so alerts can pivot into the span
    /// ring. The max/trace pair is updated without a lock; under a race
    /// the stored trace may belong to a near-worst sample, which is fine
    /// for an exemplar.
    pub fn record_ns_tagged(&self, ns: u64, trace: TraceId) {
        self.record_ns(ns);
        if !trace.is_none() {
            let prev = self.exemplar_ns.fetch_max(ns, Ordering::Relaxed);
            if ns >= prev {
                self.exemplar_trace.store(trace.0, Ordering::Relaxed);
            }
        }
    }

    /// `(duration_ns, trace)` of the worst tagged sample in the current
    /// window, or `None` when no tagged sample has been recorded.
    pub fn exemplar(&self) -> Option<(u64, TraceId)> {
        let trace = TraceId(self.exemplar_trace.load(Ordering::Relaxed));
        if trace.is_none() {
            return None;
        }
        Some((self.exemplar_ns.load(Ordering::Relaxed), trace))
    }

    /// Returns the current exemplar and resets the window so the next
    /// scrape harvests a fresh worst sample.
    pub fn take_exemplar(&self) -> Option<(u64, TraceId)> {
        let taken = self.exemplar();
        self.exemplar_ns.store(0, Ordering::Relaxed);
        self.exemplar_trace.store(0, Ordering::Relaxed);
        taken
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in 0..=1) in nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                let lo = 1u64 << i;
                return lo + (lo >> 1);
            }
        }
        1u64 << (BUCKETS - 1)
    }

    pub fn mean_ns(&self) -> u64 {
        self.sum_ns().checked_div(self.count()).unwrap_or(0)
    }
}

/// A monotone counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A metric series identity: name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `{k1="v1",k2="v2"}`, or empty when there are no labels. `extra`
    /// pairs are appended after the stored ones (for quantile labels).
    fn label_block(&self, extra: &[(&str, &str)]) -> String {
        if self.labels.is_empty() && extra.is_empty() {
            return String::new();
        }
        let mut parts: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{v}\"")));
        format!("{{{}}}", parts.join(","))
    }
}

/// Get-or-create registry of named counters and histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<SeriesKey, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<SeriesKey, Arc<LatencyHistogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter for `(name, labels)`, created on first use. Hot paths
    /// should hold the returned `Arc` rather than re-looking it up.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = SeriesKey::new(name, labels);
        if let Some(c) = self.counters.read().get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram for `(name, labels)`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let key = SeriesKey::new(name, labels);
        if let Some(h) = self.histograms.read().get(&key) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(LatencyHistogram::new())),
        )
    }

    /// Prometheus-style text exposition: counters as `counter`,
    /// histograms as `summary` (p50/p99 quantiles plus `_count`/`_sum`).
    /// Series are emitted in deterministic (sorted) order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for (key, c) in self.counters.read().iter() {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} counter", key.name);
                last_name = key.name.clone();
            }
            let _ = writeln!(out, "{}{} {}", key.name, key.label_block(&[]), c.get());
        }
        last_name.clear();
        for (key, h) in self.histograms.read().iter() {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} summary", key.name);
                last_name = key.name.clone();
            }
            for (q, qv) in [("0.5", h.quantile_ns(0.50)), ("0.99", h.quantile_ns(0.99))] {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    key.name,
                    key.label_block(&[("quantile", q)]),
                    qv
                );
            }
            let block = key.label_block(&[]);
            let _ = writeln!(out, "{}_count{} {}", key.name, block, h.count());
            let _ = writeln!(out, "{}_sum{} {}", key.name, block, h.sum_ns());
        }
        out
    }
}

/// Appends one label-less counter in Prometheus text exposition format
/// (`# TYPE` line plus the sample). Shared by every exposition surface —
/// the broker's `Telemetry` endpoint and the net layer's `NetStats`
/// rendering — so they all emit the same shape and stay greppable by the
/// same tooling.
pub fn render_counter(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_counter_emits_type_line_and_sample() {
        let mut out = String::new();
        render_counter(&mut out, "heimdall_net_accepted_total", 7);
        assert_eq!(
            out,
            "# TYPE heimdall_net_accepted_total counter\nheimdall_net_accepted_total 7\n"
        );
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(5));
        }
        let p50 = h.quantile_ns(0.50);
        assert!(
            (4_000..32_000).contains(&p50),
            "p50 {p50} should bracket 10µs"
        );
        let p99 = h.quantile_ns(0.99);
        assert!(
            (2_000_000..16_000_000).contains(&p99),
            "p99 {p99} should bracket 5ms"
        );
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = LatencyHistogram::new();
        h.record_ns(u64::MAX - 10);
        h.record_ns(u64::MAX - 10);
        assert_eq!(h.sum_ns(), u64::MAX, "sum pins at MAX");
        assert_eq!(h.count(), 2);
        // The mean stays huge rather than wrapping toward zero.
        assert!(h.mean_ns() > u64::MAX / 4);
    }

    #[test]
    fn exemplar_tracks_the_worst_tagged_sample() {
        let h = LatencyHistogram::new();
        assert_eq!(h.exemplar(), None);
        h.record_ns_tagged(100, TraceId(7));
        h.record_ns_tagged(5_000, TraceId(9));
        h.record_ns_tagged(200, TraceId(11));
        assert_eq!(h.exemplar(), Some((5_000, TraceId(9))));
        // Untagged samples never displace the exemplar.
        h.record_ns(1_000_000);
        assert_eq!(h.exemplar(), Some((5_000, TraceId(9))));
        // Taking resets the window.
        assert_eq!(h.take_exemplar(), Some((5_000, TraceId(9))));
        assert_eq!(h.exemplar(), None);
        h.record_ns_tagged(50, TraceId(3));
        assert_eq!(h.exemplar(), Some((50, TraceId(3))));
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn registry_deduplicates_series_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", &[("stage", "exec")]);
        let b = reg.counter("requests_total", &[("stage", "exec")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same series, same counter");
        let c = reg.counter("requests_total", &[("stage", "verify")]);
        c.inc();
        assert_eq!(c.get(), 1);
        // Label order does not matter.
        let d = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let e = reg.counter("x", &[("b", "2"), ("a", "1")]);
        d.inc();
        assert_eq!(e.get(), 1);
    }

    #[test]
    fn prometheus_rendering_includes_quantiles_and_counts() {
        let reg = MetricsRegistry::new();
        reg.counter("heimdall_commits_total", &[("status", "applied")])
            .add(3);
        let h = reg.histogram("heimdall_stage_duration_ns", &[("stage", "exec")]);
        for _ in 0..10 {
            h.record(Duration::from_micros(50));
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE heimdall_commits_total counter"));
        assert!(text.contains("heimdall_commits_total{status=\"applied\"} 3"));
        assert!(text.contains("# TYPE heimdall_stage_duration_ns summary"));
        assert!(text.contains("heimdall_stage_duration_ns{stage=\"exec\",quantile=\"0.5\"}"));
        assert!(text.contains("heimdall_stage_duration_ns{stage=\"exec\",quantile=\"0.99\"}"));
        assert!(text.contains("heimdall_stage_duration_ns_count{stage=\"exec\"} 10"));
        assert!(text.contains("heimdall_stage_duration_ns_sum{stage=\"exec\"}"));
    }

    #[test]
    fn unlabeled_series_render_bare() {
        let reg = MetricsRegistry::new();
        reg.counter("up", &[]).inc();
        assert!(reg.render_prometheus().contains("up 1\n"));
    }
}
