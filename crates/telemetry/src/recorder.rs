//! The flight recorder: on anomaly triggers it freezes the recent span
//! history into a JSON-lines dump for post-mortem analysis.
//!
//! Three triggers, all tunable and individually disableable (threshold
//! 0): a burst of privilege denials (possible probing), a burst of
//! commit conflicts (pathological contention or a livelocked retry
//! storm), and an exec-latency p99 regression past an absolute ceiling.
//! Each dump captures the newest spans from the ring at trigger time —
//! the "what was the system doing right before this" record the paper's
//! audit chain alone cannot answer.

use crate::trace::{Span, SpanRing};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// What tripped the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// ≥ `denial_burst` privilege denials inside `denial_window`.
    DenialBurst,
    /// ≥ `conflict_burst` commit conflicts inside `conflict_window`.
    CommitConflictBurst,
    /// Exec p99 exceeded `exec_p99_ceiling_ns` (after warmup samples).
    LatencyRegression,
}

impl AnomalyKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            AnomalyKind::DenialBurst => "denial_burst",
            AnomalyKind::CommitConflictBurst => "commit_conflict_burst",
            AnomalyKind::LatencyRegression => "latency_regression",
        }
    }
}

/// Recorder tunables. A burst threshold of 0 disables that trigger; a
/// ceiling of 0 disables the latency trigger.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Spans per dump (the newest N at trigger time).
    pub dump_len: usize,
    /// Dumps retained before the recorder stops capturing (bounded
    /// memory under a sustained anomaly).
    pub max_dumps: usize,
    pub denial_burst: u32,
    pub denial_window: Duration,
    pub conflict_burst: u32,
    pub conflict_window: Duration,
    /// Absolute exec-p99 ceiling in nanoseconds.
    pub exec_p99_ceiling_ns: u64,
    /// Samples required before the latency trigger arms.
    pub exec_warmup_samples: u64,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            dump_len: 256,
            max_dumps: 8,
            denial_burst: 8,
            denial_window: Duration::from_secs(10),
            conflict_burst: 128,
            conflict_window: Duration::from_secs(5),
            exec_p99_ceiling_ns: 250_000_000, // 250ms: mediated execs are µs-scale
            exec_warmup_samples: 64,
        }
    }
}

/// One frozen anomaly record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyDump {
    pub kind: AnomalyKind,
    /// Human-readable trigger description.
    pub reason: String,
    /// Nanoseconds since the telemetry epoch at trigger time.
    pub at_ns: u64,
    /// Spans captured, newest last.
    pub span_count: usize,
    /// The spans, one JSON object per line (the post-mortem artifact).
    pub spans_jsonl: String,
}

/// Sliding-window event counter for burst triggers.
struct BurstWindow {
    events_ns: VecDeque<u64>,
}

impl BurstWindow {
    fn new() -> BurstWindow {
        BurstWindow {
            events_ns: VecDeque::new(),
        }
    }

    /// Records an event at `now_ns`; true when the window holds ≥
    /// `burst` events. On trigger the window resets (debounce).
    fn note(&mut self, now_ns: u64, burst: u32, window: Duration) -> bool {
        if burst == 0 {
            return false;
        }
        let horizon = now_ns.saturating_sub(window.as_nanos().min(u64::MAX as u128) as u64);
        while self.events_ns.front().is_some_and(|&t| t < horizon) {
            self.events_ns.pop_front();
        }
        self.events_ns.push_back(now_ns);
        // Bound the deque even under absurd thresholds.
        while self.events_ns.len() > (burst as usize).max(1) {
            self.events_ns.pop_front();
        }
        if self.events_ns.len() >= burst as usize {
            self.events_ns.clear();
            return true;
        }
        false
    }
}

/// The flight recorder itself. All entry points are cheap when nothing is
/// anomalous: one short mutex on the relevant window.
pub struct FlightRecorder {
    config: RecorderConfig,
    denials: Mutex<BurstWindow>,
    conflicts: Mutex<BurstWindow>,
    latency_tripped: Mutex<bool>,
    dumps: Mutex<Vec<AnomalyDump>>,
}

impl FlightRecorder {
    pub fn new(config: RecorderConfig) -> FlightRecorder {
        FlightRecorder {
            config,
            denials: Mutex::new(BurstWindow::new()),
            conflicts: Mutex::new(BurstWindow::new()),
            latency_tripped: Mutex::new(false),
            dumps: Mutex::new(Vec::new()),
        }
    }

    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// A privilege denial happened at `now_ns`.
    pub fn note_denial(&self, now_ns: u64, ring: &SpanRing) -> Option<AnomalyKind> {
        let fired =
            self.denials
                .lock()
                .note(now_ns, self.config.denial_burst, self.config.denial_window);
        if fired {
            self.freeze(
                AnomalyKind::DenialBurst,
                format!(
                    "{} privilege denials within {:?}",
                    self.config.denial_burst, self.config.denial_window
                ),
                now_ns,
                ring,
            );
            return Some(AnomalyKind::DenialBurst);
        }
        None
    }

    /// A commit conflict (stale rejection) happened at `now_ns`.
    pub fn note_commit_conflict(&self, now_ns: u64, ring: &SpanRing) -> Option<AnomalyKind> {
        let fired = self.conflicts.lock().note(
            now_ns,
            self.config.conflict_burst,
            self.config.conflict_window,
        );
        if fired {
            self.freeze(
                AnomalyKind::CommitConflictBurst,
                format!(
                    "{} commit conflicts within {:?}",
                    self.config.conflict_burst, self.config.conflict_window
                ),
                now_ns,
                ring,
            );
            return Some(AnomalyKind::CommitConflictBurst);
        }
        None
    }

    /// Current exec p99 after a sample; trips once when it crosses the
    /// ceiling (re-arms only if it later dips back under).
    pub fn note_exec_p99(
        &self,
        p99_ns: u64,
        samples: u64,
        now_ns: u64,
        ring: &SpanRing,
    ) -> Option<AnomalyKind> {
        if self.config.exec_p99_ceiling_ns == 0 || samples < self.config.exec_warmup_samples {
            return None;
        }
        let mut tripped = self.latency_tripped.lock();
        if p99_ns <= self.config.exec_p99_ceiling_ns {
            *tripped = false;
            return None;
        }
        if *tripped {
            return None; // already dumped for this excursion
        }
        *tripped = true;
        drop(tripped);
        self.freeze(
            AnomalyKind::LatencyRegression,
            format!(
                "exec p99 {}ns over ceiling {}ns (n={})",
                p99_ns, self.config.exec_p99_ceiling_ns, samples
            ),
            now_ns,
            ring,
        );
        Some(AnomalyKind::LatencyRegression)
    }

    /// Captures the newest spans into a dump (bounded by `max_dumps`).
    fn freeze(&self, kind: AnomalyKind, reason: String, at_ns: u64, ring: &SpanRing) {
        let mut dumps = self.dumps.lock();
        if dumps.len() >= self.config.max_dumps {
            return;
        }
        let spans: Vec<Span> = ring.tail(self.config.dump_len);
        let mut jsonl = String::new();
        for s in &spans {
            jsonl.push_str(&s.to_json_line());
            jsonl.push('\n');
        }
        dumps.push(AnomalyDump {
            kind,
            reason,
            at_ns,
            span_count: spans.len(),
            spans_jsonl: jsonl,
        });
    }

    /// All dumps captured so far.
    pub fn dumps(&self) -> Vec<AnomalyDump> {
        self.dumps.lock().clone()
    }

    pub fn dump_count(&self) -> usize {
        self.dumps.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, SpanStatus, Stage, TraceId};

    fn ring_with(n: u64) -> SpanRing {
        let ring = SpanRing::new(64);
        for i in 0..n {
            ring.push(Span {
                trace: TraceId(1),
                id: SpanId(i),
                parent: None,
                stage: Stage::Exec,
                actor: "alice".into(),
                device: Some("fw1".into()),
                start_ns: i,
                duration_ns: 10,
                status: SpanStatus::Denied,
                detail: String::new(),
            });
        }
        ring
    }

    #[test]
    fn denial_burst_freezes_a_jsonl_dump() {
        let rec = FlightRecorder::new(RecorderConfig {
            denial_burst: 3,
            dump_len: 8,
            ..RecorderConfig::default()
        });
        let ring = ring_with(20);
        assert_eq!(rec.note_denial(1, &ring), None);
        assert_eq!(rec.note_denial(2, &ring), None);
        assert_eq!(rec.note_denial(3, &ring), Some(AnomalyKind::DenialBurst));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].span_count, 8);
        // Every line of the dump parses back into a span.
        for line in dumps[0].spans_jsonl.lines() {
            let s: Span = serde_json::from_str(line).expect("dump line parses");
            assert_eq!(s.stage, Stage::Exec);
        }
    }

    #[test]
    fn burst_window_resets_after_trigger_and_expires_old_events() {
        let rec = FlightRecorder::new(RecorderConfig {
            denial_burst: 2,
            denial_window: Duration::from_nanos(100),
            max_dumps: 10,
            ..RecorderConfig::default()
        });
        let ring = ring_with(1);
        assert!(rec.note_denial(0, &ring).is_none());
        assert!(rec.note_denial(1, &ring).is_some(), "burst of 2 trips");
        // Window cleared on trigger: next event starts fresh.
        assert!(rec.note_denial(2, &ring).is_none());
        // Events past the window never combine.
        assert!(rec.note_denial(500, &ring).is_none());
        assert!(rec.note_denial(1000, &ring).is_none());
    }

    #[test]
    fn zero_thresholds_disable_triggers() {
        let rec = FlightRecorder::new(RecorderConfig {
            denial_burst: 0,
            conflict_burst: 0,
            exec_p99_ceiling_ns: 0,
            ..RecorderConfig::default()
        });
        let ring = ring_with(4);
        for t in 0..100 {
            assert!(rec.note_denial(t, &ring).is_none());
            assert!(rec.note_commit_conflict(t, &ring).is_none());
            assert!(rec.note_exec_p99(u64::MAX, 1_000_000, t, &ring).is_none());
        }
        assert_eq!(rec.dump_count(), 0);
    }

    #[test]
    fn latency_trigger_needs_warmup_and_debounces() {
        let rec = FlightRecorder::new(RecorderConfig {
            exec_p99_ceiling_ns: 100,
            exec_warmup_samples: 10,
            ..RecorderConfig::default()
        });
        let ring = ring_with(4);
        assert!(rec.note_exec_p99(1000, 5, 1, &ring).is_none(), "warming up");
        assert_eq!(
            rec.note_exec_p99(1000, 20, 2, &ring),
            Some(AnomalyKind::LatencyRegression)
        );
        assert!(rec.note_exec_p99(2000, 21, 3, &ring).is_none(), "debounced");
        // Recovery re-arms the trigger.
        assert!(rec.note_exec_p99(50, 22, 4, &ring).is_none());
        assert!(rec.note_exec_p99(500, 23, 5, &ring).is_some());
    }

    #[test]
    fn dumps_are_bounded() {
        let rec = FlightRecorder::new(RecorderConfig {
            denial_burst: 1,
            max_dumps: 2,
            ..RecorderConfig::default()
        });
        let ring = ring_with(4);
        for t in 0..10 {
            rec.note_denial(t, &ring);
        }
        assert_eq!(rec.dump_count(), 2);
    }
}
