//! Issue injectors: reproductions of the real-world problem classes the
//! paper evaluates ("an OSPF issue, an ISP reconfiguration, and a VLAN
//! issue", plus Figure 6's ACL misconfiguration and the Figure 8/9
//! interface-down sweep).
//!
//! Each injector mutates a production network into its broken state and
//! returns an [`Issue`]: the ticket fields, the root-cause device, a probe
//! that observably fails while broken, and the "prepared list of commands"
//! an experienced technician replays to fix it (the paper's level playing
//! field for the Figure 7 timing study).

use heimdall_netmodel::acl::AclAction;
use heimdall_netmodel::gen::GenMeta;
use heimdall_netmodel::topology::Network;
use heimdall_netmodel::vlan::SwitchPortMode;
use heimdall_privilege::derive::TaskKind;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The evaluated issue classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IssueKind {
    /// Access port in the wrong VLAN (enterprise only).
    Vlan,
    /// Router no longer advertising a prefix (missing `network` statement).
    Ospf,
    /// Upstream renumbering: interface re-addressing + default route swap.
    Isp,
    /// Firewall ACL entry flipped to deny (Figure 6).
    AclDeny,
}

impl IssueKind {
    /// Short label used in Figure 7's x-axis.
    pub fn label(&self) -> &'static str {
        match self {
            IssueKind::Vlan => "vlan",
            IssueKind::Ospf => "ospf",
            IssueKind::Isp => "isp",
            IssueKind::AclDeny => "acl",
        }
    }
}

/// A fully described injected issue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Issue {
    pub kind: IssueKind,
    pub id: String,
    pub title: String,
    /// Ticket endpoints (drives privilege derivation and twin slicing).
    pub affected: Vec<String>,
    pub task_kind: TaskKind,
    /// The device whose configuration is actually wrong.
    pub root_cause: String,
    /// `(source device, destination address)`: pingable while healthy,
    /// failing while broken.
    pub probe: (String, Ipv4Addr),
    /// The prepared command list `(device, console line)`.
    pub fix: Vec<(String, String)>,
}

fn cmds(list: &[(&str, &str)]) -> Vec<(String, String)> {
    list.iter()
        .map(|(d, c)| (d.to_string(), c.to_string()))
        .collect()
}

/// Injects `kind` into `net`. Returns `None` for combinations that do not
/// exist on a network (VLAN issues need the enterprise's L3 switch).
pub fn inject_issue(net: &mut Network, meta: &GenMeta, kind: IssueKind) -> Option<Issue> {
    match (meta.name.as_str(), kind) {
        ("enterprise", IssueKind::Vlan) => Some(inject_enterprise_vlan(net)),
        ("enterprise", IssueKind::Ospf) => Some(inject_ospf_loopback(
            net, "dist2", "10.0.0.6", "h1", "TCK-OSPF",
        )),
        ("enterprise", IssueKind::Isp) => Some(inject_isp(net, meta, "198.51.100.1")),
        ("enterprise", IssueKind::AclDeny) => Some(inject_enterprise_acl(net)),
        ("university", IssueKind::Vlan) => None,
        ("university", IssueKind::Ospf) => Some(inject_ospf_loopback(
            net,
            "lib1",
            "10.100.0.11",
            "cs-h1",
            "TCK-OSPF-U",
        )),
        ("university", IssueKind::Isp) => Some(inject_isp(net, meta, "192.0.2.1")),
        ("university", IssueKind::AclDeny) => Some(inject_university_acl(net)),
        _ => None,
    }
}

/// Enterprise VLAN issue: h7's access port moved into the quarantine VLAN.
fn inject_enterprise_vlan(net: &mut Network) -> Issue {
    net.device_by_name_mut("acc3")
        .expect("enterprise has acc3")
        .config
        .interface_mut("Gi0/2")
        .expect("acc3 has Gi0/2")
        .switchport = Some(SwitchPortMode::Access { vlan: 31 });
    Issue {
        kind: IssueKind::Vlan,
        id: "TCK-VLAN".to_string(),
        title: "h7 cannot reach the web service on srv1".to_string(),
        affected: vec!["h7".to_string(), "srv1".to_string()],
        task_kind: TaskKind::Vlan,
        root_cause: "acc3".to_string(),
        probe: ("h7".to_string(), "10.2.1.10".parse().expect("literal")),
        fix: cmds(&[
            ("h7", "ping 10.2.1.10"),
            ("acc3", "show vlan"),
            ("acc3", "show interfaces"),
            ("acc3", "interface Gi0/2 switchport access vlan 30"),
            ("h7", "ping 10.2.1.10"),
        ]),
    }
}

/// OSPF issue: a router stops advertising its loopback (missing `network`
/// statement) and the monitoring/management plane loses it.
fn inject_ospf_loopback(
    net: &mut Network,
    router: &str,
    loopback: &str,
    mgmt: &str,
    id: &str,
) -> Issue {
    let lo: Ipv4Addr = loopback.parse().expect("literal");
    {
        let dev = net.device_by_name_mut(router).expect("router exists");
        let ospf = dev.config.ospf.as_mut().expect("router runs ospf");
        let before = ospf.networks.len();
        ospf.networks.retain(|n| !n.prefix.contains(lo));
        assert!(ospf.networks.len() < before, "loopback statement present");
    }
    Issue {
        kind: IssueKind::Ospf,
        id: id.to_string(),
        title: format!("monitoring lost contact with {router} loopback {loopback}"),
        affected: vec![mgmt.to_string(), router.to_string()],
        task_kind: TaskKind::Routing,
        root_cause: router.to_string(),
        probe: (mgmt.to_string(), lo),
        fix: vec![
            (mgmt.to_string(), format!("ping {loopback}")),
            (router.to_string(), "show ip route".to_string()),
            (router.to_string(), "show running-config".to_string()),
            (
                router.to_string(),
                format!("router ospf network {loopback} 0.0.0.0 area 0"),
            ),
            (mgmt.to_string(), format!("ping {loopback}")),
        ],
    }
}

/// ISP reconfiguration: the provider renumbered the peering /30; the old
/// carrier is gone (interface down) and the border must be re-addressed.
fn inject_isp(net: &mut Network, meta: &GenMeta, old_gw: &str) -> Issue {
    let border = &meta.border_router;
    let iface = &meta.upstream_iface;
    net.device_by_name_mut(border)
        .expect("border exists")
        .config
        .interface_mut(iface)
        .expect("upstream iface exists")
        .enabled = false;
    Issue {
        kind: IssueKind::Isp,
        id: "TCK-ISP".to_string(),
        title: format!("ISP renumbered peering; {border} upstream down"),
        affected: vec![border.clone()],
        task_kind: TaskKind::IspChange,
        root_cause: border.clone(),
        probe: (border.clone(), "8.8.8.8".parse().expect("literal")),
        fix: vec![
            (border.clone(), "show interfaces".to_string()),
            (
                border.clone(),
                format!("interface {iface} ip address 203.0.113.2 255.255.255.252"),
            ),
            (
                border.clone(),
                format!("no ip route 0.0.0.0 0.0.0.0 {old_gw}"),
            ),
            (
                border.clone(),
                "ip route 0.0.0.0 0.0.0.0 203.0.113.1".to_string(),
            ),
            (border.clone(), format!("interface {iface} no shutdown")),
            (border.clone(), "ping 8.8.8.8".to_string()),
        ],
    }
}

/// Enterprise Figure 6 issue: the LAN2->DMZ permit on fw1 flipped to deny.
fn inject_enterprise_acl(net: &mut Network) -> Issue {
    net.device_by_name_mut("fw1")
        .expect("fw1 exists")
        .config
        .acls
        .get_mut("100")
        .expect("acl 100 exists")
        .entries[1]
        .action = AclAction::Deny;
    Issue {
        kind: IssueKind::AclDeny,
        id: "TCK-ACL".to_string(),
        title: "h4 cannot reach the web service on srv1".to_string(),
        affected: vec!["h4".to_string(), "srv1".to_string()],
        task_kind: TaskKind::AccessControl,
        root_cause: "fw1".to_string(),
        probe: ("h4".to_string(), "10.2.1.10".parse().expect("literal")),
        fix: cmds(&[
            ("h4", "ping 10.2.1.10"),
            ("fw1", "show access-lists"),
            ("fw1", "no access-list 100 line 2"),
            (
                "fw1",
                "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
            ),
            ("h4", "ping 10.2.1.10"),
        ]),
    }
}

/// University ACL issue: dc1's CS->www permit flipped to deny.
fn inject_university_acl(net: &mut Network) -> Issue {
    net.device_by_name_mut("dc1")
        .expect("dc1 exists")
        .config
        .acls
        .get_mut("130")
        .expect("acl 130 exists")
        .entries[0]
        .action = AclAction::Deny;
    Issue {
        kind: IssueKind::AclDeny,
        id: "TCK-ACL-U".to_string(),
        title: "CS department cannot reach www".to_string(),
        affected: vec!["cs-h1".to_string(), "www".to_string()],
        task_kind: TaskKind::AccessControl,
        root_cause: "dc1".to_string(),
        probe: (
            "cs-h1".to_string(),
            "172.16.10.10".parse().expect("literal"),
        ),
        fix: cmds(&[
            ("cs-h1", "ping 172.16.10.10"),
            ("dc1", "show access-lists"),
            ("dc1", "no access-list 130 line 1"),
            (
                "dc1",
                "access-list 130 line 1 permit ip 172.16.1.0 0.0.0.255 host 172.16.10.10",
            ),
            ("cs-h1", "ping 172.16.10.10"),
        ]),
    }
}

/// Brings one interface down (the Figure 8/9 issue generator).
/// Returns false if the interface does not exist.
pub fn shut_interface(net: &mut Network, device: &str, iface: &str) -> bool {
    match net
        .device_by_name_mut(device)
        .and_then(|d| d.config.interface_mut(iface))
    {
        Some(i) => {
            i.enabled = false;
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_dataplane::{DataPlane, Flow};
    use heimdall_netmodel::gen::{enterprise_network, university_network};
    use heimdall_routing::converge;

    fn probe_fails(net: &Network, probe: &(String, Ipv4Addr)) -> bool {
        let cp = converge(net);
        let dp = DataPlane::new(net, &cp);
        let src_idx = net.idx_of(&probe.0);
        let src_ip = net
            .device_by_name(&probe.0)
            .unwrap()
            .primary_address()
            .unwrap();
        // Use ICMP: the prepared command lists verify with ping.
        !dp.reachable(src_idx, &Flow::icmp(src_ip, probe.1))
    }

    #[test]
    fn every_enterprise_issue_breaks_its_probe() {
        let base = enterprise_network();
        for kind in [
            IssueKind::Vlan,
            IssueKind::Ospf,
            IssueKind::Isp,
            IssueKind::AclDeny,
        ] {
            let mut net = base.net.clone();
            // Healthy first.
            let issue_preview = {
                let mut probe_net = net.clone();
                inject_issue(&mut probe_net, &base.meta, kind).unwrap()
            };
            assert!(
                !probe_fails(&net, &issue_preview.probe),
                "{kind:?} probe must work while healthy"
            );
            let issue = inject_issue(&mut net, &base.meta, kind).unwrap();
            assert!(probe_fails(&net, &issue.probe), "{kind:?} probe must fail");
            assert!(net.device_by_name(&issue.root_cause).is_some());
            assert!(!issue.fix.is_empty());
        }
    }

    #[test]
    fn every_university_issue_breaks_its_probe() {
        let base = university_network();
        for kind in [IssueKind::Ospf, IssueKind::Isp, IssueKind::AclDeny] {
            let mut net = base.net.clone();
            let issue = inject_issue(&mut net, &base.meta, kind).unwrap();
            assert!(probe_fails(&net, &issue.probe), "{kind:?} probe must fail");
        }
        let mut net = base.net.clone();
        assert!(inject_issue(&mut net, &base.meta, IssueKind::Vlan).is_none());
    }

    #[test]
    fn fix_commands_all_parse() {
        let base = enterprise_network();
        for kind in [
            IssueKind::Vlan,
            IssueKind::Ospf,
            IssueKind::Isp,
            IssueKind::AclDeny,
        ] {
            let mut net = base.net.clone();
            let issue = inject_issue(&mut net, &base.meta, kind).unwrap();
            for (_, line) in &issue.fix {
                heimdall_twin::console::Command::parse(line)
                    .unwrap_or_else(|e| panic!("{kind:?}: {line}: {e}"));
            }
        }
    }

    #[test]
    fn applying_the_fix_restores_the_probe() {
        // Run the prepared command list through an unmediated emulation and
        // confirm the probe recovers — for every enterprise issue.
        let base = enterprise_network();
        for kind in [
            IssueKind::Vlan,
            IssueKind::Ospf,
            IssueKind::Isp,
            IssueKind::AclDeny,
        ] {
            let mut net = base.net.clone();
            let issue = inject_issue(&mut net, &base.meta, kind).unwrap();
            let mut emu = heimdall_twin::emu::EmulatedNetwork::new(net);
            for (device, line) in &issue.fix {
                let cmd = heimdall_twin::console::Command::parse(line).unwrap();
                heimdall_twin::console::execute(&mut emu, device, &cmd)
                    .unwrap_or_else(|e| panic!("{kind:?}: {device}: {line}: {e}"));
            }
            assert!(
                !probe_fails(emu.network(), &issue.probe),
                "{kind:?} fix must restore the probe"
            );
        }
    }

    #[test]
    fn shut_interface_helper() {
        let base = enterprise_network();
        let mut net = base.net.clone();
        assert!(shut_interface(&mut net, "core1", "Gi0/0"));
        assert!(!net
            .device_by_name("core1")
            .unwrap()
            .config
            .interface("Gi0/0")
            .unwrap()
            .is_up());
        assert!(!shut_interface(&mut net, "core1", "nope"));
        assert!(!shut_interface(&mut net, "nope", "Gi0/0"));
    }
}
