//! The motivating incidents (§2.2), as executable scenarios run under both
//! the current RMM approach and Heimdall.
//!
//! Each scenario returns a structured outcome so tests and examples can
//! assert the paper's security claims:
//!
//! - [`credential_exfiltration`] — Figure 2 / APT10: an attacker with a
//!   technician's session harvests credentials from device configs;
//! - [`malicious_acl_change`] — Figure 6: a technician fixes the ticket
//!   *and* slips in a rule opening a path to a sensitive host, using the
//!   same legitimate command class;
//! - [`careless_destruction`] — Figure 3: `write erase` on the gateway.

use crate::issues::{inject_issue, IssueKind};
use crate::rmm::RmmSession;
use heimdall_enforcer::pipeline::enforce;
use heimdall_netmodel::gen::GenMeta;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::derive_privileges;
use heimdall_routing::converge;
use heimdall_twin::session::TwinSession;
use heimdall_twin::slice::slice_for_task;
use heimdall_verify::checker::check_policies;
use heimdall_verify::mine::{mine_policies, MinerInput};
use heimdall_verify::policy::PolicySet;
use serde::{Deserialize, Serialize};

/// Shared setup: policies mined from healthy production.
fn mined(production: &Network, meta: &GenMeta) -> PolicySet {
    let cp = converge(production);
    mine_policies(production, &cp, &MinerInput::from_meta(meta))
}

/// Outcome of the APT10-style credential harvest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExfiltrationOutcome {
    /// Distinct secret strings present in production configs.
    pub secrets_total: usize,
    /// Secrets readable through the RMM session.
    pub secrets_rmm: usize,
    /// Secrets readable through the Heimdall twin.
    pub secrets_heimdall: usize,
    /// Heimdall console requests the monitor denied.
    pub heimdall_denials: usize,
}

/// Runs the exfiltration scenario: the attacker issues
/// `show running-config` on every device they can name, and greps the
/// output for credential material.
pub fn credential_exfiltration(production: &Network, meta: &GenMeta) -> ExfiltrationOutcome {
    // What there is to steal.
    let mut all_secrets: Vec<String> = Vec::new();
    for (_, d) in production.devices() {
        all_secrets.extend(d.config.secrets.all_values().iter().map(|s| s.to_string()));
    }
    all_secrets.sort();
    all_secrets.dedup();

    let device_names: Vec<String> = production.devices().map(|(_, d)| d.name.clone()).collect();
    let harvested = |outputs: &[String]| -> usize {
        all_secrets
            .iter()
            .filter(|s| outputs.iter().any(|o| o.contains(s.as_str())))
            .count()
    };

    // Current approach: root on production.
    let mut rmm = RmmSession::login(production.clone());
    let mut rmm_out = Vec::new();
    for d in &device_names {
        if let Ok(o) = rmm.exec(d, "show running-config") {
            rmm_out.push(o);
        }
    }

    // Heimdall: the attacker holds a legitimate connectivity ticket.
    let mut broken = production.clone();
    let issue = inject_issue(&mut broken, meta, IssueKind::AclDeny).expect("acl issue exists");
    let task = heimdall_privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let twin = slice_for_task(&broken, &task);
    let spec = derive_privileges(&broken, &task);
    let mut session = TwinSession::open("apt10", twin, spec);
    let mut twin_out = Vec::new();
    for d in &device_names {
        if let Ok(o) = session.exec(d, "show running-config") {
            twin_out.push(o);
        }
    }
    let denials = session.monitor().denials().len();

    ExfiltrationOutcome {
        secrets_total: all_secrets.len(),
        secrets_rmm: harvested(&rmm_out),
        secrets_heimdall: harvested(&twin_out),
        heimdall_denials: denials,
    }
}

/// Outcome of the Figure 6 malicious-change scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaliciousChangeOutcome {
    /// Policies newly violated in production under the RMM approach.
    pub rmm_new_violations: usize,
    /// Whether Heimdall's twin consoles allowed the malicious command
    /// (they should — it looks legitimate; that is the paper's point).
    pub heimdall_command_allowed: bool,
    /// Whether the enforcer imported the change-set into production.
    pub heimdall_applied: bool,
    /// Policy ids the enforcer cited when rejecting.
    pub heimdall_rejected_for: Vec<String>,
}

/// Ticket: LAN3 cannot reach the DMZ (fw1 ACL broken). The technician
/// fixes it and also slips `permit LAN1 -> LAN3` into acc3's lockdown ACL,
/// opening the path to sensitive h7.
pub fn malicious_acl_change(production: &Network, meta: &GenMeta) -> MaliciousChangeOutcome {
    assert_eq!(meta.name, "enterprise", "scenario is enterprise-specific");
    let policies = mined(production, meta);

    // Break fw1's LAN3->DMZ permit.
    let mut broken = production.clone();
    broken
        .device_by_name_mut("fw1")
        .expect("fw1")
        .config
        .acls
        .get_mut("100")
        .expect("acl 100")
        .entries[2]
        .action = heimdall_netmodel::acl::AclAction::Deny;

    let fix = ("fw1", "no access-list 100 line 3");
    let fix2 = (
        "fw1",
        "access-list 100 line 3 permit ip 10.1.3.0 0.0.0.255 10.2.1.0 0.0.0.255",
    );
    let malicious = (
        "acc3",
        "access-list 120 line 1 permit ip 10.1.1.0 0.0.0.255 10.1.3.0 0.0.0.255",
    );

    // --- RMM: everything lands on production. -----------------------------
    let before = {
        let cp = converge(&broken);
        check_policies(&broken, &cp, &policies)
    };
    let mut rmm = RmmSession::login(broken.clone());
    for (d, c) in [fix, fix2, malicious] {
        rmm.exec(d, c).expect("RMM refuses nothing");
    }
    let rmm_net = rmm.logout();
    let after = {
        let cp = converge(&rmm_net);
        check_policies(&rmm_net, &cp, &policies)
    };
    let diff = heimdall_verify::differential::diff_reports(&before, &after);
    let rmm_new_violations = diff.newly_violated.len();

    // --- Heimdall: twin + enforcer. -----------------------------------------
    let task = heimdall_privilege::derive::Task {
        kind: heimdall_privilege::derive::TaskKind::AccessControl,
        affected: vec!["h8".to_string(), "srv1".to_string()],
    };
    let twin = slice_for_task(&broken, &task);
    let spec = derive_privileges(&broken, &task);
    let mut session = TwinSession::open("mallory", twin, spec.clone());
    let mut allowed = true;
    for (d, c) in [fix, fix2, malicious] {
        if session.exec(d, c).is_err() {
            allowed = false;
        }
    }
    let (changes, _) = session.finish();
    let (outcome, _audit) = enforce("mallory", &broken, &changes, &policies, &spec);

    MaliciousChangeOutcome {
        rmm_new_violations,
        heimdall_command_allowed: allowed,
        heimdall_applied: outcome.applied(),
        heimdall_rejected_for: outcome.report.differential.newly_violated.clone(),
    }
}

/// Outcome of the mass-push (ransomware staging) scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MassPushOutcome {
    /// Devices in the network.
    pub devices_total: usize,
    /// Devices whose credentials the attacker replaced over RMM.
    pub rmm_devices_owned: usize,
    /// Devices the attacker touched through Heimdall.
    pub heimdall_devices_owned: usize,
    /// Heimdall console denials during the push.
    pub heimdall_denials: usize,
}

/// The Kaseya-style incident the paper cites ("Kaseya weaponized to
/// deliver sodinokibi ransomware"): an attacker with an MSP session
/// pushes a credential-replacing payload to every device at once. Over
/// RMM this is one loop; through Heimdall the twin's reference monitor
/// denies credential changes everywhere and off-slice devices do not even
/// resolve.
pub fn mass_push(production: &Network, meta: &GenMeta) -> MassPushOutcome {
    let devices_total = production.device_count();
    let names: Vec<String> = production.devices().map(|(_, d)| d.name.clone()).collect();
    let payload = |d: &str| (d.to_string(), "enable secret pwned-by-rEvil".to_string());

    // RMM: the loop just works.
    let mut rmm = RmmSession::login(production.clone());
    let mut owned = 0usize;
    for d in &names {
        if rmm.exec(d, &payload(d).1).is_ok() {
            owned += 1;
        }
    }
    let rmm_net = rmm.logout();
    let rmm_devices_owned = rmm_net
        .devices()
        .filter(|(_, d)| d.config.secrets.enable_secret.as_deref() == Some("pwned-by-rEvil"))
        .count();
    debug_assert_eq!(owned, rmm_devices_owned);

    // Heimdall: same payload through a legitimate ticket's twin.
    let mut broken = production.clone();
    let issue = inject_issue(&mut broken, meta, IssueKind::AclDeny).expect("acl issue");
    let task = heimdall_privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let twin = slice_for_task(&broken, &task);
    let spec = derive_privileges(&broken, &task);
    let mut session = TwinSession::open("rEvil", twin, spec);
    let mut heimdall_owned = 0usize;
    for d in &names {
        if session.exec(d, &payload(d).1).is_ok() {
            heimdall_owned += 1;
        }
    }
    let denials = session.monitor().denials().len();
    // Even a hypothetical success would still face the enforcer; but the
    // monitor already stopped everything.
    MassPushOutcome {
        devices_total,
        rmm_devices_owned,
        heimdall_devices_owned: heimdall_owned,
        heimdall_denials: denials,
    }
}

/// Outcome of the stolen-credentials scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StolenCredentialsOutcome {
    /// Devices an attacker with phished credentials can act on over RMM.
    pub rmm_devices: usize,
    /// Distinct (device, action) capabilities over RMM.
    pub rmm_capabilities: usize,
    /// Devices reachable through the Heimdall twin of the active ticket.
    pub heimdall_devices: usize,
    /// Distinct (device, action) capabilities under the derived
    /// Privilege_msp.
    pub heimdall_capabilities: usize,
}

/// §3: "A rogue technician or an attacker that passes the authentication
/// (e.g., by phishing credentials) can still cause the above example
/// incidents." With RMM, valid credentials are total power; with
/// Heimdall, stolen credentials are worth exactly the active ticket's
/// least-privilege grant.
pub fn stolen_credentials(production: &Network, meta: &GenMeta) -> StolenCredentialsOutcome {
    use heimdall_privilege::eval::allowed_action_count;
    use heimdall_privilege::model::Action;

    // RMM: authentication is the only gate; root on everything follows.
    let mut server = crate::rmm::RmmServer::new(production.clone(), &[("tech", "phished!")]);
    let session = server.login("tech", "phished!").expect("stolen creds pass");
    let rmm_devices = session.production().device_count();
    let rmm_capabilities = rmm_devices * Action::ALL.len();
    drop(session);

    // Heimdall: the same stolen identity only unlocks the open ticket.
    let mut broken = production.clone();
    let issue = inject_issue(&mut broken, meta, IssueKind::AclDeny).expect("acl issue");
    let task = heimdall_privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let twin = slice_for_task(&broken, &task);
    let spec = derive_privileges(&broken, &task);
    let heimdall_capabilities = production
        .devices()
        .map(|(_, d)| allowed_action_count(&spec, &d.name))
        .sum();

    StolenCredentialsOutcome {
        rmm_devices,
        rmm_capabilities,
        heimdall_devices: twin.net.device_count(),
        heimdall_capabilities,
    }
}

/// Outcome of the Figure 3 careless-destruction scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DestructionOutcome {
    /// Policies violated in production after the RMM accident.
    pub rmm_violations: usize,
    /// Whether the twin's reference monitor blocked the command.
    pub heimdall_blocked: bool,
    /// Production policy violations under Heimdall (must be zero).
    pub heimdall_violations: usize,
}

/// A technician sent to reconfigure the border router fat-fingers a
/// destructive wipe.
pub fn careless_destruction(production: &Network, meta: &GenMeta) -> DestructionOutcome {
    let policies = mined(production, meta);
    let gateway = &meta.border_router;

    // RMM: the wipe lands on production.
    let mut rmm = RmmSession::login(production.clone());
    rmm.exec(gateway, "write erase")
        .expect("RMM refuses nothing");
    let rmm_net = rmm.logout();
    let rmm_violations = {
        let cp = converge(&rmm_net);
        check_policies(&rmm_net, &cp, &policies).violation_count()
    };

    // Heimdall: an ISP-change ticket scoped to the gateway.
    let task = heimdall_privilege::derive::Task {
        kind: heimdall_privilege::derive::TaskKind::IspChange,
        affected: vec![gateway.clone()],
    };
    let twin = slice_for_task(production, &task);
    let spec = derive_privileges(production, &task);
    let mut session = TwinSession::open("careless", twin, spec);
    let blocked = session.exec(gateway, "write erase").is_err();
    let (changes, _) = session.finish();
    // Even if something had changed, nothing was: production is untouched.
    assert!(changes.is_empty());
    let heimdall_violations = {
        let cp = converge(production);
        check_policies(production, &cp, &policies).violation_count()
    };

    DestructionOutcome {
        rmm_violations,
        heimdall_blocked: blocked,
        heimdall_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn exfiltration_blocked_by_sanitized_twin() {
        let g = enterprise_network();
        let o = credential_exfiltration(&g.net, &g.meta);
        assert!(
            o.secrets_total >= 30,
            "enough to steal: {}",
            o.secrets_total
        );
        assert_eq!(o.secrets_rmm, o.secrets_total, "RMM leaks everything");
        assert_eq!(o.secrets_heimdall, 0, "twin leaks nothing");
        assert!(o.heimdall_denials > 0, "off-slice reads are denied");
    }

    #[test]
    fn malicious_change_caught_by_enforcer_not_console() {
        let g = enterprise_network();
        let o = malicious_acl_change(&g.net, &g.meta);
        // RMM: production ends up violating the LAN1->LAN3 isolation.
        assert!(o.rmm_new_violations >= 1, "{o:?}");
        // Heimdall: the command *looked* legitimate and was allowed...
        assert!(o.heimdall_command_allowed, "{o:?}");
        // ...but the enforcer refused to import it.
        assert!(!o.heimdall_applied, "{o:?}");
        assert!(
            o.heimdall_rejected_for
                .iter()
                .any(|id| id.contains("LAN1") && id.contains("LAN3")),
            "{o:?}"
        );
    }

    #[test]
    fn mass_push_owns_everything_over_rmm_nothing_via_heimdall() {
        let g = enterprise_network();
        let o = mass_push(&g.net, &g.meta);
        assert_eq!(o.devices_total, 18);
        assert_eq!(o.rmm_devices_owned, 18, "{o:?}");
        assert_eq!(o.heimdall_devices_owned, 0, "{o:?}");
        assert_eq!(o.heimdall_denials, 18, "every push attempt denied");
    }

    #[test]
    fn stolen_credentials_bounded_by_ticket() {
        let g = enterprise_network();
        let o = stolen_credentials(&g.net, &g.meta);
        assert_eq!(o.rmm_devices, 18);
        assert_eq!(o.rmm_capabilities, 18 * 12);
        assert!(o.heimdall_devices < o.rmm_devices / 2, "{o:?}");
        assert!(o.heimdall_capabilities < o.rmm_capabilities / 4, "{o:?}");
    }

    #[test]
    fn destruction_blocked_at_the_monitor() {
        let g = enterprise_network();
        let o = careless_destruction(&g.net, &g.meta);
        assert!(o.rmm_violations > 0, "RMM outage is real: {o:?}");
        assert!(o.heimdall_blocked);
        assert_eq!(o.heimdall_violations, 0);
    }
}
