//! # heimdall-msp
//!
//! The managed-service-provider workflow substrate: everything around the
//! Heimdall core that §2 of the paper describes.
//!
//! - [`ticket`] — the ticketing system technicians pull work from;
//! - [`rmm`] — the *current approach* baseline: an RMM-style session with
//!   root on the production network, no mediation (Figure 1);
//! - [`issues`] — injectors for the paper's evaluated problem classes
//!   (VLAN misconfig, OSPF misconfig, ISP renumbering, the Figure 6 ACL
//!   deny, and the Figure 8/9 interface-down sweep);
//! - [`technician`] — scripted technicians replaying "a prepared list of
//!   commands" per issue, with the calibrated think-time model behind the
//!   Figure 7 timing comparison;
//! - [`attacks`] — the motivating incidents as executable scenarios:
//!   APT10-style credential exfiltration (Figure 2), the malicious ACL
//!   edit (Figure 6), and the careless `write erase` (Figure 3), each run
//!   under both the RMM baseline and Heimdall.

pub mod attacks;
pub mod diagnose;
pub mod issues;
pub mod rmm;
pub mod technician;
pub mod ticket;

pub use diagnose::{localize, Diagnosis, FaultClass};
pub use issues::{inject_issue, Issue, IssueKind};
pub use rmm::{RmmServer, RmmSession};
pub use technician::{ScriptedTechnician, TimeModel};
pub use ticket::{Ticket, TicketStatus, TicketSystem};
