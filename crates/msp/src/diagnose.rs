//! Automated fault localization: from a failing probe to a root-cause
//! hypothesis.
//!
//! The paper's technician "may start the debugging process at the effected
//! host ... if they suspect that the issue is not associated with the
//! host, but is actually caused by intermediate switches or middleboxes,
//! then they can examine and modify configurations on these network
//! devices as well." This module mechanizes that first sweep: trace the
//! failing flow, read the disposition, and name the device and problem
//! class — which is also exactly the input the escalation workflow needs
//! ("the trace shows acl 100 denying...").

use heimdall_dataplane::{Disposition, Flow};
use heimdall_privilege::derive::TaskKind;
use heimdall_twin::emu::EmulatedNetwork;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What kind of fault the trace evidence points at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// An ACL dropped the flow: `(acl name, 1-based line)`.
    AclDeny { acl: String, line: usize },
    /// No route at the named device.
    MissingRoute,
    /// The flow was null-routed.
    NullRoute,
    /// Next hop unreachable at L2: down link, absent host, or VLAN
    /// mismatch at/behind the named device.
    L2OrLink { iface: String },
    /// A forwarding loop.
    Loop,
    /// The flow actually succeeds (no fault to localize).
    NoFault,
}

/// A localization result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The device the evidence points at.
    pub device: String,
    pub class: FaultClass,
    /// The hop-by-hop evidence, rendered.
    pub evidence: String,
    /// The ticket class this fault maps onto (drives escalation).
    pub suggested_task: TaskKind,
}

/// Traces `src -> dst` in the emulation and localizes the failure.
/// Returns `None` when the source device cannot originate the probe.
pub fn localize(emu: &mut EmulatedNetwork, src_device: &str, dst: Ipv4Addr) -> Option<Diagnosis> {
    let src_ip = emu
        .network()
        .device_by_name(src_device)?
        .primary_address()?;
    let trace = emu.trace_from(src_device, &Flow::icmp(src_ip, dst))?;
    let evidence = trace.to_string();
    let (device, class) = match &trace.disposition {
        Disposition::Delivered { device } | Disposition::ExitsNetwork { device, .. } => {
            (device.clone(), FaultClass::NoFault)
        }
        Disposition::DeniedIn { device, acl, line }
        | Disposition::DeniedOut { device, acl, line } => (
            device.clone(),
            FaultClass::AclDeny {
                acl: acl.clone(),
                line: *line,
            },
        ),
        Disposition::NoRoute { device } => (device.clone(), FaultClass::MissingRoute),
        Disposition::NullRouted { device } => (device.clone(), FaultClass::NullRoute),
        Disposition::NeighborUnreachable { device, iface } => (
            device.clone(),
            FaultClass::L2OrLink {
                iface: iface.clone(),
            },
        ),
        Disposition::Loop { device } => (device.clone(), FaultClass::Loop),
    };
    let suggested_task = match &class {
        FaultClass::AclDeny { .. } => TaskKind::AccessControl,
        FaultClass::MissingRoute | FaultClass::NullRoute | FaultClass::Loop => TaskKind::Routing,
        FaultClass::L2OrLink { .. } => TaskKind::Vlan,
        FaultClass::NoFault => TaskKind::Monitoring,
    };
    Some(Diagnosis {
        device,
        class,
        evidence,
        suggested_task,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::issues::{inject_issue, IssueKind};
    use heimdall_netmodel::gen::enterprise_network;

    fn diagnose(kind: IssueKind) -> (crate::issues::Issue, Diagnosis) {
        let g = enterprise_network();
        let mut net = g.net.clone();
        let issue = inject_issue(&mut net, &g.meta, kind).expect("enterprise issue");
        let mut emu = EmulatedNetwork::new(net);
        let d = localize(&mut emu, &issue.probe.0, issue.probe.1).expect("probe source valid");
        (issue, d)
    }

    #[test]
    fn localizes_the_acl_issue() {
        let (issue, d) = diagnose(IssueKind::AclDeny);
        assert_eq!(d.device, issue.root_cause);
        assert!(
            matches!(&d.class, FaultClass::AclDeny { acl, line } if acl == "100" && *line == 2),
            "{d:?}"
        );
        assert_eq!(d.suggested_task, TaskKind::AccessControl);
        assert!(d.evidence.contains("fw1"));
    }

    #[test]
    fn localizes_the_vlan_issue_to_the_stranded_side() {
        let (_, d) = diagnose(IssueKind::Vlan);
        // The frame dies leaving h7 (its gateway became unreachable); the
        // L2/link classification points the technician at exactly the
        // right layer, and the suggested task is VLAN work.
        assert!(matches!(d.class, FaultClass::L2OrLink { .. }), "{d:?}");
        assert_eq!(d.suggested_task, TaskKind::Vlan);
    }

    #[test]
    fn localizes_the_ospf_issue_as_routing() {
        let (_, d) = diagnose(IssueKind::Ospf);
        // The probe dies where the default route gives out (no specific
        // route anywhere): class must be routing-flavored.
        assert!(
            matches!(
                d.class,
                FaultClass::MissingRoute | FaultClass::L2OrLink { .. }
            ),
            "{d:?}"
        );
    }

    #[test]
    fn healthy_probe_reports_no_fault() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        let d = localize(&mut emu, "h1", "10.2.1.10".parse().unwrap()).unwrap();
        assert_eq!(d.class, FaultClass::NoFault);
        assert_eq!(d.device, "srv1");
        assert_eq!(d.suggested_task, TaskKind::Monitoring);
    }

    #[test]
    fn unknown_source_returns_none() {
        let g = enterprise_network();
        let mut emu = EmulatedNetwork::new(g.net);
        assert!(localize(&mut emu, "ghost", "10.2.1.10".parse().unwrap()).is_none());
    }

    #[test]
    fn loop_classified_as_routing() {
        use heimdall_netmodel::builder::NetBuilder;
        use heimdall_netmodel::proto::StaticRoute;
        let mut b = NetBuilder::new();
        b.router("r1").router("r2");
        let (_, r1_ip, _, r2_ip, _) = b.connect("r1", "r2");
        b.lan("r1", "10.1.0.0/24".parse().unwrap(), &["a"]);
        b.device_mut("r1")
            .config
            .static_routes
            .push(StaticRoute::new("9.9.9.0/24".parse().unwrap(), r2_ip));
        b.device_mut("r2")
            .config
            .static_routes
            .push(StaticRoute::new("9.9.9.0/24".parse().unwrap(), r1_ip));
        let mut emu = EmulatedNetwork::new(b.build());
        let d = localize(&mut emu, "a", "9.9.9.9".parse().unwrap()).unwrap();
        assert_eq!(d.class, FaultClass::Loop);
        assert_eq!(d.suggested_task, TaskKind::Routing);
    }
}
