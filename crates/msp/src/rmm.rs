//! The *current approach* baseline: an RMM-style session (Figure 1).
//!
//! "Once authenticated, the technician has full control over network
//! devices... Since the RMM agents have root access, the technician can
//! issue both normal and privileged commands." — no mediation, no
//! sanitization, commands land directly on production state.

use heimdall_netmodel::diff::{diff_networks, ConfigDiff};
use heimdall_netmodel::topology::Network;
use heimdall_twin::console::{execute, Command, CommandError};
use heimdall_twin::emu::EmulatedNetwork;
use std::collections::HashMap;

/// Authentication failure at the RMM server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthError {
    pub user: String,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "authentication failed for {:?}", self.user)
    }
}

impl std::error::Error for AuthError {}

/// The central RMM server (Figure 1): "responsible for authenticating
/// users and authorizing access to the agents". The crucial property —
/// and the paper's critique — is that authentication is the *only* gate:
/// any session it opens has root on every agent.
pub struct RmmServer {
    production: Network,
    users: HashMap<String, String>,
    /// `(user, success)` per attempt — the flat log a real RMM keeps.
    pub login_log: Vec<(String, bool)>,
}

impl RmmServer {
    /// A server fronting `production` with the given credential database.
    pub fn new(production: Network, users: &[(&str, &str)]) -> Self {
        RmmServer {
            production,
            users: users
                .iter()
                .map(|(u, p)| (u.to_string(), p.to_string()))
                .collect(),
            login_log: Vec::new(),
        }
    }

    /// Authenticates and opens a session. Whoever holds valid credentials
    /// — the technician or whoever phished them — gets identical, full
    /// access: the server cannot tell the difference.
    pub fn login(&mut self, user: &str, password: &str) -> Result<RmmSession, AuthError> {
        let ok = self.users.get(user).map(|p| p == password).unwrap_or(false);
        self.login_log.push((user.to_string(), ok));
        if ok {
            Ok(RmmSession::login(self.production.clone()))
        } else {
            Err(AuthError {
                user: user.to_string(),
            })
        }
    }

    /// Commits a session's live state back as production (RMM semantics:
    /// the agents already executed everything; this mirrors that).
    pub fn commit(&mut self, session: RmmSession) {
        self.production = session.logout();
    }

    /// The current production network.
    pub fn production(&self) -> &Network {
        &self.production
    }
}

/// An authenticated RMM session with root on production.
pub struct RmmSession {
    baseline: Network,
    emu: EmulatedNetwork,
    /// Raw command transcript `(device, line)` — RMM tools keep flat logs,
    /// not tamper-evident chains.
    pub transcript: Vec<(String, String)>,
}

impl RmmSession {
    /// Logs in (the paper's step 2: authentication is the *only* gate).
    pub fn login(production: Network) -> Self {
        RmmSession {
            baseline: production.clone(),
            emu: EmulatedNetwork::new(production),
            transcript: Vec::new(),
        }
    }

    /// Runs a command with root — no privilege check of any kind.
    pub fn exec(&mut self, device: &str, line: &str) -> Result<String, CommandError> {
        let cmd = Command::parse(line)?;
        self.transcript.push((device.to_string(), line.to_string()));
        execute(&mut self.emu, device, &cmd)
    }

    /// The live production network (changes applied immediately).
    pub fn production(&self) -> &Network {
        self.emu.network()
    }

    /// What changed since login.
    pub fn changes(&self) -> ConfigDiff {
        diff_networks(&self.baseline, self.emu.network())
    }

    /// Ends the session, returning the (already live) production network.
    pub fn logout(self) -> Network {
        let emu = self.emu;
        // Consume the emulation; configs are production now.
        let mut net = self.baseline;
        net.clone_from(emu.network());
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn server_authenticates_and_logs_attempts() {
        let g = enterprise_network();
        let mut srv = RmmServer::new(g.net, &[("alice", "hunter2")]);
        assert!(srv.login("alice", "wrong").is_err());
        assert!(srv.login("mallory", "hunter2").is_err());
        let session = srv.login("alice", "hunter2").expect("valid creds");
        drop(session);
        assert_eq!(srv.login_log.len(), 3);
        assert_eq!(srv.login_log.iter().filter(|(_, ok)| *ok).count(), 1);
    }

    #[test]
    fn stolen_credentials_grant_identical_root() {
        // The paper's point: authentication alone cannot distinguish the
        // technician from the attacker who phished them.
        let g = enterprise_network();
        let mut srv = RmmServer::new(g.net, &[("alice", "hunter2")]);
        let mut session = srv.login("alice", "hunter2").expect("phished creds work");
        let out = session.exec("fw1", "show running-config").unwrap();
        assert!(out.contains("enable secret"));
        session.exec("core1", "write erase").unwrap();
        srv.commit(session);
        assert!(srv
            .production()
            .device_by_name("core1")
            .unwrap()
            .config
            .interfaces
            .is_empty());
    }

    #[test]
    fn rmm_gives_unrestricted_root() {
        let g = enterprise_network();
        let mut s = RmmSession::login(g.net);
        // Reading credentials: allowed.
        let run = s.exec("fw1", "show running-config").unwrap();
        assert!(run.contains("enable secret"), "secrets visible over RMM");
        // Destroying a core router: allowed.
        s.exec("core1", "write erase").unwrap();
        assert!(s
            .production()
            .device_by_name("core1")
            .unwrap()
            .config
            .interfaces
            .is_empty());
        assert_eq!(s.transcript.len(), 2);
    }

    #[test]
    fn changes_land_on_production_immediately() {
        let g = enterprise_network();
        let mut s = RmmSession::login(g.net);
        s.exec("acc1", "interface Gi0/0 shutdown").unwrap();
        assert!(!s
            .production()
            .device_by_name("acc1")
            .unwrap()
            .config
            .interface("Gi0/0")
            .unwrap()
            .is_up());
        let diff = s.changes();
        assert_eq!(diff.len(), 1);
        let net = s.logout();
        assert!(!net
            .device_by_name("acc1")
            .unwrap()
            .config
            .interface("Gi0/0")
            .unwrap()
            .is_up());
    }
}
