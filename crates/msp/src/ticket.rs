//! The ticketing system: where every MSP engagement starts (Figure 1,
//! step 1) and ends (step 4).

use heimdall_privilege::derive::TaskKind;
use serde::{Deserialize, Serialize};

/// Lifecycle of a ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TicketStatus {
    Open,
    Assigned,
    Resolved,
    Closed,
}

/// A trouble ticket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ticket {
    pub id: String,
    pub title: String,
    pub description: String,
    /// Devices the reported symptom involves.
    pub affected: Vec<String>,
    /// The problem class, as triaged.
    pub kind: TaskKind,
    pub status: TicketStatus,
    pub assignee: Option<String>,
    /// Resolution notes appended on close.
    pub resolution: Option<String>,
}

impl Ticket {
    /// Opens a new ticket.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        affected: Vec<String>,
        kind: TaskKind,
    ) -> Self {
        let title = title.into();
        Ticket {
            id: id.into(),
            description: title.clone(),
            title,
            affected,
            kind,
            status: TicketStatus::Open,
            assignee: None,
            resolution: None,
        }
    }

    /// The privilege-derivation task for this ticket.
    pub fn task(&self) -> heimdall_privilege::derive::Task {
        heimdall_privilege::derive::Task {
            kind: self.kind,
            affected: self.affected.clone(),
        }
    }
}

/// A minimal ticket queue.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TicketSystem {
    tickets: Vec<Ticket>,
}

impl TicketSystem {
    /// An empty queue.
    pub fn new() -> Self {
        TicketSystem::default()
    }

    /// Files a ticket; returns its id.
    pub fn file(&mut self, ticket: Ticket) -> String {
        let id = ticket.id.clone();
        self.tickets.push(ticket);
        id
    }

    /// Assigns the oldest open ticket to `technician`.
    pub fn assign_next(&mut self, technician: &str) -> Option<&Ticket> {
        let t = self
            .tickets
            .iter_mut()
            .find(|t| t.status == TicketStatus::Open)?;
        t.status = TicketStatus::Assigned;
        t.assignee = Some(technician.to_string());
        Some(t)
    }

    /// Marks a ticket resolved with notes.
    pub fn resolve(&mut self, id: &str, notes: &str) -> bool {
        if let Some(t) = self.tickets.iter_mut().find(|t| t.id == id) {
            t.status = TicketStatus::Resolved;
            t.resolution = Some(notes.to_string());
            true
        } else {
            false
        }
    }

    /// Closes a resolved ticket.
    pub fn close(&mut self, id: &str) -> bool {
        if let Some(t) = self
            .tickets
            .iter_mut()
            .find(|t| t.id == id && t.status == TicketStatus::Resolved)
        {
            t.status = TicketStatus::Closed;
            true
        } else {
            false
        }
    }

    /// Looks a ticket up.
    pub fn get(&self, id: &str) -> Option<&Ticket> {
        self.tickets.iter().find(|t| t.id == id)
    }

    /// All tickets with a given status.
    pub fn with_status(&self, status: TicketStatus) -> Vec<&Ticket> {
        self.tickets.iter().filter(|t| t.status == status).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut ts = TicketSystem::new();
        ts.file(Ticket::new(
            "TCK-1",
            "h4 cannot reach srv1",
            vec!["h4".into(), "srv1".into()],
            TaskKind::Connectivity,
        ));
        let t = ts.assign_next("alice").unwrap();
        assert_eq!(t.assignee.as_deref(), Some("alice"));
        assert!(ts.resolve("TCK-1", "fixed acl 100 line 2"));
        assert!(ts.close("TCK-1"));
        assert_eq!(ts.get("TCK-1").unwrap().status, TicketStatus::Closed);
    }

    #[test]
    fn cannot_close_unresolved() {
        let mut ts = TicketSystem::new();
        ts.file(Ticket::new("TCK-2", "x", vec![], TaskKind::Monitoring));
        assert!(!ts.close("TCK-2"));
        assert!(!ts.resolve("nope", ""));
    }

    #[test]
    fn assignment_order_is_fifo() {
        let mut ts = TicketSystem::new();
        ts.file(Ticket::new("A", "a", vec![], TaskKind::Monitoring));
        ts.file(Ticket::new("B", "b", vec![], TaskKind::Monitoring));
        assert_eq!(ts.assign_next("t").unwrap().id, "A");
        assert_eq!(ts.assign_next("t").unwrap().id, "B");
        assert!(ts.assign_next("t").is_none());
        assert_eq!(ts.with_status(TicketStatus::Assigned).len(), 2);
    }

    #[test]
    fn ticket_maps_to_task() {
        let t = Ticket::new(
            "T",
            "t",
            vec!["h1".into(), "srv1".into()],
            TaskKind::AccessControl,
        );
        let task = t.task();
        assert_eq!(task.kind, TaskKind::AccessControl);
        assert_eq!(task.affected, vec!["h1".to_string(), "srv1".to_string()]);
    }
}
