//! Scripted technicians and the calibrated think-time model behind the
//! Figure 7 timing study.
//!
//! The paper levels the playing field by having the technician "perform a
//! prepared list of commands". We reproduce that literally: a
//! [`ScriptedTechnician`] replays an issue's fix list against either an RMM
//! session (current approach) or a Heimdall twin session.
//!
//! Wall-clock seconds cannot be reproduced on an in-process simulator (our
//! operations are microseconds where the paper's stack takes seconds), so
//! Figure 7 uses a calibrated [`TimeModel`]: per-step constants chosen once
//! to be plausible for an experienced technician and the paper's tooling,
//! then *held fixed* across approaches and issues. The comparison (which
//! steps exist, what dominates, how overhead scales with issue complexity)
//! is the reproducible object; EXPERIMENTS.md reports both modeled seconds
//! and actual simulator microseconds.

use crate::rmm::RmmSession;
use heimdall_twin::session::{SessionError, TwinSession};
use serde::{Deserialize, Serialize};

/// Calibration constants (seconds).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeModel {
    /// Logging into the RMM console / twin presentation layer.
    pub connect: f64,
    /// Typing one prepared command and reading its output.
    pub per_command: f64,
    /// Saving/documenting changes at the end.
    pub save: f64,
    /// Generating the Privilege_msp: fixed part.
    pub privilege_base: f64,
    /// ... plus per derived predicate.
    pub privilege_per_predicate: f64,
    /// Twin instantiation: fixed part.
    pub twin_base: f64,
    /// ... plus per emulated device.
    pub twin_per_device: f64,
    /// ... plus per L2-switching device (VLAN-bearing nodes cost more to
    /// emulate, as they do on real emulators).
    pub twin_per_l2_device: f64,
    /// Verify-and-schedule: fixed part.
    pub verify_base: f64,
    /// ... plus per policy checked.
    pub verify_per_policy: f64,
    /// ... plus per scheduled change.
    pub verify_per_change: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            connect: 5.0,
            per_command: 6.0,
            save: 3.0,
            privilege_base: 1.0,
            privilege_per_predicate: 0.1,
            twin_base: 2.0,
            twin_per_device: 3.0,
            twin_per_l2_device: 8.0,
            verify_base: 2.0,
            verify_per_policy: 0.05,
            verify_per_change: 1.0,
        }
    }
}

/// Modeled time for one debugging engagement, broken down by step — the
/// bars of Figure 7.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    pub connect: f64,
    pub generate_privilege: f64,
    pub setup_twin: f64,
    pub perform_operations: f64,
    pub verify_schedule: f64,
    pub save: f64,
}

impl TimeBreakdown {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.connect
            + self.generate_privilege
            + self.setup_twin
            + self.perform_operations
            + self.verify_schedule
            + self.save
    }

    /// Heimdall's extra steps only (the paper's "latency overhead").
    pub fn overhead(&self) -> f64 {
        self.generate_privilege + self.setup_twin + self.verify_schedule
    }
}

impl TimeModel {
    /// Modeled time for the current approach: connect, operate, save.
    pub fn current_approach(&self, commands: usize) -> TimeBreakdown {
        TimeBreakdown {
            connect: self.connect,
            perform_operations: self.per_command * commands as f64,
            save: self.save,
            ..TimeBreakdown::default()
        }
    }

    /// Modeled time for Heimdall: the same three steps plus privilege
    /// generation, twin setup, and verify+schedule.
    #[allow(clippy::too_many_arguments)]
    pub fn heimdall(
        &self,
        commands: usize,
        predicates: usize,
        twin_devices: usize,
        twin_l2_devices: usize,
        policies: usize,
        changes: usize,
    ) -> TimeBreakdown {
        TimeBreakdown {
            connect: self.connect,
            generate_privilege: self.privilege_base
                + self.privilege_per_predicate * predicates as f64,
            setup_twin: self.twin_base
                + self.twin_per_device * twin_devices as f64
                + self.twin_per_l2_device * twin_l2_devices as f64,
            perform_operations: self.per_command * commands as f64,
            verify_schedule: self.verify_base
                + self.verify_per_policy * policies as f64
                + self.verify_per_change * changes as f64,
            save: self.save,
        }
    }
}

/// A technician who replays a prepared command list.
#[derive(Debug, Clone)]
pub struct ScriptedTechnician {
    pub name: String,
    /// `(device, console line)` in order.
    pub commands: Vec<(String, String)>,
}

impl ScriptedTechnician {
    /// A technician named `name` with the given script.
    pub fn new(name: impl Into<String>, commands: Vec<(String, String)>) -> Self {
        ScriptedTechnician {
            name: name.into(),
            commands,
        }
    }

    /// Replays the script over RMM (current approach). Returns each
    /// command's output; RMM never refuses anything.
    pub fn run_rmm(&self, session: &mut RmmSession) -> Vec<String> {
        self.commands
            .iter()
            .map(|(d, c)| session.exec(d, c).unwrap_or_else(|e| format!("{e}")))
            .collect()
    }

    /// Replays the script in a Heimdall twin. Denied or failing commands
    /// are returned as `Err` alongside their index.
    pub fn run_twin(
        &self,
        session: &mut TwinSession,
    ) -> Vec<Result<String, (usize, SessionError)>> {
        self.commands
            .iter()
            .enumerate()
            .map(|(i, (d, c))| session.exec(d, c).map_err(|e| (i, e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_approach_has_three_steps() {
        let m = TimeModel::default();
        let t = m.current_approach(5);
        assert!(t.generate_privilege == 0.0 && t.setup_twin == 0.0 && t.verify_schedule == 0.0);
        assert!((t.total() - (5.0 + 30.0 + 3.0)).abs() < 1e-9);
        assert_eq!(t.overhead(), 0.0);
    }

    #[test]
    fn heimdall_overhead_scales_with_complexity() {
        let m = TimeModel::default();
        let simple = m.heimdall(6, 8, 1, 0, 21, 3);
        let complex = m.heimdall(5, 30, 7, 1, 21, 1);
        assert!(simple.overhead() < complex.overhead());
        // Operations dominate the total in both (the paper's observation).
        assert!(simple.perform_operations >= simple.verify_schedule);
    }

    #[test]
    fn identical_commands_cost_identically_in_both_modes() {
        let m = TimeModel::default();
        let a = m.current_approach(7);
        let b = m.heimdall(7, 10, 3, 0, 21, 1);
        assert!((a.perform_operations - b.perform_operations).abs() < 1e-9);
    }

    #[test]
    fn scripted_replay_over_rmm() {
        let g = heimdall_netmodel::gen::enterprise_network();
        let tech = ScriptedTechnician::new(
            "bob",
            vec![
                ("h1".to_string(), "ping 10.2.1.10".to_string()),
                ("fw1".to_string(), "show access-lists".to_string()),
            ],
        );
        let mut s = RmmSession::login(g.net);
        let outputs = tech.run_rmm(&mut s);
        assert_eq!(outputs.len(), 2);
        assert!(outputs[0].contains("success"));
    }
}
