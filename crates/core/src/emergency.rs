//! Emergency mode (§7): "an emergency mode in which the reference monitor
//! bypasses the twin network and sends commands directly to the production
//! network via the policy enforcer could be necessary."
//!
//! Some problems cannot reproduce inside an emulated twin (hardware
//! faults, optics, anything the paper's §7 lists as an emulation
//! limitation). For those, Heimdall degrades gracefully rather than
//! falling back to raw RMM root: the technician talks to *production*, but
//!
//! - every command still passes the reference monitor (privilege check),
//! - every **mutating** command is applied to a shadow copy first,
//!   re-converged, and differentially checked against the network
//!   policies; a command that would newly violate a policy is refused and
//!   never touches production,
//! - everything — activations, commands, refusals — lands in the
//!   enclave-sealed audit chain.
//!
//! This is deliberately the "continuous verification" strawman of §4.3:
//! slower per command, and with the false-positive risk the paper
//! describes (a mid-sequence state may transiently violate a policy).
//! That cost is the price of skipping the twin, which is why emergency
//! mode is an explicit, audited, per-ticket opt-in — never the default.

use heimdall_enforcer::audit::AuditKind;
use heimdall_enforcer::enclave::Platform;
use heimdall_enforcer::pipeline::EnforcerPipeline;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::model::PrivilegeMsp;
use heimdall_routing::converge;
use heimdall_twin::console::{execute, Command, CommandError};
use heimdall_twin::emu::EmulatedNetwork;
use heimdall_twin::monitor::ReferenceMonitor;
use heimdall_verify::checker::check_policies;
use heimdall_verify::differential::diff_reports;
use heimdall_verify::policy::PolicySet;

/// Why an emergency command failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EmergencyError {
    /// The reference monitor refused it (privilege).
    PermissionDenied { command: String },
    /// Applying it would newly violate the named policies.
    PolicyVeto {
        command: String,
        policies: Vec<String>,
    },
    /// Parse/execution failure.
    Command(CommandError),
}

impl std::fmt::Display for EmergencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmergencyError::PermissionDenied { command } => {
                write!(f, "% Permission denied by Privilege_msp: {command}")
            }
            EmergencyError::PolicyVeto { command, policies } => {
                write!(f, "% Refused by policy enforcer ({policies:?}): {command}")
            }
            EmergencyError::Command(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EmergencyError {}

/// An emergency session: mediated, per-command-enforced access to
/// production.
pub struct EmergencySession {
    emu: EmulatedNetwork,
    monitor: ReferenceMonitor,
    policies: PolicySet,
    pipeline: EnforcerPipeline,
    technician: String,
}

impl EmergencySession {
    /// Activates emergency mode. The activation itself — who, and the
    /// stated reason — is the first audit entry.
    pub fn activate(
        technician: &str,
        production: Network,
        spec: PrivilegeMsp,
        policies: PolicySet,
        reason: &str,
    ) -> Self {
        let platform = Platform::new("heimdall-host");
        let mut pipeline = EnforcerPipeline::launch(&platform);
        pipeline.log(
            AuditKind::Session,
            technician,
            &format!("EMERGENCY MODE ACTIVATED: {reason}"),
        );
        EmergencySession {
            emu: EmulatedNetwork::new(production),
            monitor: ReferenceMonitor::new(technician, spec),
            policies,
            pipeline,
            technician: technician.to_string(),
        }
    }

    /// Executes one mediated, enforced command against production.
    pub fn exec(&mut self, device: &str, line: &str) -> Result<String, EmergencyError> {
        let cmd = Command::parse(line).map_err(EmergencyError::Command)?;
        let decision = self.monitor.mediate(device, line, &cmd);
        if !decision.is_allowed() {
            self.pipeline.log(
                AuditKind::Command,
                &self.technician,
                &format!("{device}: {line} [DENIED: privilege]"),
            );
            return Err(EmergencyError::PermissionDenied {
                command: line.to_string(),
            });
        }

        if !cmd.is_mutating() {
            let out = execute(&mut self.emu, device, &cmd).map_err(EmergencyError::Command)?;
            self.pipeline.log(
                AuditKind::Command,
                &self.technician,
                &format!("{device}: {line} [read-only]"),
            );
            return Ok(out);
        }

        // Mutating: dry-run on a shadow copy, differential policy check.
        let before = self.emu.network().clone();
        let cp_before = converge(&before);
        let report_before = check_policies(&before, &cp_before, &self.policies);

        let mut shadow = EmulatedNetwork::new(before.clone());
        execute(&mut shadow, device, &cmd).map_err(EmergencyError::Command)?;
        let after = shadow.network().clone();
        let cp_after = converge(&after);
        let report_after = check_policies(&after, &cp_after, &self.policies);
        let diff = diff_reports(&report_before, &report_after);

        if !diff.is_safe() {
            self.pipeline.log(
                AuditKind::Command,
                &self.technician,
                &format!(
                    "{device}: {line} [VETOED: would violate {:?}]",
                    diff.newly_violated
                ),
            );
            return Err(EmergencyError::PolicyVeto {
                command: line.to_string(),
                policies: diff.newly_violated,
            });
        }

        // Safe: commit to production.
        let out = execute(&mut self.emu, device, &cmd).map_err(EmergencyError::Command)?;
        self.pipeline.log(
            AuditKind::ChangeApplied,
            &self.technician,
            &format!("{device}: {line} [emergency-applied]"),
        );
        Ok(out)
    }

    /// The live production network.
    pub fn production(&self) -> &Network {
        self.emu.network()
    }

    /// The reference monitor's event feed.
    pub fn monitor(&self) -> &ReferenceMonitor {
        &self.monitor
    }

    /// Audit integrity check (chain + enclave seal).
    pub fn verify_audit_integrity(&self) -> bool {
        self.pipeline.verify_audit_integrity()
    }

    /// Deactivates emergency mode, returning production and the audit log.
    pub fn deactivate(mut self) -> (Network, heimdall_enforcer::audit::AuditLog) {
        self.pipeline.log(
            AuditKind::Session,
            &self.technician,
            "EMERGENCY MODE DEACTIVATED",
        );
        let net = self.emu.network().clone();
        (net, self.pipeline.audit().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::enterprise;
    use heimdall_msp::issues::{inject_issue, IssueKind};
    use heimdall_privilege::derive::derive_privileges;

    fn setup() -> (
        Network,
        heimdall_msp::issues::Issue,
        PolicySet,
        PrivilegeMsp,
    ) {
        let (net, meta, policies) = enterprise();
        let mut broken = net;
        let issue = inject_issue(&mut broken, &meta, IssueKind::Isp).expect("isp issue");
        let task = heimdall_privilege::derive::Task {
            kind: issue.task_kind,
            affected: issue.affected.clone(),
        };
        let spec = derive_privileges(&broken, &task);
        (broken, issue, policies, spec)
    }

    #[test]
    fn emergency_fixes_production_directly() {
        let (broken, issue, policies, spec) = setup();
        let mut s = EmergencySession::activate(
            "alice",
            broken,
            spec,
            policies,
            "upstream optics fault: twin cannot reproduce carrier loss",
        );
        for (d, c) in &issue.fix {
            s.exec(d, c).unwrap_or_else(|e| panic!("{d}: {c}: {e}"));
        }
        let (net, audit) = s.deactivate();
        assert!(crate::workflow::probe_ok(&net, &issue));
        assert!(audit.verify_chain().is_ok());
        // Activation, commands, deactivation all present.
        assert!(audit.entries[0].detail.contains("EMERGENCY MODE ACTIVATED"));
        assert!(audit.entries.last().unwrap().detail.contains("DEACTIVATED"));
        assert!(audit
            .entries
            .iter()
            .any(|e| e.detail.contains("emergency-applied")));
    }

    #[test]
    fn privilege_still_enforced_in_emergencies() {
        let (broken, _, policies, spec) = setup();
        let mut s = EmergencySession::activate("mallory", broken, spec, policies, "test");
        // The ISP ticket scopes to bdr1 only.
        let e = s.exec("fw1", "show running-config").unwrap_err();
        assert!(matches!(e, EmergencyError::PermissionDenied { .. }));
        let e = s.exec("bdr1", "write erase").unwrap_err();
        assert!(matches!(e, EmergencyError::PermissionDenied { .. }));
        assert!(s.verify_audit_integrity());
    }

    #[test]
    fn policy_veto_blocks_harmful_commands() {
        let (broken, _, policies, _) = setup();
        // Give the technician broad rights; the *policy* layer must still
        // refuse a command that would break reachability.
        let spec = PrivilegeMsp::allow_everything();
        let before = broken.clone();
        let mut s = EmergencySession::activate("alice", broken, spec, policies, "test");
        let e = s.exec("acc1", "interface Gi0/0 shutdown").unwrap_err();
        match e {
            EmergencyError::PolicyVeto { policies, .. } => {
                assert!(policies.iter().any(|p| p.contains("LAN1")), "{policies:?}");
            }
            other => panic!("expected veto, got {other}"),
        }
        // Production unchanged.
        let (net, audit) = s.deactivate();
        assert_eq!(
            net.device_by_name("acc1").unwrap().config,
            before.device_by_name("acc1").unwrap().config
        );
        assert!(audit.entries.iter().any(|e| e.detail.contains("VETOED")));
    }

    #[test]
    fn read_only_commands_skip_the_shadow_check() {
        let (broken, _, policies, _) = setup();
        let spec = PrivilegeMsp::allow_everything();
        let mut s = EmergencySession::activate("alice", broken, spec, policies, "test");
        let out = s.exec("bdr1", "show ip route").unwrap();
        assert!(out.contains("S"), "{out}");
        let out = s.exec("h1", "ping 10.2.1.10").unwrap();
        assert!(out.contains("success"), "{out}");
    }
}
