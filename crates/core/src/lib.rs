//! # heimdall
//!
//! Least privilege for managed network services — a full reproduction of
//! the HotNets '21 paper "Watching the watchmen" (Liu, Li, Canel, Sekar),
//! built on an in-process network-simulation stack.
//!
//! ## The workflow (Figure 4)
//!
//! ```text
//!  (1) admin/Heimdall derive a Privilege_msp for the ticket
//!  (2) the technician debugs in an isolated, sanitized twin network,
//!      every command mediated by a reference monitor
//!  (3) the resulting change-set is verified against mined network
//!      policies, scheduled for consistent rollout, applied to
//!      production, and audit-chained — inside a (simulated) enclave
//! ```
//!
//! [`workflow::run_heimdall`] drives all three steps;
//! [`workflow::run_current_approach`] is the RMM baseline.
//!
//! ## Quickstart
//!
//! ```
//! use heimdall::nets::enterprise;
//! use heimdall_msp::issues::{inject_issue, IssueKind};
//!
//! // Healthy production + mined policies.
//! let (mut production, meta, policies) = enterprise();
//! // Something breaks.
//! let issue = inject_issue(&mut production, &meta, IssueKind::AclDeny).unwrap();
//! // The full Heimdall workflow resolves it.
//! let run = heimdall::workflow::run_heimdall(&production, &issue, &policies);
//! assert!(run.resolved && run.outcome.applied());
//! // Nothing off-slice was exposed, everything is audited.
//! assert!(run.twin_devices < production.device_count());
//! assert!(run.audit.verify_chain().is_ok());
//! ```
//!
//! ## Experiments
//!
//! Every table and figure of the paper's §5 has a driver in
//! [`experiments`]: [`experiments::table1`], [`experiments::fig7`],
//! [`experiments::fig8`], [`experiments::fig9`]. The `heimdall-bench`
//! crate wraps them in Criterion benches; EXPERIMENTS.md records
//! paper-vs-measured.

pub mod baselines;
pub mod emergency;
pub mod experiments;
pub mod metrics;
pub mod nets;
pub mod translate;
pub mod workflow;

pub use baselines::AccessMode;
pub use metrics::{attack_surface, AttackSurface};
pub use workflow::{run_current_approach, run_heimdall, HeimdallRun};

// Re-export the stack so downstream users need only one dependency.
pub use heimdall_analyze as analyze;
pub use heimdall_dataplane as dataplane;
pub use heimdall_enforcer as enforcer;
pub use heimdall_msp as msp;
pub use heimdall_net as net;
pub use heimdall_netmodel as netmodel;
pub use heimdall_obs as obs;
pub use heimdall_privilege as privilege;
pub use heimdall_routing as routing;
pub use heimdall_service as service;
pub use heimdall_store as store;
pub use heimdall_telemetry as telemetry;
pub use heimdall_twin as twin;
pub use heimdall_verify as verify;
