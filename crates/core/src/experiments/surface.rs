//! Figures 8 and 9: the feasibility / attack-surface trade-off.
//!
//! Procedure, per the paper: "First, we create an issue by bringing down
//! each interface. Then, for each technique, we check whether the
//! technician can access the root cause node (feasibility). Finally, we
//! search all possible commands on accessible nodes, measure potential
//! policy violations, and compute the attack surface."
//!
//! Paper result: Heimdall reduces the attack surface by up to 39% / 40%
//! (enterprise / university) versus the baselines while keeping
//! feasibility close to fully-open privileges.

use crate::baselines::AccessMode;
use crate::metrics::attack_surface;
use crate::nets::{enterprise, university};
use heimdall_netmodel::device::DeviceKind;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::{Task, TaskKind};
use heimdall_routing::converge;
use heimdall_verify::checker::check_policies;
use heimdall_verify::policy::{PolicyEndpoint, PolicySet};
use serde::{Deserialize, Serialize};

/// Aggregate result for one access mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeSummary {
    pub mode: String,
    /// Fraction of issues whose root cause the technician could access.
    pub feasibility_pct: f64,
    /// Mean attack surface across issues.
    pub mean_surface_pct: f64,
    /// Min/max surface across issues.
    pub min_surface_pct: f64,
    pub max_surface_pct: f64,
}

/// The whole figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurfaceSummary {
    pub network: String,
    /// Interface-down issues swept (one per candidate interface).
    pub issues: usize,
    /// Of those, issues whose failure broke a mined policy (symptom
    /// tickets); the rest were absorbed by redundancy and surfaced as
    /// link-down alert tickets instead.
    pub symptom_tickets: usize,
    pub modes: Vec<ModeSummary>,
}

/// Derives ticket endpoints from the first newly violated policy.
fn ticket_endpoints(
    net: &Network,
    policies: &PolicySet,
    violated_id: &str,
) -> Option<(String, String)> {
    let policy = policies.policies.iter().find(|p| p.id() == violated_id)?;
    let pick = |e: &PolicyEndpoint| -> Option<String> {
        match e {
            PolicyEndpoint::Host(h) => Some(h.clone()),
            PolicyEndpoint::Subnet { prefix, .. } => net
                .devices()
                .find(|(_, d)| {
                    d.kind == DeviceKind::Host
                        && d.primary_address()
                            .map(|a| prefix.contains(a))
                            .unwrap_or(false)
                })
                .map(|(_, d)| d.name.clone()),
            PolicyEndpoint::Addr(a) => net.owner_of(*a).map(|i| net.device(i).name.clone()),
        }
    };
    Some((pick(policy.src())?, pick(policy.dst())?))
}

/// Runs the interface-down sweep on one network.
///
/// `stride` samples every n-th candidate interface (1 = the paper's full
/// sweep; larger strides keep the university run fast).
pub fn surface_sweep(
    net: &Network,
    policies: &PolicySet,
    stride: usize,
    network_name: &str,
) -> SurfaceSummary {
    let stride = stride.max(1);
    // Baseline verdicts on the healthy network.
    let healthy_cp = converge(net);
    let healthy = check_policies(net, &healthy_cp, policies);

    // Candidate issues: the infra-side endpoint of every link.
    let mut candidates: Vec<(String, String)> = Vec::new();
    for l in net.links() {
        for (d, iface) in [(l.a, l.a_iface.clone()), (l.b, l.b_iface.clone())] {
            let dev = net.device(d);
            if dev.kind != DeviceKind::Host {
                candidates.push((dev.name.clone(), iface));
            }
        }
    }
    candidates.sort();
    candidates.dedup();

    // Per-mode accumulators.
    let modes = [AccessMode::All, AccessMode::Neighbor, AccessMode::Heimdall];
    let mut feasible = [0usize; 3];
    let mut surfaces: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut issues = 0usize;
    let mut symptom_tickets = 0usize;
    let mut surface_cache: std::collections::HashMap<String, f64> =
        std::collections::HashMap::new();

    // All's privilege spec is task-independent (root everywhere), so its
    // surface is computed once.
    let all_surface = {
        let dummy = Task {
            kind: TaskKind::Connectivity,
            affected: vec![],
        };
        let spec = AccessMode::All.privileges(net, &dummy);
        attack_surface(net, policies, &spec, AccessMode::All.enforced()).percent
    };

    for (dev_name, iface) in candidates.into_iter().step_by(stride) {
        let mut broken = net.clone();
        broken
            .device_by_name_mut(&dev_name)
            .expect("from this net")
            .config
            .interface_mut(&iface)
            .expect("from this net")
            .enabled = false;
        let cp = converge(&broken);
        let rep = check_policies(&broken, &cp, policies);
        // The ticket comes from the first policy this failure broke
        // (symptom ticket). If redundancy absorbed the failure, the NMS
        // still raises a link-down alert naming the two link ends.
        let newly = rep
            .results
            .iter()
            .zip(&healthy.results)
            .find(|((_, after), (_, before))| before.holds() && !after.holds())
            .map(|((id, _), _)| id.clone());
        let affected = match newly
            .as_deref()
            .and_then(|id| ticket_endpoints(&broken, policies, id))
        {
            Some((src, dst)) => {
                symptom_tickets += 1;
                vec![src, dst]
            }
            None => {
                // Alert ticket: the link ends (peer of the downed iface).
                let di = broken.idx(&dev_name).expect("exists");
                let peer = broken
                    .peers_of(di, &iface)
                    .first()
                    .map(|(p, _)| broken.device(*p).name.clone());
                match peer {
                    Some(p) => vec![dev_name.clone(), p],
                    None => vec![dev_name.clone()],
                }
            }
        };
        issues += 1;
        let task = Task {
            kind: TaskKind::Connectivity,
            affected,
        };
        let root = broken.idx(&dev_name).expect("exists");
        for (i, mode) in modes.iter().enumerate() {
            if mode.accessible(&broken, &task).contains(&root) {
                feasible[i] += 1;
            }
            // VP is evaluated on the healthy network (the exposure a mode
            // grants is a property of the access model, not of the current
            // outage); All's task-independent surface is precomputed, and
            // identical specs (parallel strands of the same adjacency give
            // the same ticket) are memoized.
            let pct = if matches!(mode, AccessMode::All) {
                all_surface
            } else {
                let spec = mode.privileges(&broken, &task);
                let key = format!("{}:{spec}", mode.label());
                *surface_cache.entry(key).or_insert_with(|| {
                    attack_surface(net, policies, &spec, mode.enforced()).percent
                })
            };
            surfaces[i].push(pct);
        }
    }

    let mode_rows = modes
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let v = &surfaces[i];
            let mean = if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            };
            ModeSummary {
                mode: m.label().to_string(),
                feasibility_pct: if issues == 0 {
                    0.0
                } else {
                    100.0 * feasible[i] as f64 / issues as f64
                },
                mean_surface_pct: mean,
                min_surface_pct: v.iter().copied().fold(f64::INFINITY, f64::min),
                max_surface_pct: v.iter().copied().fold(0.0, f64::max),
            }
        })
        .collect();

    SurfaceSummary {
        network: network_name.to_string(),
        issues,
        symptom_tickets,
        modes: mode_rows,
    }
}

/// Figure 8: the enterprise network, full sweep.
pub fn fig8() -> SurfaceSummary {
    let (net, _, policies) = enterprise();
    surface_sweep(&net, &policies, 1, "enterprise")
}

/// Figure 9: the university network. `stride` > 1 samples the sweep.
pub fn fig9(stride: usize) -> SurfaceSummary {
    let (net, _, policies) = university();
    surface_sweep(&net, &policies, stride, "university")
}

/// Renders a summary as the figure's table.
pub fn render_surface(s: &SurfaceSummary) -> String {
    let mut out = format!(
        "{} — {} interface-down issues ({} symptom tickets, {} link-down alerts)\n",
        s.network,
        s.issues,
        s.symptom_tickets,
        s.issues - s.symptom_tickets
    );
    out.push_str("mode       feasibility%   attack surface% (mean [min..max])\n");
    for m in &s.modes {
        out.push_str(&format!(
            "{:<10} {:>11.1}   {:>6.1} [{:.1}..{:.1}]\n",
            m.mode, m.feasibility_pct, m.mean_surface_pct, m.min_surface_pct, m.max_surface_pct
        ));
    }
    if let (Some(all), Some(hd)) = (
        s.modes.iter().find(|m| m.mode == "All"),
        s.modes.iter().find(|m| m.mode == "Heimdall"),
    ) {
        out.push_str(&format!(
            "Heimdall reduces mean attack surface by {:.1} points vs All\n",
            all.mean_surface_pct - hd.mean_surface_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "full sweep; run with --release (cargo test --release)"
    )]
    fn enterprise_sweep_shape() {
        let s = fig8();
        assert!(s.issues >= 25, "one issue per infra interface: {s:?}");
        assert!(
            s.symptom_tickets >= 8,
            "access failures are observable: {s:?}"
        );
        let by = |m: &str| s.modes.iter().find(|x| x.mode == m).unwrap().clone();
        let all = by("All");
        let nbr = by("Neighbor");
        let hd = by("Heimdall");

        // All is always feasible; Heimdall close; Neighbor below.
        assert_eq!(all.feasibility_pct, 100.0);
        assert!(hd.feasibility_pct >= 85.0, "{hd:?}");
        assert!(
            nbr.feasibility_pct <= hd.feasibility_pct,
            "{nbr:?} vs {hd:?}"
        );

        // Attack surface: All >> Neighbor > Heimdall.
        assert!(all.mean_surface_pct > 80.0, "{all:?}");
        assert!(
            hd.mean_surface_pct < nbr.mean_surface_pct,
            "{hd:?} vs {nbr:?}"
        );
        assert!(
            all.mean_surface_pct - hd.mean_surface_pct >= 39.0,
            "paper: reduction up to ~39 points; got all={:.1} hd={:.1}",
            all.mean_surface_pct,
            hd.mean_surface_pct
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "full sweep; run with --release (cargo test --release)"
    )]
    fn university_sampled_sweep_shape() {
        let s = fig9(12);
        assert!(s.issues >= 10, "{s:?}");
        let by = |m: &str| s.modes.iter().find(|x| x.mode == m).unwrap().clone();
        let all = by("All");
        let hd = by("Heimdall");
        assert_eq!(all.feasibility_pct, 100.0);
        assert!(hd.feasibility_pct >= 80.0, "{hd:?}");
        assert!(all.mean_surface_pct - hd.mean_surface_pct >= 40.0, "{s:?}");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "full sweep; run with --release (cargo test --release)"
    )]
    fn redundancy_absorbs_most_university_failures() {
        // Parallel port-channel strands: downing one usually breaks no
        // policy, so most tickets are link-down alerts.
        let s = fig9(16);
        assert!(s.symptom_tickets < s.issues / 2, "{s:?}");
    }

    #[test]
    fn render_mentions_reduction() {
        let mk = |mode: &str, surface: f64| ModeSummary {
            mode: mode.to_string(),
            feasibility_pct: 100.0,
            mean_surface_pct: surface,
            min_surface_pct: surface,
            max_surface_pct: surface,
        };
        let s = SurfaceSummary {
            network: "enterprise".to_string(),
            issues: 5,
            symptom_tickets: 3,
            modes: vec![mk("All", 95.0), mk("Neighbor", 40.0), mk("Heimdall", 5.0)],
        };
        let text = render_surface(&s);
        assert!(text.contains("Heimdall reduces mean attack surface by 90.0 points"));
        assert!(text.contains("All"));
        assert!(text.contains("Neighbor"));
        assert!(text.contains("3 symptom tickets, 2 link-down alerts"));
    }
}
