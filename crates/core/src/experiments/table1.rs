//! Table 1: the evaluation networks.
//!
//! Paper values: Enterprise 9 routers / 9 hosts / 22 links / 21 policies /
//! 1394 config lines; University 13 / 17 / 92 / 175 / 2146.

use crate::nets::{enterprise, university};
use heimdall_netmodel::gen::net_stats;
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    pub network: String,
    pub routers: usize,
    pub hosts: usize,
    pub links: usize,
    pub policies: usize,
    pub config_lines: usize,
}

/// Regenerates both rows of Table 1 from the generators and the miner.
pub fn table1() -> Vec<Table1Row> {
    [enterprise(), university()]
        .into_iter()
        .map(|(net, meta, policies)| {
            let s = net_stats(&net);
            Table1Row {
                network: meta.name.clone(),
                routers: s.routers,
                hosts: s.hosts,
                links: s.links,
                policies: policies.len(),
                config_lines: s.config_lines,
            }
        })
        .collect()
}

/// Renders the rows in the paper's column order.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out =
        String::from("Network      #routers  #hosts  #links  #policies  lines of configs\n");
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>8}  {:>6}  {:>6}  {:>9}  {:>16}\n",
            r.network, r.routers, r.hosts, r.links, r.policies, r.config_lines
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_structure_exactly() {
        let rows = table1();
        assert_eq!(rows.len(), 2);
        let e = &rows[0];
        assert_eq!(
            (e.routers, e.hosts, e.links, e.policies),
            (9, 9, 22, 21),
            "enterprise row"
        );
        let u = &rows[1];
        assert_eq!(
            (u.routers, u.hosts, u.links, u.policies),
            (13, 17, 92, 175),
            "university row"
        );
        // Config lines: paper 1394 / 2146; synthetic configs within 5%.
        assert!((e.config_lines as f64 - 1394.0).abs() / 1394.0 < 0.05);
        assert!((u.config_lines as f64 - 2146.0).abs() / 2146.0 < 0.05);
    }

    #[test]
    fn render_has_both_rows() {
        let text = render_table1(&table1());
        assert!(text.contains("enterprise"));
        assert!(text.contains("university"));
        assert!(text.contains("175"));
    }
}
