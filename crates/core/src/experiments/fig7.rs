//! Figure 7: time to solve three real issues (vlan, ospf, isp) on the
//! enterprise network — current approach vs. Heimdall, with the per-step
//! breakdown.
//!
//! Paper result: Heimdall adds 28 s average overhead (15 s for the simple
//! ISP reconfiguration, 42 s for the complex VLAN issue), and "the most
//! time is spent performing operations to resolve the issue".

use crate::nets::enterprise;
use crate::workflow::{run_current_approach, run_heimdall};
use heimdall_msp::issues::{inject_issue, IssueKind};
use heimdall_msp::technician::{TimeBreakdown, TimeModel};
use serde::{Deserialize, Serialize};

/// One issue's timing comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    pub issue: String,
    /// Modeled seconds, current approach (connect / operate / save).
    pub current: TimeBreakdown,
    /// Modeled seconds, Heimdall (plus privilege / twin / verify steps).
    pub heimdall: TimeBreakdown,
    /// Heimdall's extra-step overhead in modeled seconds.
    pub overhead: f64,
    /// Actual simulator wall time (microseconds), current approach.
    pub current_wall_us: u128,
    /// Actual simulator wall time (microseconds), Heimdall.
    pub heimdall_wall_us: u128,
    /// Both approaches must actually fix the issue.
    pub both_resolved: bool,
}

/// Runs the Figure 7 pilot study: three issues, both approaches.
pub fn fig7() -> Vec<Fig7Row> {
    fig7_on(
        enterprise,
        &[IssueKind::Vlan, IssueKind::Ospf, IssueKind::Isp],
    )
}

/// The university counterpart. The paper: "we omit the university results
/// due to their similarity" — this driver exists so that similarity is a
/// checkable claim rather than an assertion (no VLAN issue exists there;
/// the ACL issue stands in as the third problem).
pub fn fig7_university() -> Vec<Fig7Row> {
    fig7_on(
        crate::nets::university,
        &[IssueKind::AclDeny, IssueKind::Ospf, IssueKind::Isp],
    )
}

type NetFn = fn() -> (
    heimdall_netmodel::topology::Network,
    heimdall_netmodel::gen::GenMeta,
    heimdall_verify::policy::PolicySet,
);

fn fig7_on(nets: NetFn, kinds: &[IssueKind]) -> Vec<Fig7Row> {
    let model = TimeModel::default();
    kinds
        .iter()
        .copied()
        .map(|kind| {
            let (net, meta, policies) = nets();
            let mut broken = net;
            let issue = inject_issue(&mut broken, &meta, kind).expect("issue exists");

            let current_run = run_current_approach(&broken, &issue);
            let heimdall_run = run_heimdall(&broken, &issue, &policies);

            let current = model.current_approach(current_run.commands);
            let heimdall = model.heimdall(
                heimdall_run.commands,
                heimdall_run.predicates,
                heimdall_run.twin_devices,
                heimdall_run.twin_l2_devices,
                policies.len(),
                heimdall_run.changes,
            );
            Fig7Row {
                issue: kind.label().to_string(),
                overhead: heimdall.overhead(),
                current,
                heimdall,
                current_wall_us: current_run.wall.as_micros(),
                heimdall_wall_us: heimdall_run.wall.as_micros(),
                both_resolved: current_run.resolved && heimdall_run.resolved,
            }
        })
        .collect()
}

/// Renders the figure as a per-step table.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::from(
        "issue  approach  connect  privilege  twin  operate  verify  save  total  overhead\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<6} current   {:>7.1} {:>10.1} {:>5.1} {:>8.1} {:>7.1} {:>5.1} {:>6.1} {:>9.1}\n",
            r.issue,
            r.current.connect,
            r.current.generate_privilege,
            r.current.setup_twin,
            r.current.perform_operations,
            r.current.verify_schedule,
            r.current.save,
            r.current.total(),
            0.0,
        ));
        out.push_str(&format!(
            "{:<6} heimdall  {:>7.1} {:>10.1} {:>5.1} {:>8.1} {:>7.1} {:>5.1} {:>6.1} {:>9.1}\n",
            r.issue,
            r.heimdall.connect,
            r.heimdall.generate_privilege,
            r.heimdall.setup_twin,
            r.heimdall.perform_operations,
            r.heimdall.verify_schedule,
            r.heimdall.save,
            r.heimdall.total(),
            r.overhead,
        ));
    }
    let avg: f64 = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len().max(1) as f64;
    out.push_str(&format!(
        "average Heimdall overhead: {avg:.1} s (modeled)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let rows = fig7();
        assert_eq!(rows.len(), 3);
        assert!(
            rows.iter().all(|r| r.both_resolved),
            "all issues fixed both ways"
        );

        let by = |label: &str| rows.iter().find(|r| r.issue == label).unwrap();
        let vlan = by("vlan");
        let ospf = by("ospf");
        let isp = by("isp");

        // Simple (isp) < middle (ospf) < complex (vlan) overhead ordering.
        assert!(
            isp.overhead < ospf.overhead,
            "isp {} ospf {}",
            isp.overhead,
            ospf.overhead
        );
        assert!(
            ospf.overhead < vlan.overhead,
            "ospf {} vlan {}",
            ospf.overhead,
            vlan.overhead
        );

        // Overhead magnitudes in the paper's regime (seconds, 10-50).
        assert!(isp.overhead > 5.0 && vlan.overhead < 60.0);

        // "The most time is spent performing operations."
        for r in &rows {
            assert!(
                r.heimdall.perform_operations >= r.heimdall.verify_schedule,
                "{}: ops {} vs verify {}",
                r.issue,
                r.heimdall.perform_operations,
                r.heimdall.verify_schedule
            );
        }

        // The measured simulator runs in milliseconds — the modeled human
        // timescale dominates any real deployment.
        for r in &rows {
            assert!(r.heimdall_wall_us < 5_000_000, "{}", r.heimdall_wall_us);
        }
    }

    #[test]
    fn university_results_are_similar_as_the_paper_claims() {
        // "We omit the university results due to their similarity."
        let uni = fig7_university();
        assert_eq!(uni.len(), 3);
        assert!(uni.iter().all(|r| r.both_resolved));
        let ent_avg: f64 = fig7().iter().map(|r| r.overhead).sum::<f64>() / 3.0;
        let uni_avg: f64 = uni.iter().map(|r| r.overhead).sum::<f64>() / 3.0;
        // Same regime: within a factor of two of each other.
        let ratio = uni_avg / ent_avg;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "ent {ent_avg:.1}s vs uni {uni_avg:.1}s (ratio {ratio:.2})"
        );
        // Operations dominate there too.
        for r in &uni {
            assert!(r.heimdall.perform_operations >= r.heimdall.verify_schedule);
        }
    }

    #[test]
    fn overhead_ordering_is_robust_to_calibration() {
        // Figure 7's shape (isp < ospf < vlan) must come from the issues'
        // structure (slice size, L2 content, change count), not from the
        // particular calibration constants. Scale every constant by 0.5x
        // and 2x and re-derive the breakdowns from the same runs.
        use crate::workflow::run_heimdall;
        use heimdall_msp::issues::{inject_issue, IssueKind};

        let runs: Vec<_> = [IssueKind::Isp, IssueKind::Ospf, IssueKind::Vlan]
            .into_iter()
            .map(|kind| {
                let (net, meta, policies) = enterprise();
                let mut broken = net;
                let issue = inject_issue(&mut broken, &meta, kind).expect("issue");
                (run_heimdall(&broken, &issue, &policies), policies.len())
            })
            .collect();

        for scale in [0.5, 1.0, 2.0] {
            let m = TimeModel {
                connect: 5.0 * scale,
                per_command: 6.0 * scale,
                save: 3.0 * scale,
                privilege_base: 1.0 * scale,
                privilege_per_predicate: 0.1 * scale,
                twin_base: 2.0 * scale,
                twin_per_device: 3.0 * scale,
                twin_per_l2_device: 8.0 * scale,
                verify_base: 2.0 * scale,
                verify_per_policy: 0.05 * scale,
                verify_per_change: 1.0 * scale,
            };
            let overheads: Vec<f64> = runs
                .iter()
                .map(|(r, policies)| {
                    m.heimdall(
                        r.commands,
                        r.predicates,
                        r.twin_devices,
                        r.twin_l2_devices,
                        *policies,
                        r.changes,
                    )
                    .overhead()
                })
                .collect();
            assert!(
                overheads[0] < overheads[1] && overheads[1] < overheads[2],
                "scale {scale}: {overheads:?}"
            );
        }
    }

    #[test]
    fn render_includes_all_issues() {
        let text = render_fig7(&fig7());
        for label in ["vlan", "ospf", "isp", "average Heimdall overhead"] {
            assert!(text.contains(label), "{label} missing:\n{text}");
        }
    }
}
