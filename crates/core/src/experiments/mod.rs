//! Drivers for every table and figure in the paper's §5.
//!
//! | Paper artifact | Driver | Bench target |
//! |---|---|---|
//! | Table 1 (networks) | [`table1`] | `table1` |
//! | Figure 7 (time to solve) | [`fig7`] | `fig7` |
//! | Figure 8 (enterprise trade-off) | [`fig8`] | `fig8` |
//! | Figure 9 (university trade-off) | [`fig9`] | `fig9` |
//!
//! Each driver returns structured rows *and* offers a `render_*` function
//! producing the table the paper prints; EXPERIMENTS.md snapshots the
//! rendered output next to the paper's numbers.

mod fig7;
mod surface;
mod table1;

pub use fig7::{fig7, fig7_university, render_fig7, Fig7Row};
pub use surface::{fig8, fig9, render_surface, surface_sweep, ModeSummary, SurfaceSummary};
pub use table1::{render_table1, table1, Table1Row};
