//! The attack-surface metric of §5:
//!
//! ```text
//! Attack_Surface(%) = ( ΣC_n / ΣA_n · 0.5  +  VP / P · 0.5 ) · 100
//! ```
//!
//! where `C_n`/`A_n` are allowed/available commands on node `n`, `VP` the
//! number of potentially violated policies, and `P` the number of provided
//! policies.
//!
//! *Available commands* per node are the twelve [`Action`]s. *Potential
//! policy violations* follow the paper's procedure ("we search all possible
//! commands on accessible nodes, measure potential policy violations"):
//! for every allowed mutating action on every accessible node we enumerate
//! its concrete destructive instantiations (shut each interface, strip each
//! address, poison each ACL both ways, drop each static route, kill each
//! routing process, move each access port), apply each candidate alone to a
//! copy of the network, re-converge, and count the policies that flip from
//! holding to violated. `VP` is the size of the union. Under Heimdall the
//! enforcer rejects any change-set that newly violates a policy, so no
//! candidate can reach production and `VP = 0` by construction.

use heimdall_netmodel::acl::AclEntry;
use heimdall_netmodel::diff::ConfigChange;
use heimdall_netmodel::topology::{DeviceIdx, Network};
use heimdall_netmodel::vlan::SwitchPortMode;
use heimdall_privilege::eval::{allowed_action_count, is_allowed};
use heimdall_privilege::model::{Action, PrivilegeMsp, Resource};
use heimdall_routing::converge;
use heimdall_verify::checker::check_policies;
use heimdall_verify::policy::PolicySet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A computed attack surface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackSurface {
    /// ΣC_n over all nodes.
    pub allowed_commands: usize,
    /// ΣA_n over all nodes.
    pub available_commands: usize,
    /// VP: policies breakable by some allowed command.
    pub violable_policies: usize,
    /// P: provided policies.
    pub total_policies: usize,
    /// The weighted percentage.
    pub percent: f64,
}

impl AttackSurface {
    fn compute(allowed: usize, available: usize, vp: usize, p: usize) -> AttackSurface {
        let cmd_ratio = if available == 0 {
            0.0
        } else {
            allowed as f64 / available as f64
        };
        let vp_ratio = if p == 0 { 0.0 } else { vp as f64 / p as f64 };
        AttackSurface {
            allowed_commands: allowed,
            available_commands: available,
            violable_policies: vp,
            total_policies: p,
            percent: (cmd_ratio * 0.5 + vp_ratio * 0.5) * 100.0,
        }
    }
}

/// Computes the attack surface of a privilege specification over a network.
///
/// `enforced` = changes must pass Heimdall's policy verifier before
/// reaching production (true only for the Heimdall mode).
pub fn attack_surface(
    net: &Network,
    policies: &PolicySet,
    spec: &PrivilegeMsp,
    enforced: bool,
) -> AttackSurface {
    let available = net.device_count() * Action::ALL.len();
    let allowed: usize = net
        .devices()
        .map(|(_, d)| allowed_action_count(spec, &d.name))
        .sum();
    let vp = if enforced {
        0
    } else {
        violable_policies(net, policies, spec).len()
    };
    AttackSurface::compute(allowed, available, vp, policies.len())
}

/// The set of policy ids that at least one allowed destructive command can
/// flip from holding to violated.
pub fn violable_policies(
    net: &Network,
    policies: &PolicySet,
    spec: &PrivilegeMsp,
) -> BTreeSet<String> {
    let base_cp = converge(net);
    let base = check_policies(net, &base_cp, policies);
    let holding: BTreeSet<String> = base
        .results
        .iter()
        .filter(|(_, v)| v.holds())
        .map(|(id, _)| id.clone())
        .collect();
    let mut violable: BTreeSet<String> = BTreeSet::new();

    for (di, dev) in net.devices() {
        if violable.len() == holding.len() {
            break; // everything breakable already
        }
        for change in candidate_changes(net, di, spec) {
            let mut patched = net.clone();
            let d = patched.device_by_name_mut(&dev.name).expect("same network");
            if change.apply(&mut d.config).is_err() {
                continue;
            }
            let cp = converge(&patched);
            let rep = check_policies(&patched, &cp, policies);
            for (id, v) in &rep.results {
                if !v.holds() && holding.contains(id) {
                    violable.insert(id.clone());
                }
            }
            if violable.len() == holding.len() {
                break;
            }
        }
    }
    violable
}

/// Concrete destructive instantiations of the actions `spec` allows on one
/// device.
fn candidate_changes(net: &Network, di: DeviceIdx, spec: &PrivilegeMsp) -> Vec<ConfigChange> {
    let dev = net.device(di);
    let name = dev.name.clone();
    let allowed = |a: Action| is_allowed(spec, a, &Resource::Device(name.clone()));
    let allowed_acl = |acl: &str| {
        is_allowed(
            spec,
            Action::ModifyAcl,
            &Resource::Acl {
                device: name.clone(),
                name: acl.to_string(),
            },
        )
    };
    let allowed_iface = |a: Action, iface: &str| {
        is_allowed(
            spec,
            a,
            &Resource::Interface {
                device: name.clone(),
                iface: iface.to_string(),
            },
        )
    };

    let mut out = Vec::new();
    for iface in &dev.config.interfaces {
        if iface.is_up() && allowed_iface(Action::ModifyInterfaceState, &iface.name) {
            out.push(ConfigChange::SetInterfaceEnabled {
                device: name.clone(),
                iface: iface.name.clone(),
                enabled: false,
            });
        }
        if iface.address.is_some() && allowed_iface(Action::ModifyIpAddress, &iface.name) {
            out.push(ConfigChange::SetInterfaceAddress {
                device: name.clone(),
                iface: iface.name.clone(),
                address: None,
            });
        }
        if let Some(SwitchPortMode::Access { .. }) = iface.switchport {
            if allowed_iface(Action::ModifyVlan, &iface.name) {
                out.push(ConfigChange::SetSwitchport {
                    device: name.clone(),
                    iface: iface.name.clone(),
                    mode: Some(SwitchPortMode::Access { vlan: 4094 }),
                });
            }
        }
    }
    for (acl_name, acl) in &dev.config.acls {
        if allowed_acl(acl_name) {
            // Poison both ways: block everything / open everything.
            let mut deny_first = acl.entries.clone();
            deny_first.insert(0, AclEntry::deny_any());
            out.push(ConfigChange::ReplaceAcl {
                device: name.clone(),
                name: acl_name.clone(),
                entries: deny_first,
            });
            let mut permit_first = acl.entries.clone();
            permit_first.insert(0, AclEntry::permit_any());
            out.push(ConfigChange::ReplaceAcl {
                device: name.clone(),
                name: acl_name.clone(),
                entries: permit_first,
            });
        }
    }
    if allowed(Action::ModifyRoute) {
        for r in &dev.config.static_routes {
            out.push(ConfigChange::RemoveStaticRoute {
                device: name.clone(),
                route: *r,
            });
        }
    }
    if dev.config.ospf.is_some() && allowed(Action::ModifyOspf) {
        out.push(ConfigChange::SetOspf {
            device: name.clone(),
            ospf: None,
        });
    }
    if dev.config.bgp.is_some() && allowed(Action::ModifyBgp) {
        out.push(ConfigChange::SetBgp {
            device: name.clone(),
            bgp: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::AccessMode;
    use crate::nets::enterprise;
    use heimdall_privilege::derive::Task;

    #[test]
    fn full_access_has_full_command_surface() {
        let (net, _, policies) = enterprise();
        let spec = PrivilegeMsp::allow_everything();
        let s = attack_surface(&net, &policies, &spec, false);
        assert_eq!(s.allowed_commands, s.available_commands);
        // Root everywhere can break essentially everything that holds.
        assert!(s.violable_policies > 15, "{s:?}");
        assert!(s.percent > 80.0, "{s:?}");
    }

    #[test]
    fn empty_spec_has_zero_surface() {
        let (net, _, policies) = enterprise();
        let s = attack_surface(&net, &policies, &PrivilegeMsp::new(), false);
        assert_eq!(s.allowed_commands, 0);
        assert_eq!(s.violable_policies, 0);
        assert_eq!(s.percent, 0.0);
    }

    #[test]
    fn heimdall_surface_far_below_all() {
        let (net, _, policies) = enterprise();
        let task = Task::connectivity("h4", "srv1");
        let all = attack_surface(
            &net,
            &policies,
            &AccessMode::All.privileges(&net, &task),
            false,
        );
        let hd = attack_surface(
            &net,
            &policies,
            &AccessMode::Heimdall.privileges(&net, &task),
            true,
        );
        assert!(hd.percent < all.percent - 30.0, "all={all:?} hd={hd:?}");
        assert_eq!(hd.violable_policies, 0, "enforcer guards imports");
    }

    #[test]
    fn neighbor_surface_between_zero_and_all() {
        let (net, _, policies) = enterprise();
        let task = Task::connectivity("h4", "srv1");
        let nbr = attack_surface(
            &net,
            &policies,
            &AccessMode::Neighbor.privileges(&net, &task),
            false,
        );
        let all = attack_surface(
            &net,
            &policies,
            &AccessMode::All.privileges(&net, &task),
            false,
        );
        assert!(nbr.percent > 0.0);
        assert!(nbr.percent < all.percent);
    }

    #[test]
    fn violable_detects_shutdown_breakage() {
        // Allow only ifstate on acc1: shutting its uplink must flip the
        // LAN1->DMZ reachability policy.
        let (net, _, policies) = enterprise();
        let spec = PrivilegeMsp::new().with(heimdall_privilege::model::Predicate::allow(
            Action::ModifyInterfaceState,
            heimdall_privilege::model::ResourcePattern::Device("acc1".into()),
        ));
        let v = violable_policies(&net, &policies, &spec);
        assert!(
            v.iter().any(|id| id.contains("LAN1") && id.contains("DMZ")),
            "{v:?}"
        );
    }

    #[test]
    fn candidates_respect_privileges() {
        let (net, _, _) = enterprise();
        let di = net.idx_of("fw1");
        let none = candidate_changes(&net, di, &PrivilegeMsp::new());
        assert!(none.is_empty());
        let all = candidate_changes(&net, di, &PrivilegeMsp::allow_everything());
        assert!(all.len() > 5);
        // acl-only spec yields only acl candidates.
        let acl_only = PrivilegeMsp::new().with(heimdall_privilege::model::Predicate::allow(
            Action::ModifyAcl,
            heimdall_privilege::model::ResourcePattern::Device("fw1".into()),
        ));
        let cands = candidate_changes(&net, di, &acl_only);
        assert!(!cands.is_empty());
        assert!(cands
            .iter()
            .all(|c| matches!(c, ConfigChange::ReplaceAcl { .. })));
    }
}
