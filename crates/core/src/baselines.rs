//! The three access models compared in Figures 8 and 9.
//!
//! - **All** — "gives the technician access to all nodes" (Figure 5(b)):
//!   every device, every action;
//! - **Neighbor** — "access to affected nodes and their neighbors only"
//!   (Figure 5(c)): full root, but only on that small set;
//! - **Heimdall** — the task-driven slice with derived least privileges.

use heimdall_netmodel::topology::{DeviceIdx, Network};
use heimdall_privilege::derive::{derive_privileges, relevant_devices, Task};
use heimdall_privilege::model::{Predicate, PrivilegeMsp, ResourcePattern};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which approach mediates the technician.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    All,
    Neighbor,
    Heimdall,
}

impl AccessMode {
    /// Display label (figure legend).
    pub fn label(&self) -> &'static str {
        match self {
            AccessMode::All => "All",
            AccessMode::Neighbor => "Neighbor",
            AccessMode::Heimdall => "Heimdall",
        }
    }

    /// The devices this mode exposes for a given task.
    pub fn accessible(&self, net: &Network, task: &Task) -> BTreeSet<DeviceIdx> {
        match self {
            AccessMode::All => net.devices().map(|(i, _)| i).collect(),
            AccessMode::Neighbor => {
                let mut set = BTreeSet::new();
                for name in &task.affected {
                    if let Ok(i) = net.idx(name) {
                        set.insert(i);
                        set.extend(net.neighbors_any_state(i));
                    }
                }
                set
            }
            AccessMode::Heimdall => relevant_devices(net, task),
        }
    }

    /// The privilege specification this mode grants for a task.
    ///
    /// *All* and *Neighbor* grant every action on their accessible set
    /// (that is what "access" means under the current model); *Heimdall*
    /// derives least privileges.
    pub fn privileges(&self, net: &Network, task: &Task) -> PrivilegeMsp {
        match self {
            AccessMode::Heimdall => derive_privileges(net, task),
            _ => {
                let mut spec = PrivilegeMsp::new();
                for &d in &self.accessible(net, task) {
                    spec.predicates
                        .push(Predicate::allow_all(ResourcePattern::Device(
                            net.device(d).name.clone(),
                        )));
                }
                spec
            }
        }
    }

    /// Whether Heimdall's enforcer guards imports under this mode.
    /// (Only Heimdall verifies changes; the baselines write straight to
    /// production.)
    pub fn enforced(&self) -> bool {
        matches!(self, AccessMode::Heimdall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::Task;

    #[test]
    fn all_exposes_everything() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        assert_eq!(
            AccessMode::All.accessible(&g.net, &task).len(),
            g.net.device_count()
        );
    }

    #[test]
    fn neighbor_exposes_endpoints_plus_adjacent() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let set = AccessMode::Neighbor.accessible(&g.net, &task);
        let names: Vec<&str> = set.iter().map(|&i| g.net.device(i).name.as_str()).collect();
        assert!(names.contains(&"h1"));
        assert!(names.contains(&"acc1")); // h1's gateway
        assert!(names.contains(&"fw1")); // srv1's gateway
        assert!(!names.contains(&"core1")); // mid-path: invisible
        assert!(!names.contains(&"dist1"));
    }

    #[test]
    fn heimdall_between_the_extremes() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let all = AccessMode::All.accessible(&g.net, &task).len();
        let nbr = AccessMode::Neighbor.accessible(&g.net, &task).len();
        let hd = AccessMode::Heimdall.accessible(&g.net, &task).len();
        assert!(nbr < hd && hd < all, "nbr={nbr} hd={hd} all={all}");
    }

    #[test]
    fn baseline_privileges_are_root_heimdalls_are_not() {
        use heimdall_privilege::eval::allowed_action_count;
        use heimdall_privilege::model::Action;
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let all = AccessMode::All.privileges(&g.net, &task);
        assert_eq!(allowed_action_count(&all, "core1"), Action::ALL.len());
        let hd = AccessMode::Heimdall.privileges(&g.net, &task);
        assert!(allowed_action_count(&hd, "core1") < Action::ALL.len());
        assert_eq!(allowed_action_count(&hd, "acc3"), 0);
    }
}
