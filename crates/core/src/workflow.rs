//! The end-to-end Heimdall workflow (Figure 4) and the current-approach
//! baseline it is compared against.

use heimdall_enforcer::audit::AuditLog;
use heimdall_enforcer::enclave::Platform;
use heimdall_enforcer::pipeline::{EnforcerOutcome, EnforcerPipeline};
use heimdall_msp::issues::Issue;
use heimdall_msp::rmm::RmmSession;
use heimdall_msp::technician::ScriptedTechnician;
use heimdall_netmodel::l2::svi_vlan;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::derive_privileges;
use heimdall_routing::converge;
use heimdall_twin::session::TwinSession;
use heimdall_twin::slice::slice_for_task;
use heimdall_verify::policy::PolicySet;
use std::time::Instant;

/// The result of one Heimdall engagement.
#[derive(Debug)]
pub struct HeimdallRun {
    /// Whether the issue's probe works in the updated production network.
    pub resolved: bool,
    /// The enforcer's outcome (verdict, schedule, updated production).
    pub outcome: EnforcerOutcome,
    /// The tamper-evident audit log of the engagement.
    pub audit: AuditLog,
    /// Sizing facts the Figure 7 time model consumes.
    pub predicates: usize,
    pub twin_devices: usize,
    pub twin_l2_devices: usize,
    pub changes: usize,
    pub commands: usize,
    /// Commands the reference monitor denied.
    pub denials: usize,
    /// Actual wall-clock of the whole engagement (simulator time).
    pub wall: std::time::Duration,
}

/// Runs the full three-step Heimdall workflow for an issue on (broken)
/// production, replaying the issue's prepared fix commands.
pub fn run_heimdall(production: &Network, issue: &Issue, policies: &PolicySet) -> HeimdallRun {
    let start = Instant::now();
    let task = heimdall_privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };

    // Step 1: derive the Privilege_msp.
    let spec = derive_privileges(production, &task);
    let predicates = spec.len();

    // Step 2: task-driven twin + mediated session.
    let twin = slice_for_task(production, &task);
    let twin_devices = twin.net.device_count();
    let twin_l2_devices = twin
        .net
        .devices()
        .filter(|(_, d)| {
            d.config
                .interfaces
                .iter()
                .any(|i| i.switchport.is_some() || svi_vlan(&i.name).is_some())
        })
        .count();
    let mut session = TwinSession::open("technician", twin, spec.clone());
    let tech = ScriptedTechnician::new("technician", issue.fix.clone());
    let results = tech.run_twin(&mut session);
    let denials = results.iter().filter(|r| r.is_err()).count();
    let commands = session.commands_run();
    let (diff, _monitor) = session.finish();
    let changes = diff.len();

    // Step 3: verify, schedule, apply, audit — inside the enclave.
    let platform = Platform::new("heimdall-host");
    let mut pipeline = EnforcerPipeline::launch(&platform);
    let outcome = pipeline.process("technician", production, &diff, policies, &spec);
    let audit = pipeline.audit().clone();

    // Did the fix actually land and resolve the symptom?
    let resolved = match &outcome.updated_production {
        Some(updated) => probe_ok(updated, issue),
        None => false,
    };

    HeimdallRun {
        resolved,
        outcome,
        audit,
        predicates,
        twin_devices,
        twin_l2_devices,
        changes,
        commands,
        denials,
        wall: start.elapsed(),
    }
}

/// The current approach: direct RMM root on production.
#[derive(Debug)]
pub struct CurrentRun {
    pub resolved: bool,
    pub production: Network,
    pub commands: usize,
    pub wall: std::time::Duration,
}

/// Replays the prepared fix over an RMM session (no mediation, no
/// verification — changes land live).
pub fn run_current_approach(production: &Network, issue: &Issue) -> CurrentRun {
    let start = Instant::now();
    let mut session = RmmSession::login(production.clone());
    let tech = ScriptedTechnician::new("technician", issue.fix.clone());
    let outputs = tech.run_rmm(&mut session);
    let production = session.logout();
    let resolved = probe_ok(&production, issue);
    CurrentRun {
        resolved,
        production,
        commands: outputs.len(),
        wall: start.elapsed(),
    }
}

/// Whether the issue's probe succeeds on a network.
pub fn probe_ok(net: &Network, issue: &Issue) -> bool {
    let Ok(src) = net.idx(&issue.probe.0) else {
        return false;
    };
    let Some(src_ip) = net
        .device_by_name(&issue.probe.0)
        .and_then(|d| d.primary_address())
    else {
        return false;
    };
    let cp = converge(net);
    let dp = heimdall_dataplane::DataPlane::new(net, &cp);
    dp.reachable(src, &heimdall_dataplane::Flow::icmp(src_ip, issue.probe.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::enterprise;
    use heimdall_msp::issues::{inject_issue, IssueKind};

    fn broken(kind: IssueKind) -> (Network, Issue, PolicySet) {
        let (net, meta, policies) = enterprise();
        let mut broken = net;
        let issue = inject_issue(&mut broken, &meta, kind).expect("issue exists");
        (broken, issue, policies)
    }

    #[test]
    fn heimdall_resolves_every_enterprise_issue() {
        for kind in [
            IssueKind::Vlan,
            IssueKind::Ospf,
            IssueKind::Isp,
            IssueKind::AclDeny,
        ] {
            let (net, issue, policies) = broken(kind);
            assert!(!probe_ok(&net, &issue), "{kind:?} starts broken");
            let run = run_heimdall(&net, &issue, &policies);
            assert!(run.resolved, "{kind:?}: {:?}", run.outcome.report);
            assert!(run.outcome.applied());
            assert_eq!(run.denials, 0, "{kind:?}: prepared list is in-privilege");
            assert!(run.audit.verify_chain().is_ok());
            assert!(run.twin_devices < 18, "{kind:?} sliced");
            assert!(run.changes >= 1);
        }
    }

    #[test]
    fn current_approach_resolves_too() {
        for kind in [
            IssueKind::Vlan,
            IssueKind::Ospf,
            IssueKind::Isp,
            IssueKind::AclDeny,
        ] {
            let (net, issue, _) = broken(kind);
            let run = run_current_approach(&net, &issue);
            assert!(run.resolved, "{kind:?}");
        }
    }

    #[test]
    fn twin_sizes_vary_by_issue() {
        let (net_isp, isp, p) = broken(IssueKind::Isp);
        let (net_vlan, vlan, _) = broken(IssueKind::Vlan);
        let run_isp = run_heimdall(&net_isp, &isp, &p);
        let run_vlan = run_heimdall(&net_vlan, &vlan, &p);
        assert!(
            run_isp.twin_devices < run_vlan.twin_devices,
            "isp {} vs vlan {}",
            run_isp.twin_devices,
            run_vlan.twin_devices
        );
        assert_eq!(run_vlan.twin_l2_devices, 1, "acc3 is the L2 node");
        assert_eq!(run_isp.twin_l2_devices, 0);
    }

    #[test]
    fn heimdall_rollout_schedules_changes() {
        let (net, issue, policies) = broken(IssueKind::Isp);
        let run = run_heimdall(&net, &issue, &policies);
        let plan = run.outcome.schedule.expect("accepted => scheduled");
        assert_eq!(plan.steps.len(), run.changes);
    }
}
