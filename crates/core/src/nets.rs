//! The evaluation networks with their mined policies, ready to use.

use heimdall_netmodel::gen::{enterprise_network, university_network, GenMeta};
use heimdall_netmodel::topology::Network;
use heimdall_routing::converge;
use heimdall_verify::mine::{mine_policies, MinerInput};
use heimdall_verify::policy::PolicySet;

/// The enterprise evaluation network (Table 1 row 1) with its mined
/// policy set.
pub fn enterprise() -> (Network, GenMeta, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, g.meta, policies)
}

/// The university evaluation network (Table 1 row 2) with its mined
/// policy set.
pub fn university() -> (Network, GenMeta, PolicySet) {
    let g = university_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, g.meta, policies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_counts_match_table1() {
        assert_eq!(enterprise().2.len(), 21);
        assert_eq!(university().2.len(), 175);
    }
}
