//! Translating network policies into the privilege DSL.
//!
//! §4.1: "We extend Batfish to take privileges for different network
//! resources as inputs as well as provide a framework for translating
//! network policies into our DSL. Thus, the admin can specify both
//! privileges and network policies using the same interface."
//!
//! The translation derives *guardrail* predicates from the mined policy
//! set: per-device denies that no ticket-scoped grant should ever
//! override. Two families:
//!
//! - **standing guardrails**: credential changes, destructive wipes, and
//!   reboots are denied per device, network-wide (MSP contracts reserve
//!   those for the customer's own staff);
//! - **policy-derived guardrails**: every device that appears as the
//!   *destination* of an isolation policy (sensitive hosts, locked lab
//!   machines, the database server) gets `deny(*, host)` — so even a
//!   technician holding a broad admin-written spec cannot touch the
//!   assets the network's own specification marks as protected.
//!
//! Guardrails are *appended* to a specification ([`harden`]); because they
//! are device-specific they out-rank broad allows at evaluation time, and
//! because deny wins ties they out-rank equally-specific allows.

use heimdall_netmodel::device::DeviceKind;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::model::{Action, Predicate, PrivilegeMsp, ResourcePattern};
use heimdall_verify::policy::{Policy, PolicyEndpoint, PolicySet};
use std::collections::BTreeSet;

/// Actions an MSP technician may never perform, per standing contract.
pub const RESERVED_ACTIONS: [Action; 3] =
    [Action::ModifyCredentials, Action::Erase, Action::Reboot];

/// Per-device denies of the reserved actions, across the whole network.
pub fn standing_guardrails(net: &Network) -> Vec<Predicate> {
    let mut out = Vec::new();
    for (_, d) in net.devices() {
        for a in RESERVED_ACTIONS {
            out.push(Predicate::deny(a, ResourcePattern::Device(d.name.clone())));
        }
    }
    out
}

/// Devices that isolation policies designate as protected destinations.
pub fn protected_hosts(net: &Network, policies: &PolicySet) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for p in &policies.policies {
        let Policy::Isolation { dst, .. } = p else {
            continue;
        };
        match dst {
            PolicyEndpoint::Host(h) => {
                out.insert(h.clone());
            }
            PolicyEndpoint::Subnet { prefix, .. } => {
                for (_, d) in net.devices() {
                    if d.kind == DeviceKind::Host
                        && d.primary_address()
                            .map(|a| prefix.contains(a))
                            .unwrap_or(false)
                    {
                        out.insert(d.name.clone());
                    }
                }
            }
            PolicyEndpoint::Addr(a) => {
                if let Some(i) = net.owner_of(*a) {
                    out.insert(net.device(i).name.clone());
                }
            }
        }
    }
    out
}

/// Per-action denies for every protected host, except those the current
/// ticket is explicitly about (a ticket *about* a protected asset still
/// needs view/ping on it; the admin saw the ticket).
///
/// One deny per concrete action (not `deny(*, host)`): a concrete-action
/// predicate out-ranks a wildcard at equal resource specificity, so this
/// is the only shape that reliably dominates action-specific allows.
pub fn policy_guardrails(net: &Network, policies: &PolicySet, exempt: &[String]) -> Vec<Predicate> {
    let mut out = Vec::new();
    for h in protected_hosts(net, policies) {
        if exempt.contains(&h) {
            continue;
        }
        for a in Action::ALL {
            out.push(Predicate::deny(a, ResourcePattern::Device(h.clone())));
        }
    }
    out
}

/// Appends both guardrail families to a specification.
pub fn harden(
    mut spec: PrivilegeMsp,
    net: &Network,
    policies: &PolicySet,
    exempt: &[String],
) -> PrivilegeMsp {
    spec.predicates.extend(standing_guardrails(net));
    spec.predicates
        .extend(policy_guardrails(net, policies, exempt));
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::{enterprise, university};
    use heimdall_privilege::eval::is_allowed;
    use heimdall_privilege::model::Resource;

    #[test]
    fn standing_guardrails_beat_broad_allows() {
        let (net, _, policies) = enterprise();
        // An admin hands out a sloppy "everything on fw1" spec...
        let spec = PrivilegeMsp::new().with(Predicate::allow_all(ResourcePattern::Device(
            "fw1".to_string(),
        )));
        assert!(is_allowed(
            &spec,
            Action::ModifyCredentials,
            &Resource::Device("fw1".into())
        ));
        // ...hardening closes the reserved actions without touching the rest.
        let hardened = harden(spec, &net, &policies, &[]);
        let fw1 = Resource::Device("fw1".to_string());
        assert!(!is_allowed(&hardened, Action::ModifyCredentials, &fw1));
        assert!(!is_allowed(&hardened, Action::Erase, &fw1));
        assert!(!is_allowed(&hardened, Action::Reboot, &fw1));
        assert!(is_allowed(&hardened, Action::ModifyAcl, &fw1));
        assert!(is_allowed(&hardened, Action::View, &fw1));
    }

    #[test]
    fn isolation_destinations_become_protected() {
        let (net, _, policies) = enterprise();
        let protected = protected_hosts(&net, &policies);
        // LAN-lockdown isolation policies cover every client host; the
        // sensitive host h7 is among them.
        assert!(protected.contains("h7"), "{protected:?}");
        // The DMZ server is a *reachability* destination, never isolation.
        assert!(!protected.contains("srv1"), "{protected:?}");
    }

    #[test]
    fn university_protects_the_locked_hosts() {
        let (net, _, policies) = university();
        let protected = protected_hosts(&net, &policies);
        for h in ["db", "cs-h3", "ee-h2", "li-h2"] {
            assert!(protected.contains(h), "{h} missing from {protected:?}");
        }
        assert!(!protected.contains("www"));
    }

    #[test]
    fn guardrails_do_not_break_derived_workflows() {
        // The full workflow with hardened specs must still resolve every
        // issue (derived specs never granted reserved actions anyway).
        use heimdall_msp::issues::{inject_issue, IssueKind};
        let (net, meta, policies) = enterprise();
        for kind in [
            IssueKind::Vlan,
            IssueKind::Ospf,
            IssueKind::Isp,
            IssueKind::AclDeny,
        ] {
            let mut broken = net.clone();
            let issue = inject_issue(&mut broken, &meta, kind).expect("issue");
            let task = heimdall_privilege::derive::Task {
                kind: issue.task_kind,
                affected: issue.affected.clone(),
            };
            let spec = heimdall_privilege::derive::derive_privileges(&broken, &task);
            let hardened = harden(spec, &broken, &policies, &issue.affected);
            let twin = heimdall_twin::slice::slice_for_task(&broken, &task);
            let mut s = heimdall_twin::session::TwinSession::open("t", twin, hardened);
            for (d, c) in &issue.fix {
                s.exec(d, c)
                    .unwrap_or_else(|e| panic!("{kind:?}: {d}: {c}: {e}"));
            }
        }
    }

    #[test]
    fn exemption_keeps_ticket_subjects_reachable() {
        let (net, _, policies) = enterprise();
        let spec = PrivilegeMsp::new().with(Predicate::allow(
            Action::View,
            ResourcePattern::Device("h7".to_string()),
        ));
        // Without exemption, the guardrail closes h7 entirely.
        let closed = harden(spec.clone(), &net, &policies, &[]);
        assert!(!is_allowed(
            &closed,
            Action::View,
            &Resource::Device("h7".into())
        ));
        // Exempting the ticket subject preserves the grant.
        let open = harden(spec, &net, &policies, &["h7".to_string()]);
        assert!(is_allowed(
            &open,
            Action::View,
            &Resource::Device("h7".into())
        ));
    }
}
