//! OSPF control-plane simulation: adjacency derivation (with
//! authentication), per-area SPF (Dijkstra with ECMP first-hop tracking),
//! intra-area routes, inter-area summaries through ABRs, and E2 externals
//! for redistributed statics.
//!
//! The hierarchy follows classic OSPF: each area converges independently;
//! Area Border Routers (participants of area 0 plus at least one other
//! area) summarize their non-backbone areas' prefixes into the backbone
//! and the backbone's knowledge back into their non-backbone areas. There
//! is no transit through non-zero areas (no virtual links), no NSSA/stub
//! types, and no timers — the converged fixpoint is computed directly, as
//! Batfish does.
//!
//! Adjacencies additionally require matching per-interface authentication
//! keys (`ip ospf authentication-key`), mirroring real deployments; note
//! that the twin's sanitizer strips keys from *both* ends of every sliced
//! link, so sanitized twins still converge — a property the twin crate's
//! tests rely on.

use crate::rib::{NextHop, RibEntry, RouteSource};
use heimdall_netmodel::ip::Prefix;
use heimdall_netmodel::l2::L2Domains;
use heimdall_netmodel::proto::AreaId;
use heimdall_netmodel::topology::{DeviceIdx, Network};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::hash::Hash;
use std::net::Ipv4Addr;

/// An interface participating in OSPF.
#[derive(Debug, Clone)]
pub struct OspfIface {
    pub device: DeviceIdx,
    pub iface: String,
    pub addr: Ipv4Addr,
    pub subnet: Prefix,
    pub area: AreaId,
    pub cost: u32,
    pub passive: bool,
    /// Per-interface authentication key, if configured.
    pub auth_key: Option<String>,
}

/// Collects every up, addressed interface matched by its router's OSPF
/// `network` statements.
pub fn ospf_interfaces(net: &Network) -> Vec<OspfIface> {
    let mut out = Vec::new();
    for (di, dev) in net.devices() {
        if !dev.kind.routes() {
            continue;
        }
        let Some(ospf) = &dev.config.ospf else {
            continue;
        };
        for iface in &dev.config.interfaces {
            let Some(a) = iface.address else { continue };
            if !iface.is_up() {
                continue;
            }
            let Some(area) = ospf.area_for(a.ip) else {
                continue;
            };
            out.push(OspfIface {
                device: di,
                iface: iface.name.clone(),
                addr: a.ip,
                subnet: a.subnet(),
                area,
                cost: iface.effective_ospf_cost(ospf.reference_bandwidth_kbps),
                passive: ospf.is_passive(&iface.name),
                auth_key: dev.config.secrets.ospf_auth_keys.get(&iface.name).cloned(),
            });
        }
    }
    out
}

/// A directed OSPF adjacency edge inside one area.
#[derive(Debug, Clone)]
pub struct OspfEdge {
    pub from: DeviceIdx,
    pub to: DeviceIdx,
    pub area: AreaId,
    pub iface: String,
    pub cost: u32,
    pub nh_addr: Ipv4Addr,
}

/// Derives adjacency edges: two non-passive OSPF interfaces on different
/// routers form an adjacency when they share a broadcast domain, a subnet,
/// an area, and an authentication key (both-absent counts as matching).
pub fn ospf_adjacencies(ifaces: &[OspfIface], l2: &L2Domains) -> Vec<OspfEdge> {
    let mut edges = Vec::new();
    for a in ifaces {
        if a.passive {
            continue;
        }
        for b in ifaces {
            if b.passive || a.device == b.device {
                continue;
            }
            if a.area == b.area
                && a.subnet == b.subnet
                && a.auth_key == b.auth_key
                && l2.adjacent(a.device, &a.iface, b.device, &b.iface)
            {
                edges.push(OspfEdge {
                    from: a.device,
                    to: b.device,
                    area: a.area,
                    iface: a.iface.clone(),
                    cost: a.cost,
                    nh_addr: b.addr,
                });
            }
        }
    }
    edges
}

/// SPF result for one source router inside one area.
pub struct SpfResult {
    pub dist: HashMap<DeviceIdx, u32>,
    pub first_hops: HashMap<DeviceIdx, BTreeSet<NextHop>>,
}

/// Dijkstra from `src` over the given edges, tracking every first hop
/// lying on some shortest path (ECMP).
pub fn spf(src: DeviceIdx, edges: &[OspfEdge]) -> SpfResult {
    let mut by_from: HashMap<DeviceIdx, Vec<&OspfEdge>> = HashMap::new();
    for e in edges {
        by_from.entry(e.from).or_default().push(e);
    }
    let mut dist: HashMap<DeviceIdx, u32> = HashMap::from([(src, 0)]);
    let mut first_hops: HashMap<DeviceIdx, BTreeSet<NextHop>> = HashMap::new();
    let mut heap = BinaryHeap::from([(Reverse(0u32), src)]);
    while let Some((Reverse(du), u)) = heap.pop() {
        if dist.get(&u).copied().unwrap_or(u32::MAX) < du {
            continue;
        }
        for e in by_from.get(&u).map(|v| v.as_slice()).unwrap_or(&[]) {
            let nd = du.saturating_add(e.cost);
            let cur = dist.get(&e.to).copied().unwrap_or(u32::MAX);
            let hop_set: BTreeSet<NextHop> = if u == src {
                BTreeSet::from([NextHop {
                    iface: e.iface.clone(),
                    gateway: Some(e.nh_addr),
                }])
            } else {
                first_hops.get(&u).cloned().unwrap_or_default()
            };
            if nd < cur {
                dist.insert(e.to, nd);
                first_hops.insert(e.to, hop_set);
                heap.push((Reverse(nd), e.to));
            } else if nd == cur {
                first_hops.entry(e.to).or_default().extend(hop_set);
            }
        }
    }
    SpfResult { dist, first_hops }
}

/// A route candidate: cost, ECMP first hops, and whether it crossed an
/// area boundary.
#[derive(Debug, Clone)]
struct Cand {
    cost: u32,
    hops: BTreeSet<NextHop>,
    inter_area: bool,
}

impl Cand {
    fn merge(&mut self, other: Cand) {
        if other.cost < self.cost {
            *self = other;
        } else if other.cost == self.cost {
            self.hops.extend(other.hops);
            // A tie between intra and inter keeps the intra marking (IOS
            // prefers intra-area at equal cost; here costs tie so the
            // route is effectively intra-reachable).
            self.inter_area &= other.inter_area;
        }
    }
}

/// The precomputed per-area machinery shared by prefix and ASBR cost
/// computation.
struct AreaTables {
    /// Areas in the topology.
    areas: Vec<AreaId>,
    /// Routers participating per area.
    participants: HashMap<AreaId, BTreeSet<DeviceIdx>>,
    /// SPF per (area, source router).
    spf: HashMap<(AreaId, DeviceIdx), SpfResult>,
    /// ABRs: participants of area 0 and at least one other area.
    abrs: BTreeSet<DeviceIdx>,
}

impl AreaTables {
    fn build(ifaces: &[OspfIface], edges: &[OspfEdge]) -> AreaTables {
        let mut participants: HashMap<AreaId, BTreeSet<DeviceIdx>> = HashMap::new();
        for i in ifaces {
            participants.entry(i.area).or_default().insert(i.device);
        }
        let mut edges_by_area: HashMap<AreaId, Vec<OspfEdge>> = HashMap::new();
        for e in edges {
            edges_by_area.entry(e.area).or_default().push(e.clone());
        }
        let mut spf_map = HashMap::new();
        for (&area, routers) in &participants {
            let area_edges = edges_by_area.get(&area).cloned().unwrap_or_default();
            for &r in routers {
                spf_map.insert((area, r), spf(r, &area_edges));
            }
        }
        let abrs: BTreeSet<DeviceIdx> = participants
            .get(&0)
            .map(|backbone| {
                backbone
                    .iter()
                    .copied()
                    .filter(|r| {
                        participants
                            .iter()
                            .any(|(&a, members)| a != 0 && members.contains(r))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let mut areas: Vec<AreaId> = participants.keys().copied().collect();
        areas.sort_unstable();
        AreaTables {
            areas,
            participants,
            spf: spf_map,
            abrs,
        }
    }

    fn areas_of(&self, r: DeviceIdx) -> Vec<AreaId> {
        self.areas
            .iter()
            .copied()
            .filter(|a| self.participants[a].contains(&r))
            .collect()
    }

    /// Hierarchical cost computation from every router to every advertised
    /// key (prefixes, or ASBR identities for externals).
    fn costs<K: Eq + Hash + Copy + Ord>(
        &self,
        advertised: &HashMap<AreaId, Vec<(DeviceIdx, K, u32)>>,
    ) -> HashMap<DeviceIdx, BTreeMap<K, Cand>> {
        // Pass 1: intra-area tables per router.
        let mut intra: HashMap<DeviceIdx, BTreeMap<K, Cand>> = HashMap::new();
        for (&area, advs) in advertised {
            let Some(routers) = self.participants.get(&area) else {
                continue;
            };
            for &r in routers {
                let res = &self.spf[&(area, r)];
                let table = intra.entry(r).or_default();
                for &(adv, key, cost) in advs {
                    let (d, hops) = if adv == r {
                        (0, BTreeSet::new())
                    } else {
                        match res.dist.get(&adv) {
                            Some(&d) => (d, res.first_hops.get(&adv).cloned().unwrap_or_default()),
                            None => continue,
                        }
                    };
                    let cand = Cand {
                        cost: d.saturating_add(cost),
                        hops,
                        inter_area: false,
                    };
                    match table.get_mut(&key) {
                        Some(cur) => cur.merge(cand),
                        None => {
                            table.insert(key, cand);
                        }
                    }
                }
            }
        }

        // Pass 2: backbone view — each area-0 participant combines its own
        // intra knowledge with ABR summaries of non-zero areas.
        let empty: BTreeSet<DeviceIdx> = BTreeSet::new();
        let backbone = self.participants.get(&0).unwrap_or(&empty);
        let mut backbone_view: HashMap<DeviceIdx, BTreeMap<K, Cand>> = HashMap::new();
        for &r0 in backbone {
            let res0 = &self.spf[&(0, r0)];
            let mut table: BTreeMap<K, Cand> = intra.get(&r0).cloned().unwrap_or_default();
            for &abr in &self.abrs {
                if abr == r0 {
                    continue;
                }
                let Some(&d_abr) = res0.dist.get(&abr) else {
                    continue;
                };
                let hops = res0.first_hops.get(&abr).cloned().unwrap_or_default();
                if let Some(abr_intra) = intra.get(&abr) {
                    for (key, cand) in abr_intra {
                        // The ABR only summarizes what it reaches
                        // intra-area; crossing it is an inter-area route.
                        let c = Cand {
                            cost: d_abr.saturating_add(cand.cost),
                            hops: if hops.is_empty() {
                                cand.hops.clone()
                            } else {
                                hops.clone()
                            },
                            inter_area: true,
                        };
                        match table.get_mut(key) {
                            Some(cur) => cur.merge(c),
                            None => {
                                table.insert(*key, c);
                            }
                        }
                    }
                }
            }
            backbone_view.insert(r0, table);
        }

        // Pass 3: non-backbone routers reach the rest of the network
        // through their areas' ABRs.
        let mut out: HashMap<DeviceIdx, BTreeMap<K, Cand>> = HashMap::new();
        let all_routers: BTreeSet<DeviceIdx> = self
            .participants
            .values()
            .flat_map(|s| s.iter().copied())
            .collect();
        for r in all_routers {
            let mut table = if backbone.contains(&r) {
                backbone_view.get(&r).cloned().unwrap_or_default()
            } else {
                intra.get(&r).cloned().unwrap_or_default()
            };
            if !backbone.contains(&r) {
                for area in self.areas_of(r) {
                    let res = &self.spf[&(area, r)];
                    for &abr in &self.abrs {
                        if !self.participants[&area].contains(&abr) || abr == r {
                            continue;
                        }
                        let Some(&d_abr) = res.dist.get(&abr) else {
                            continue;
                        };
                        let hops = res.first_hops.get(&abr).cloned().unwrap_or_default();
                        if let Some(abr_table) = backbone_view.get(&abr) {
                            for (key, cand) in abr_table {
                                let c = Cand {
                                    cost: d_abr.saturating_add(cand.cost),
                                    hops: if hops.is_empty() {
                                        cand.hops.clone()
                                    } else {
                                        hops.clone()
                                    },
                                    inter_area: true,
                                };
                                match table.get_mut(key) {
                                    Some(cur) => cur.merge(c),
                                    None => {
                                        table.insert(*key, c);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            out.insert(r, table);
        }
        out
    }
}

/// Computes every router's OSPF routes: intra-area, inter-area (via ABR
/// summaries), and E2 externals.
pub fn ospf_routes(net: &Network, l2: &L2Domains) -> HashMap<DeviceIdx, Vec<RibEntry>> {
    let ifaces = ospf_interfaces(net);
    let edges = ospf_adjacencies(&ifaces, l2);
    let tables = AreaTables::build(&ifaces, &edges);

    // Prefix advertisements per area.
    let mut advertised: HashMap<AreaId, Vec<(DeviceIdx, Prefix, u32)>> = HashMap::new();
    for i in &ifaces {
        advertised
            .entry(i.area)
            .or_default()
            .push((i.device, i.subnet, i.cost));
    }
    let prefix_costs = tables.costs(&advertised);

    // Own prefixes (connected beats OSPF anyway; skip to keep RIBs tidy).
    let mut own: HashMap<DeviceIdx, BTreeSet<Prefix>> = HashMap::new();
    for i in &ifaces {
        own.entry(i.device).or_default().insert(i.subnet);
    }

    // ASBRs and their external prefixes.
    let mut externals: HashMap<DeviceIdx, Vec<Prefix>> = HashMap::new();
    for (di, dev) in net.devices() {
        if let Some(o) = &dev.config.ospf {
            if o.redistribute_static {
                let ps: Vec<Prefix> = dev.config.static_routes.iter().map(|r| r.prefix).collect();
                if !ps.is_empty() {
                    externals.insert(di, ps);
                }
            }
        }
    }
    // Cost-to-ASBR via the same hierarchy (each ASBR advertises itself at
    // cost 0 into every area it participates in).
    let mut asbr_adv: HashMap<AreaId, Vec<(DeviceIdx, DeviceIdx, u32)>> = HashMap::new();
    for &asbr in externals.keys() {
        for area in tables.areas_of(asbr) {
            asbr_adv.entry(area).or_default().push((asbr, asbr, 0));
        }
    }
    let asbr_costs = tables.costs(&asbr_adv);

    let mut out: HashMap<DeviceIdx, Vec<RibEntry>> = HashMap::new();
    for (&r, table) in &prefix_costs {
        let own_set = own.get(&r).cloned().unwrap_or_default();
        let mut routes: Vec<RibEntry> = Vec::new();
        for (prefix, cand) in table {
            if own_set.contains(prefix) || cand.hops.is_empty() {
                continue;
            }
            let source = if cand.inter_area {
                RouteSource::OspfInterArea
            } else {
                RouteSource::Ospf
            };
            routes.push(RibEntry {
                prefix: *prefix,
                source,
                distance: source.admin_distance(),
                metric: cand.cost,
                next_hops: cand.hops.clone(),
            });
        }
        // E2 externals: constant metric 20, forwarding toward the nearest
        // reachable ASBR.
        let mut ext_best: HashMap<Prefix, (u32, BTreeSet<NextHop>)> = HashMap::new();
        if let Some(reach) = asbr_costs.get(&r) {
            for (&asbr, cand) in reach {
                if asbr == r || cand.hops.is_empty() {
                    continue;
                }
                for p in externals.get(&asbr).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if own_set.contains(p) {
                        continue;
                    }
                    match ext_best.get_mut(p) {
                        None => {
                            ext_best.insert(*p, (cand.cost, cand.hops.clone()));
                        }
                        Some((bd, bh)) => {
                            if cand.cost < *bd {
                                *bd = cand.cost;
                                *bh = cand.hops.clone();
                            } else if cand.cost == *bd {
                                bh.extend(cand.hops.iter().cloned());
                            }
                        }
                    }
                }
            }
        }
        for (p, (_, next_hops)) in ext_best {
            routes.push(RibEntry {
                prefix: p,
                source: RouteSource::OspfExternal,
                distance: RouteSource::OspfExternal.admin_distance(),
                metric: 20,
                next_hops,
            });
        }
        out.insert(r, routes);
    }
    out
}

/// A lightweight summary of the OSPF view for diagnostics (`show ip ospf`
/// analog): areas, adjacency count, ABRs.
pub fn ospf_overview(net: &Network, l2: &L2Domains) -> String {
    let ifaces = ospf_interfaces(net);
    let edges = ospf_adjacencies(&ifaces, l2);
    let tables = AreaTables::build(&ifaces, &edges);
    let mut s = String::new();
    for area in &tables.areas {
        s.push_str(&format!(
            "area {}: {} routers, {} adjacencies\n",
            area,
            tables.participants[area].len(),
            edges.iter().filter(|e| e.area == *area).count() / 2
        ));
    }
    let abr_names: Vec<String> = tables
        .abrs
        .iter()
        .map(|&i| net.device(i).name.clone())
        .collect();
    s.push_str(&format!("ABRs: {abr_names:?}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::builder::NetBuilder;
    use heimdall_netmodel::proto::OspfNetwork;

    /// r1 - r2 - r3 chain plus a LAN on r3, all OSPF area 0.
    fn chain() -> Network {
        let mut b = NetBuilder::new();
        b.router("r1").router("r2").router("r3");
        b.connect("r1", "r2");
        b.connect("r2", "r3");
        b.lan("r3", "10.3.0.0/24".parse().unwrap(), &["h1"]);
        b.enable_ospf_all(0);
        b.build()
    }

    /// Multi-area: area 1 (r1, abr1) -- area 0 (abr1, core, abr2) -- area 2
    /// (abr2, r2), with LANs at both leaves.
    fn multi_area() -> Network {
        let mut b = NetBuilder::new();
        for r in ["r1", "abr1", "core", "abr2", "r2"] {
            b.router(r);
        }
        let (_, _, _, _, s_r1_abr1) = b.connect("r1", "abr1");
        b.connect("abr1", "core");
        b.connect("core", "abr2");
        let (_, _, _, _, s_abr2_r2) = b.connect("abr2", "r2");
        b.lan("r1", "10.1.0.0/24".parse().unwrap(), &["h1"]);
        b.lan("r2", "10.2.0.0/24".parse().unwrap(), &["h2"]);
        b.enable_ospf_all(0);
        // Re-area the leaf links and LANs.
        for (dev, area) in [("r1", 1u32), ("abr1", 1), ("abr2", 2), ("r2", 2)] {
            let d = b.device_mut(dev);
            let ospf = d.config.ospf.as_mut().unwrap();
            for n in &mut ospf.networks {
                let in_leaf1 = n.prefix == s_r1_abr1 || n.prefix == "10.1.0.0/24".parse().unwrap();
                let in_leaf2 = n.prefix == s_abr2_r2 || n.prefix == "10.2.0.0/24".parse().unwrap();
                if (area == 1 && in_leaf1) || (area == 2 && in_leaf2) {
                    n.area = area;
                }
            }
            // Cover loopbacks/LANs not yet matched (builder order).
            let _ = ospf;
        }
        b.build()
    }

    fn route_for(
        routes: &HashMap<DeviceIdx, Vec<RibEntry>>,
        r: DeviceIdx,
        prefix: &str,
    ) -> Option<RibEntry> {
        let p: Prefix = prefix.parse().unwrap();
        routes.get(&r)?.iter().find(|e| e.prefix == p).cloned()
    }

    #[test]
    fn single_area_learning_still_works() {
        let net = chain();
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        let route = route_for(&routes, r1, "10.3.0.0/24").expect("learned");
        assert_eq!(route.source, RouteSource::Ospf);
    }

    #[test]
    fn inter_area_routes_cross_the_backbone() {
        let net = multi_area();
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        // r1 (area 1) learns r2's LAN (area 2) as inter-area.
        let r1 = net.idx_of("r1");
        let route = route_for(&routes, r1, "10.2.0.0/24")
            .unwrap_or_else(|| panic!("r1 missing area-2 LAN: {:?}", routes.get(&r1)));
        assert_eq!(route.source, RouteSource::OspfInterArea);
        // core (pure backbone) also sees both leaf LANs, inter-area.
        let core = net.idx_of("core");
        let route = route_for(&routes, core, "10.1.0.0/24").expect("core learns leaf LAN");
        assert_eq!(route.source, RouteSource::OspfInterArea);
        // abr1 sees its own area intra.
        let abr1 = net.idx_of("abr1");
        let route = route_for(&routes, abr1, "10.1.0.0/24").expect("abr1 intra");
        assert_eq!(route.source, RouteSource::Ospf);
    }

    #[test]
    fn no_transit_through_nonzero_areas() {
        // Disconnect the backbone between the two halves; area 1 and 2
        // must stop learning each other even though a physical path would
        // exist through... nothing else here, so just check loss.
        let mut net = multi_area();
        net.device_by_name_mut("core")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .enabled = false; // abr1-core link dies
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        assert!(route_for(&routes, r1, "10.2.0.0/24").is_none());
        // Intra-area still fine.
        assert!(
            route_for(&routes, r1, "10.1.0.0/24").is_none(),
            "own LAN is connected, not OSPF"
        );
    }

    #[test]
    fn auth_mismatch_blocks_adjacency() {
        let mut net = chain();
        net.device_by_name_mut("r1")
            .unwrap()
            .config
            .secrets
            .ospf_auth_keys
            .insert("Gi0/0".to_string(), "key-A".to_string());
        // r2 has no key on its side -> mismatch -> no adjacency.
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        assert!(route_for(&routes, r1, "10.3.0.0/24").is_none());
        // Matching keys restore it.
        net.device_by_name_mut("r2")
            .unwrap()
            .config
            .secrets
            .ospf_auth_keys
            .insert("Gi0/0".to_string(), "key-A".to_string());
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        assert!(route_for(&routes, r1, "10.3.0.0/24").is_some());
    }

    #[test]
    fn sanitized_network_still_converges() {
        // Stripping auth keys from *all* devices (what the twin sanitizer
        // does) keeps adjacencies: None == None.
        let g = heimdall_netmodel::gen::enterprise_network();
        let mut sanitized = g.net.clone();
        for (_, name) in g
            .net
            .devices()
            .map(|(i, d)| (i, d.name.clone()))
            .collect::<Vec<_>>()
        {
            let d = sanitized.device_by_name_mut(&name).unwrap();
            d.config = d.config.sanitized();
        }
        let l2 = L2Domains::compute(&sanitized);
        let routes = ospf_routes(&sanitized, &l2);
        let acc1 = sanitized.idx_of("acc1");
        let p: Prefix = "10.2.1.0/24".parse().unwrap();
        assert!(
            routes[&acc1].iter().any(|r| r.prefix == p),
            "sanitized twin must still route"
        );
    }

    #[test]
    fn passive_interface_blocks_adjacency() {
        let mut net = chain();
        let r2 = net.device_by_name_mut("r2").unwrap();
        r2.config
            .ospf
            .as_mut()
            .unwrap()
            .passive_interfaces
            .push("Gi0/1".to_string());
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        assert!(route_for(&routes, r1, "10.3.0.0/24").is_none());
    }

    #[test]
    fn area_mismatch_blocks_adjacency() {
        let mut net = chain();
        let r3 = net.device_by_name_mut("r3").unwrap();
        let o = r3.config.ospf.as_mut().unwrap();
        for n in &mut o.networks {
            n.area = 1;
        }
        // r3 is area-1-only with no ABR: unreachable.
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        assert!(route_for(&routes, r1, "10.3.0.0/24").is_none());
    }

    #[test]
    fn ecmp_over_parallel_links() {
        let mut b = NetBuilder::new();
        b.router("r1").router("r2");
        b.connect("r1", "r2");
        b.connect("r1", "r2");
        b.lan("r2", "10.9.0.0/24".parse().unwrap(), &["h1"]);
        b.enable_ospf_all(0);
        let net = b.build();
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        let route = route_for(&routes, r1, "10.9.0.0/24").unwrap();
        assert_eq!(route.next_hops.len(), 2);
    }

    #[test]
    fn externals_flood_as_e2_across_areas() {
        let mut net = multi_area();
        {
            let r1 = net.device_by_name_mut("r1").unwrap();
            r1.config
                .static_routes
                .push(heimdall_netmodel::proto::StaticRoute::default_via(
                    "10.255.9.1".parse().unwrap(),
                ));
            r1.config.ospf.as_mut().unwrap().redistribute_static = true;
        }
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        // r2 sits two areas away from the ASBR; the default must arrive E2.
        let r2 = net.idx_of("r2");
        let def = routes[&r2]
            .iter()
            .find(|r| r.prefix.is_default())
            .expect("default flooded across areas");
        assert_eq!(def.source, RouteSource::OspfExternal);
        assert_eq!(def.metric, 20);
    }

    #[test]
    fn down_link_drops_routes() {
        let mut net = chain();
        net.device_by_name_mut("r2")
            .unwrap()
            .config
            .interface_mut("Gi0/1")
            .unwrap()
            .enabled = false;
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        assert!(route_for(&routes, r1, "10.3.0.0/24").is_none());
    }

    #[test]
    fn abr_failover_uses_second_abr() {
        // Two ABRs between area 1 and area 0: kill one, routes survive.
        let mut b = NetBuilder::new();
        for r in ["leaf", "abrA", "abrB", "core"] {
            b.router(r);
        }
        let (_, _, _, _, s1) = b.connect("leaf", "abrA");
        let (_, _, _, _, s2) = b.connect("leaf", "abrB");
        b.connect("abrA", "core");
        b.connect("abrB", "core");
        b.lan("core", "10.8.0.0/24".parse().unwrap(), &["h1"]);
        b.lan("leaf", "10.7.0.0/24".parse().unwrap(), &["h2"]);
        b.enable_ospf_all(0);
        for dev in ["leaf", "abrA", "abrB"] {
            let d = b.device_mut(dev);
            for n in &mut d.config.ospf.as_mut().unwrap().networks {
                if n.prefix == s1 || n.prefix == s2 || n.prefix == "10.7.0.0/24".parse().unwrap() {
                    n.area = 1;
                }
            }
        }
        let mut net = b.build();
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let leaf = net.idx_of("leaf");
        let route = route_for(&routes, leaf, "10.8.0.0/24").expect("via ABRs");
        assert_eq!(route.source, RouteSource::OspfInterArea);
        assert_eq!(route.next_hops.len(), 2, "both ABRs are equal-cost");
        // Kill abrA.
        net.device_by_name_mut("abrA")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .enabled = false;
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let route = route_for(&routes, leaf, "10.8.0.0/24").expect("failover via abrB");
        assert_eq!(route.next_hops.len(), 1);
    }

    #[test]
    fn overview_lists_areas_and_abrs() {
        let net = multi_area();
        let l2 = L2Domains::compute(&net);
        let text = ospf_overview(&net, &l2);
        assert!(text.contains("area 0:"));
        assert!(text.contains("area 1:"));
        assert!(text.contains("area 2:"));
        assert!(text.contains("abr1"));
        assert!(text.contains("abr2"));
    }

    #[test]
    fn interfaces_collected_with_costs() {
        let net = chain();
        let ifs = ospf_interfaces(&net);
        assert_eq!(ifs.len(), 5);
        assert!(ifs.iter().all(|i| i.area == 0 && i.auth_key.is_none()));
    }

    #[test]
    fn remote_lan_metric_accumulates() {
        let net = chain();
        let l2 = L2Domains::compute(&net);
        let routes = ospf_routes(&net, &l2);
        let r1 = net.idx_of("r1");
        let route = route_for(&routes, r1, "10.3.0.0/24").unwrap();
        // Two 10-cost hops + LAN interface cost 10 (10 Mb/s defaults).
        assert_eq!(route.metric, 30);
        let _ = OspfNetwork {
            prefix: "10.0.0.0/8".parse().unwrap(),
            area: 0,
        };
    }
}
