//! Full control-plane convergence: connected + static + OSPF + BGP, per
//! device, arbitrated by administrative distance, flattened to FIBs.

use crate::bgp::bgp_routes;
use crate::fib::{Fib, NULL_IFACE};
use crate::ospf::ospf_routes;
use crate::rib::{NextHop, Rib, RibEntry, RouteSource};
use heimdall_netmodel::l2::L2Domains;
use heimdall_netmodel::proto::NextHop as CfgNextHop;
use heimdall_netmodel::topology::{DeviceIdx, Network};
use std::collections::{BTreeSet, HashMap};

/// The converged control plane of a network snapshot: everything the data
/// plane needs to forward, and everything `show ip route` displays.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    pub ribs: HashMap<DeviceIdx, Rib>,
    pub fibs: HashMap<DeviceIdx, Fib>,
    pub l2: L2Domains,
}

impl ControlPlane {
    /// The RIB of `device` (empty RIB if the device computed none).
    pub fn rib(&self, device: DeviceIdx) -> &Rib {
        static EMPTY: std::sync::OnceLock<Rib> = std::sync::OnceLock::new();
        self.ribs
            .get(&device)
            .unwrap_or_else(|| EMPTY.get_or_init(Rib::new))
    }

    /// Installed route count of `device` — the `fib_routes` operational
    /// counter surfaced by mediated device monitoring.
    pub fn route_count(&self, device: DeviceIdx) -> usize {
        self.rib(device).len()
    }

    /// The FIB of `device` (empty FIB if the device computed none).
    pub fn fib(&self, device: DeviceIdx) -> &Fib {
        static EMPTY: std::sync::OnceLock<Fib> = std::sync::OnceLock::new();
        self.fibs
            .get(&device)
            .unwrap_or_else(|| EMPTY.get_or_init(Fib::default))
    }
}

/// Converges the network: computes every device's RIB and FIB.
///
/// Deterministic and side-effect free: this is the Batfish-style "compute
/// the fixpoint directly" model — no timers, no transient states. (The
/// enforcer's scheduler simulates *sequences* of converged states to find
/// transient policy violations between change steps.)
pub fn converge(net: &Network) -> ControlPlane {
    let l2 = L2Domains::compute(net);
    let ospf = ospf_routes(net, &l2);
    let bgp = bgp_routes(net);

    let mut ribs: HashMap<DeviceIdx, Rib> = HashMap::new();
    for (di, dev) in net.devices() {
        let mut rib = Rib::new();

        // Connected routes.
        for iface in &dev.config.interfaces {
            if !iface.is_up() {
                continue;
            }
            if let Some(subnet) = iface.subnet() {
                rib.offer(RibEntry {
                    prefix: subnet,
                    source: RouteSource::Connected,
                    distance: 0,
                    metric: 0,
                    next_hops: BTreeSet::from([NextHop {
                        iface: iface.name.clone(),
                        gateway: None,
                    }]),
                });
            }
        }

        // Static routes. The egress interface is resolved against connected
        // subnets here when possible; otherwise left for recursive FIB
        // resolution.
        for sr in &dev.config.static_routes {
            let next_hops = match sr.next_hop {
                CfgNextHop::Discard => BTreeSet::from([NextHop {
                    iface: NULL_IFACE.to_string(),
                    gateway: None,
                }]),
                CfgNextHop::Ip(gw) => {
                    let iface = dev
                        .config
                        .interfaces
                        .iter()
                        .find(|i| i.is_up() && i.subnet().map(|s| s.contains(gw)).unwrap_or(false))
                        .map(|i| i.name.clone())
                        .unwrap_or_default();
                    BTreeSet::from([NextHop {
                        iface,
                        gateway: Some(gw),
                    }])
                }
            };
            rib.offer(RibEntry {
                prefix: sr.prefix,
                source: RouteSource::Static,
                distance: sr.distance,
                metric: 0,
                next_hops,
            });
        }

        // Protocol routes.
        if let Some(routes) = ospf.get(&di) {
            for r in routes {
                rib.offer(r.clone());
            }
        }
        if let Some(routes) = bgp.get(&di) {
            for r in routes {
                rib.offer(r.clone());
            }
        }

        ribs.insert(di, rib);
    }

    let fibs = ribs
        .iter()
        .map(|(di, rib)| (*di, Fib::from_rib(rib)))
        .collect();

    ControlPlane { ribs, fibs, l2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::{enterprise_network, university_network};
    use heimdall_netmodel::ip::Prefix;

    #[test]
    fn enterprise_fully_converges() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        // Every router learns every LAN.
        let lans: [Prefix; 4] = [
            "10.1.1.0/24".parse().unwrap(),
            "10.1.2.0/24".parse().unwrap(),
            "10.1.3.0/24".parse().unwrap(),
            "10.2.1.0/24".parse().unwrap(),
        ];
        for r in [
            "bdr1", "fw1", "core1", "core2", "dist1", "dist2", "acc1", "acc2", "acc3",
        ] {
            let rib = cp.rib(g.net.idx_of(r));
            for lan in &lans {
                assert!(
                    rib.lookup(lan.nth_host(5).unwrap()).is_some(),
                    "{r} missing route toward {lan}"
                );
            }
        }
    }

    #[test]
    fn default_route_floods_from_border() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        // acc1 is far from bdr1; it must still know a default (E2).
        let rib = cp.rib(g.net.idx_of("acc1"));
        let hit = rib
            .lookup("93.184.216.34".parse().unwrap())
            .expect("default");
        assert!(hit.prefix.is_default());
        assert_eq!(hit.source, RouteSource::OspfExternal);
        // On bdr1 itself it is the static.
        let rib = cp.rib(g.net.idx_of("bdr1"));
        let hit = rib.lookup("93.184.216.34".parse().unwrap()).unwrap();
        assert_eq!(hit.source, RouteSource::Static);
    }

    #[test]
    fn hosts_have_connected_plus_default() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let rib = cp.rib(g.net.idx_of("h4"));
        assert_eq!(rib.len(), 2);
        let def = rib.lookup("10.2.1.10".parse().unwrap()).unwrap();
        assert_eq!(def.source, RouteSource::Static);
        let gw = def.next_hops.iter().next().unwrap();
        assert_eq!(gw.gateway, Some("10.1.2.1".parse().unwrap()));
    }

    #[test]
    fn loopbacks_are_network_wide() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let rib = cp.rib(g.net.idx_of("acc3"));
        for (_, lo) in &g.meta.loopbacks {
            assert!(rib.lookup(*lo).is_some(), "acc3 missing loopback {lo}");
        }
    }

    #[test]
    fn university_fully_converges() {
        let g = university_network();
        let cp = converge(&g.net);
        let rib = cp.rib(g.net.idx_of("cs1"));
        // cs1 must know the dc LAN with multiple ECMP paths (parallel fabric).
        let hit = rib.lookup("172.16.10.10".parse().unwrap()).expect("dc LAN");
        assert_eq!(hit.source, RouteSource::Ospf);
        assert!(
            hit.next_hops.len() >= 2,
            "parallel fabric should yield ECMP, got {:?}",
            hit.next_hops
        );
    }

    #[test]
    fn interface_down_removes_routes() {
        let g = enterprise_network();
        let mut net = g.net.clone();
        // acc1 single-homes to dist1; cutting that link strands LAN1.
        net.device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .enabled = false;
        let cp = converge(&net);
        let rib = cp.rib(net.idx_of("core1"));
        // The specific LAN1 route must vanish; only the default now matches.
        assert!(rib.get(&"10.1.1.0/24".parse().unwrap()).is_none());
        let hit = rib.lookup("10.1.1.10".parse().unwrap()).unwrap();
        assert!(hit.prefix.is_default(), "only the default may remain");
    }

    #[test]
    fn convergence_is_deterministic() {
        let g = university_network();
        let a = converge(&g.net);
        let b = converge(&g.net);
        for (di, _) in g.net.devices() {
            assert_eq!(a.rib(di), b.rib(di));
            assert_eq!(a.fib(di), b.fib(di));
        }
    }
}
