//! Simplified BGP: session establishment between mutually-configured,
//! directly-reachable neighbors; best-path selection by AS-path length then
//! lowest neighbor address; propagation to fixpoint with AS-path loop
//! prevention.
//!
//! This is deliberately the "textbook core" of BGP — no local-pref, MED,
//! communities, or route reflection. The evaluation networks use BGP only
//! at their single upstream edge, so the core semantics (does a route
//! propagate, does it win over OSPF by distance) are what matters.

use crate::rib::{NextHop, RibEntry, RouteSource};
use heimdall_netmodel::ip::Prefix;
use heimdall_netmodel::topology::{DeviceIdx, Network};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// An established BGP session between two configured speakers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpSession {
    pub a: DeviceIdx,
    /// Address on `a` that `b`'s neighbor statement points at.
    pub a_addr: Ipv4Addr,
    pub a_asn: u32,
    pub b: DeviceIdx,
    pub b_addr: Ipv4Addr,
    pub b_asn: u32,
}

impl BgpSession {
    /// Whether the session crosses AS boundaries.
    pub fn is_ebgp(&self) -> bool {
        self.a_asn != self.b_asn
    }
}

/// Finds sessions: both sides must configure each other's address with the
/// correct remote AS, and each address must belong to the other device.
pub fn bgp_sessions(net: &Network) -> Vec<BgpSession> {
    let mut speakers: Vec<(DeviceIdx, &heimdall_netmodel::proto::BgpConfig)> = Vec::new();
    for (di, dev) in net.devices() {
        if let Some(b) = &dev.config.bgp {
            speakers.push((di, b));
        }
    }
    let mut sessions = Vec::new();
    for (ai, acfg) in &speakers {
        for nb in &acfg.neighbors {
            // Find the device owning the neighbor address.
            let Some(bi) = net.owner_of(nb.addr) else {
                continue;
            };
            if bi <= *ai {
                continue; // dedupe: record each pair once, from the lower idx
            }
            let Some(bcfg) = net.device(bi).config.bgp.as_ref() else {
                continue;
            };
            if bcfg.asn != nb.remote_as {
                continue;
            }
            // b must point back at one of a's addresses with a's ASN.
            let a_addrs = net.device(*ai).addresses();
            let Some(back) = bcfg
                .neighbors
                .iter()
                .find(|n| a_addrs.contains(&n.addr) && n.remote_as == acfg.asn)
            else {
                continue;
            };
            sessions.push(BgpSession {
                a: *ai,
                a_addr: back.addr,
                a_asn: acfg.asn,
                b: bi,
                b_addr: nb.addr,
                b_asn: bcfg.asn,
            });
        }
    }
    sessions
}

/// A BGP path in a speaker's table.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Path {
    as_path: Vec<u32>,
    /// Session peer address used as next hop; `None` for locally originated.
    from: Option<Ipv4Addr>,
    ebgp: bool,
}

impl Path {
    /// Best-path order: shorter AS path, then eBGP over iBGP, then lowest
    /// neighbor address.
    fn rank(&self) -> (usize, u8, u32) {
        (
            self.as_path.len(),
            if self.ebgp { 0 } else { 1 },
            self.from.map(u32::from).unwrap_or(0),
        )
    }
}

/// Computes each speaker's BGP routes by synchronous exchange to fixpoint.
pub fn bgp_routes(net: &Network) -> HashMap<DeviceIdx, Vec<RibEntry>> {
    let sessions = bgp_sessions(net);
    let mut asn: HashMap<DeviceIdx, u32> = HashMap::new();
    let mut tables: HashMap<DeviceIdx, BTreeMap<Prefix, Path>> = HashMap::new();

    for (di, dev) in net.devices() {
        let Some(b) = &dev.config.bgp else { continue };
        asn.insert(di, b.asn);
        let mut t = BTreeMap::new();
        for p in &b.networks {
            t.insert(
                *p,
                Path {
                    as_path: vec![],
                    from: None,
                    ebgp: false,
                },
            );
        }
        if b.default_originate {
            t.insert(
                Prefix::DEFAULT,
                Path {
                    as_path: vec![],
                    from: None,
                    ebgp: false,
                },
            );
        }
        tables.insert(di, t);
    }

    // Synchronous rounds until stable (bounded by network size as a guard).
    let max_rounds = net.device_count() + 4;
    for _ in 0..max_rounds {
        let mut changed = false;
        let snapshot = tables.clone();
        for s in &sessions {
            for (tx, tx_addr, rx, _rx_addr) in [
                (s.a, s.a_addr, s.b, s.b_addr),
                (s.b, s.b_addr, s.a, s.a_addr),
            ] {
                let tx_asn = asn[&tx];
                let rx_asn = asn[&rx];
                let Some(tx_table) = snapshot.get(&tx) else {
                    continue;
                };
                for (prefix, path) in tx_table {
                    // iBGP learned routes are not re-advertised to iBGP
                    // peers (classic full-mesh rule).
                    if tx_asn == rx_asn && !path.ebgp && path.from.is_some() {
                        continue;
                    }
                    let mut as_path = path.as_path.clone();
                    if tx_asn != rx_asn {
                        as_path.insert(0, tx_asn);
                    }
                    if as_path.contains(&rx_asn) {
                        continue; // loop prevention
                    }
                    let cand = Path {
                        as_path,
                        from: Some(tx_addr),
                        ebgp: tx_asn != rx_asn,
                    };
                    let table = tables.get_mut(&rx).expect("speaker");
                    match table.get(prefix) {
                        Some(cur) if cur.rank() <= cand.rank() => {}
                        _ => {
                            table.insert(*prefix, cand);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Convert learned paths to RIB entries, resolving the egress interface
    // through connected subnets.
    let mut out: HashMap<DeviceIdx, Vec<RibEntry>> = HashMap::new();
    for (di, table) in tables {
        let dev = net.device(di);
        let mut routes = Vec::new();
        for (prefix, path) in table {
            let Some(gw) = path.from else { continue }; // skip locally originated
            let Some(iface) = dev
                .config
                .interfaces
                .iter()
                .find(|i| i.is_up() && i.subnet().map(|s| s.contains(gw)).unwrap_or(false))
            else {
                continue;
            };
            let source = if path.ebgp {
                RouteSource::Bgp
            } else {
                RouteSource::BgpInternal
            };
            routes.push(RibEntry {
                prefix,
                source,
                distance: source.admin_distance(),
                metric: path.as_path.len() as u32,
                next_hops: BTreeSet::from([NextHop {
                    iface: iface.name.clone(),
                    gateway: Some(gw),
                }]),
            });
        }
        out.insert(di, routes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::builder::NetBuilder;
    use heimdall_netmodel::proto::BgpConfig;

    /// Three ASes in a chain: AS100(r1) - AS200(r2) - AS300(r3).
    fn tri_as() -> Network {
        let mut b = NetBuilder::new();
        b.router("r1").router("r2").router("r3");
        let (_, r1_ip, _, r2a_ip, _) = b.connect("r1", "r2");
        let (_, r2b_ip, _, r3_ip, _) = b.connect("r2", "r3");
        b.lan("r1", "10.10.0.0/24".parse().unwrap(), &[]);
        b.device_mut("r1").config.bgp = Some(
            BgpConfig::new(100)
                .neighbor(r2a_ip, 200)
                .network("10.10.0.0/24".parse().unwrap()),
        );
        b.device_mut("r2").config.bgp = Some(
            BgpConfig::new(200)
                .neighbor(r1_ip, 100)
                .neighbor(r3_ip, 300),
        );
        b.device_mut("r3").config.bgp = Some(BgpConfig::new(300).neighbor(r2b_ip, 200));
        b.build()
    }

    #[test]
    fn sessions_require_mutual_config() {
        let net = tri_as();
        assert_eq!(bgp_sessions(&net).len(), 2);
    }

    #[test]
    fn one_sided_config_is_down() {
        let mut net = tri_as();
        net.device_by_name_mut("r3").unwrap().config.bgp = Some(BgpConfig::new(300));
        assert_eq!(bgp_sessions(&net).len(), 1);
    }

    #[test]
    fn wrong_remote_as_is_down() {
        let mut net = tri_as();
        let b = net
            .device_by_name_mut("r3")
            .unwrap()
            .config
            .bgp
            .as_mut()
            .unwrap();
        b.neighbors[0].remote_as = 999;
        assert_eq!(bgp_sessions(&net).len(), 1);
    }

    #[test]
    fn routes_propagate_across_two_hops() {
        let net = tri_as();
        let routes = bgp_routes(&net);
        let r3 = net.idx_of("r3");
        let p: Prefix = "10.10.0.0/24".parse().unwrap();
        let route = routes[&r3]
            .iter()
            .find(|r| r.prefix == p)
            .expect("propagated");
        assert_eq!(route.source, RouteSource::Bgp);
        assert_eq!(route.metric, 2, "AS path 200 100");
        assert_eq!(route.distance, 20);
    }

    #[test]
    fn neighbor_session_to_unmodeled_peer_is_harmless() {
        // The enterprise border's ISP neighbor has no device behind it;
        // the session must simply not form and produce no routes.
        let g = heimdall_netmodel::gen::enterprise_network();
        assert!(bgp_sessions(&g.net).is_empty());
        let routes = bgp_routes(&g.net);
        let bdr1 = g.net.idx_of("bdr1");
        assert!(routes.get(&bdr1).map(|v| v.is_empty()).unwrap_or(true));
    }

    #[test]
    fn default_originate_floods_default() {
        let mut net = tri_as();
        net.device_by_name_mut("r1")
            .unwrap()
            .config
            .bgp
            .as_mut()
            .unwrap()
            .default_originate = true;
        let routes = bgp_routes(&net);
        let r3 = net.idx_of("r3");
        assert!(routes[&r3].iter().any(|r| r.prefix.is_default()));
    }
}
