//! # heimdall-routing
//!
//! Control-plane simulation over [`heimdall_netmodel`] networks: the
//! Batfish-like substrate the paper's verification and twin layers stand on.
//!
//! Given a network snapshot, [`engine::converge`] computes each device's RIB
//! from four sources, arbitrated by administrative distance exactly like
//! IOS:
//!
//! | source            | distance |
//! |-------------------|----------|
//! | connected         | 0        |
//! | static            | 1 (configurable per route) |
//! | eBGP              | 20       |
//! | OSPF (intra/ext)  | 110      |
//! | iBGP              | 200      |
//!
//! OSPF runs SPF (Dijkstra with ECMP first-hop tracking) over adjacencies
//! derived from L2 broadcast domains and `network`-statement/area matching;
//! redistributed statics appear as OSPF-external (E2, fixed metric 20). BGP
//! is a simplified best-path propagation (AS-path length, then lowest
//! neighbor address) run to fixpoint with AS-path loop prevention.
//!
//! The result ([`ControlPlane`]) carries per-device RIBs and FIBs plus the
//! L2 domains, and is what `heimdall-dataplane` forwards over.
//!
//! ```
//! use heimdall_netmodel::builder::NetBuilder;
//!
//! let mut b = NetBuilder::new();
//! b.router("r1").router("r2");
//! b.connect("r1", "r2");
//! b.lan("r2", "10.9.0.0/24".parse().unwrap(), &["h1"]);
//! b.enable_ospf_all(0);
//! let net = b.build();
//!
//! let cp = heimdall_routing::converge(&net);
//! let rib = cp.rib(net.idx_of("r1"));
//! // r1 learned r2's LAN via OSPF.
//! let hit = rib.lookup("10.9.0.10".parse().unwrap()).unwrap();
//! assert_eq!(hit.source, heimdall_routing::RouteSource::Ospf);
//! ```

pub mod bgp;
pub mod engine;
pub mod fib;
pub mod ospf;
pub mod rib;

pub use engine::{converge, ControlPlane};
pub use fib::{Fib, FibEntry};
pub use rib::{Rib, RibEntry, RouteSource};
