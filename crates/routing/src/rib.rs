//! Routing information base: per-device best routes, arbitrated by
//! administrative distance then metric, with ECMP next-hop sets.

use heimdall_netmodel::ip::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Where a route came from, in IOS terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteSource {
    Connected,
    Static,
    /// eBGP-learned.
    Bgp,
    /// OSPF intra-area.
    Ospf,
    /// OSPF inter-area (learned through an ABR summary).
    OspfInterArea,
    /// OSPF external (redistributed statics, E2).
    OspfExternal,
    /// iBGP-learned.
    BgpInternal,
}

impl RouteSource {
    /// The default administrative distance for this source.
    pub fn admin_distance(&self) -> u8 {
        match self {
            RouteSource::Connected => 0,
            RouteSource::Static => 1,
            RouteSource::Bgp => 20,
            RouteSource::Ospf | RouteSource::OspfInterArea | RouteSource::OspfExternal => 110,
            RouteSource::BgpInternal => 200,
        }
    }

    /// The `show ip route` code letter.
    pub fn code(&self) -> &'static str {
        match self {
            RouteSource::Connected => "C",
            RouteSource::Static => "S",
            RouteSource::Bgp | RouteSource::BgpInternal => "B",
            RouteSource::Ospf => "O",
            RouteSource::OspfInterArea => "O IA",
            RouteSource::OspfExternal => "O E2",
        }
    }
}

/// One way to reach a prefix: out `iface`, optionally via a gateway (no
/// gateway = directly connected, forward to the destination itself).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NextHop {
    pub iface: String,
    pub gateway: Option<Ipv4Addr>,
}

/// A RIB entry: the winning route for a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    pub prefix: Prefix,
    pub source: RouteSource,
    pub distance: u8,
    pub metric: u32,
    /// ECMP set; deterministic order.
    pub next_hops: BTreeSet<NextHop>,
}

/// A device's RIB. Insertion keeps, per prefix, the route with the lowest
/// (distance, metric); equal-cost candidates from the same source merge
/// their next hops (ECMP).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Rib {
    entries: BTreeMap<Prefix, RibEntry>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Rib::default()
    }

    /// Offers a candidate route; keeps it if it beats (or ties) the
    /// incumbent for its prefix.
    pub fn offer(&mut self, candidate: RibEntry) {
        match self.entries.get_mut(&candidate.prefix) {
            None => {
                self.entries.insert(candidate.prefix, candidate);
            }
            Some(cur) => {
                let cand_key = (candidate.distance, candidate.metric);
                let cur_key = (cur.distance, cur.metric);
                if cand_key < cur_key {
                    *cur = candidate;
                } else if cand_key == cur_key && cur.source == candidate.source {
                    cur.next_hops.extend(candidate.next_hops);
                }
            }
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&RibEntry> {
        self.entries
            .values()
            .filter(|e| e.prefix.contains(dst))
            .max_by_key(|e| e.prefix.len())
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&RibEntry> {
        self.entries.get(prefix)
    }

    /// All entries in prefix order.
    pub fn entries(&self) -> impl Iterator<Item = &RibEntry> {
        self.entries.values()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the RIB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the RIB as `show ip route`-style text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries.values() {
            for nh in &e.next_hops {
                let via = match (nh.gateway, nh.iface.is_empty()) {
                    (Some(g), true) => format!("via {g} (recursive)"),
                    (Some(g), false) => format!("via {g}, {}", nh.iface),
                    (None, _) => format!("directly connected, {}", nh.iface),
                };
                out.push_str(&format!(
                    "{:<6} {:<20} [{}/{}] {via}\n",
                    e.source.code(),
                    e.prefix.to_string(),
                    e.distance,
                    e.metric
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(p: &str, src: RouteSource, metric: u32, gw: Option<&str>) -> RibEntry {
        RibEntry {
            prefix: p.parse().unwrap(),
            source: src,
            distance: src.admin_distance(),
            metric,
            next_hops: BTreeSet::from([NextHop {
                iface: "Gi0/0".to_string(),
                gateway: gw.map(|g| g.parse().unwrap()),
            }]),
        }
    }

    #[test]
    fn lower_distance_wins() {
        let mut rib = Rib::new();
        rib.offer(entry("10.0.0.0/24", RouteSource::Ospf, 20, Some("1.1.1.1")));
        rib.offer(entry(
            "10.0.0.0/24",
            RouteSource::Static,
            0,
            Some("2.2.2.2"),
        ));
        let e = rib.get(&"10.0.0.0/24".parse().unwrap()).unwrap();
        assert_eq!(e.source, RouteSource::Static);
    }

    #[test]
    fn lower_metric_wins_within_source() {
        let mut rib = Rib::new();
        rib.offer(entry("10.0.0.0/24", RouteSource::Ospf, 30, Some("1.1.1.1")));
        rib.offer(entry("10.0.0.0/24", RouteSource::Ospf, 10, Some("2.2.2.2")));
        let e = rib.get(&"10.0.0.0/24".parse().unwrap()).unwrap();
        assert_eq!(e.metric, 10);
        assert_eq!(e.next_hops.len(), 1);
    }

    #[test]
    fn equal_cost_merges_ecmp() {
        let mut rib = Rib::new();
        rib.offer(entry("10.0.0.0/24", RouteSource::Ospf, 10, Some("1.1.1.1")));
        rib.offer(entry("10.0.0.0/24", RouteSource::Ospf, 10, Some("2.2.2.2")));
        let e = rib.get(&"10.0.0.0/24".parse().unwrap()).unwrap();
        assert_eq!(e.next_hops.len(), 2);
    }

    #[test]
    fn longest_prefix_match() {
        let mut rib = Rib::new();
        rib.offer(entry("0.0.0.0/0", RouteSource::Static, 0, Some("9.9.9.9")));
        rib.offer(entry("10.0.0.0/8", RouteSource::Ospf, 5, Some("1.1.1.1")));
        rib.offer(entry("10.0.1.0/24", RouteSource::Connected, 0, None));
        let hit = rib.lookup("10.0.1.77".parse().unwrap()).unwrap();
        assert_eq!(hit.prefix.to_string(), "10.0.1.0/24");
        let hit = rib.lookup("10.9.9.9".parse().unwrap()).unwrap();
        assert_eq!(hit.prefix.to_string(), "10.0.0.0/8");
        let hit = rib.lookup("8.8.8.8".parse().unwrap()).unwrap();
        assert!(hit.prefix.is_default());
    }

    #[test]
    fn lookup_empty_rib_is_none() {
        assert!(Rib::new().lookup("1.2.3.4".parse().unwrap()).is_none());
    }

    #[test]
    fn render_shows_codes() {
        let mut rib = Rib::new();
        rib.offer(entry("10.0.1.0/24", RouteSource::Connected, 0, None));
        rib.offer(entry("0.0.0.0/0", RouteSource::Static, 0, Some("9.9.9.9")));
        let text = rib.render();
        assert!(text.contains("C      10.0.1.0/24"));
        assert!(text.contains("S      0.0.0.0/0"));
        assert!(text.contains("via 9.9.9.9"));
        assert!(text.contains("directly connected"));
    }

    #[test]
    fn distances_match_ios() {
        assert_eq!(RouteSource::Connected.admin_distance(), 0);
        assert_eq!(RouteSource::Static.admin_distance(), 1);
        assert_eq!(RouteSource::Bgp.admin_distance(), 20);
        assert_eq!(RouteSource::Ospf.admin_distance(), 110);
        assert_eq!(RouteSource::OspfExternal.admin_distance(), 110);
        assert_eq!(RouteSource::BgpInternal.admin_distance(), 200);
    }
}
