//! Forwarding information base: the RIB flattened for per-packet lookup,
//! with recursive next-hop resolution (a static route may point at a
//! gateway that is itself reached through OSPF).

use crate::rib::{NextHop, Rib, RouteSource};
use heimdall_netmodel::ip::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The sentinel interface name for discard (Null0) routes.
pub const NULL_IFACE: &str = "Null0";

/// One resolved forwarding action.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FibEntry {
    /// Egress interface (or [`NULL_IFACE`] to discard).
    pub iface: String,
    /// IP to forward to; `None` means "deliver to the destination directly"
    /// (the destination is on the egress interface's subnet).
    pub gateway: Option<Ipv4Addr>,
}

/// A device's FIB.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fib {
    entries: BTreeMap<Prefix, Vec<FibEntry>>,
}

impl Fib {
    /// Flattens a RIB into a FIB. Next hops whose interface is unknown are
    /// resolved recursively via the RIB (bounded depth); unresolvable hops
    /// are dropped, and prefixes with no resolvable hop are omitted.
    pub fn from_rib(rib: &Rib) -> Fib {
        let mut entries: BTreeMap<Prefix, Vec<FibEntry>> = BTreeMap::new();
        for e in rib.entries() {
            let mut resolved = Vec::new();
            for nh in &e.next_hops {
                resolved.extend(resolve(rib, nh, 4));
            }
            resolved.sort();
            resolved.dedup();
            if !resolved.is_empty() {
                entries.insert(e.prefix, resolved);
            }
        }
        Fib { entries }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<(&Prefix, &[FibEntry])> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (p, v.as_slice()))
    }

    /// All entries, in prefix order.
    pub fn entries(&self) -> impl Iterator<Item = (&Prefix, &Vec<FibEntry>)> {
        self.entries.iter()
    }

    /// Number of prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Resolves a RIB next hop to concrete FIB entries.
fn resolve(rib: &Rib, nh: &NextHop, depth: u8) -> Vec<FibEntry> {
    if !nh.iface.is_empty() {
        return vec![FibEntry {
            iface: nh.iface.clone(),
            gateway: nh.gateway,
        }];
    }
    let Some(gw) = nh.gateway else {
        return Vec::new();
    };
    if depth == 0 {
        return Vec::new();
    }
    // Interface unknown: recurse through the RIB on the gateway address.
    let Some(via) = rib.lookup(gw) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for hop in &via.next_hops {
        for mut r in resolve(rib, hop, depth - 1) {
            // Keep the ORIGINAL gateway if the recursive hop is connected
            // (deliver-to-gw through that interface).
            if r.gateway.is_none() && via.source == RouteSource::Connected {
                r.gateway = Some(gw);
            }
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rib::RibEntry;
    use std::collections::BTreeSet;

    fn rib_with(entries: Vec<RibEntry>) -> Rib {
        let mut rib = Rib::new();
        for e in entries {
            rib.offer(e);
        }
        rib
    }

    fn e(p: &str, src: RouteSource, iface: &str, gw: Option<&str>) -> RibEntry {
        RibEntry {
            prefix: p.parse().unwrap(),
            source: src,
            distance: src.admin_distance(),
            metric: 0,
            next_hops: BTreeSet::from([NextHop {
                iface: iface.to_string(),
                gateway: gw.map(|g| g.parse().unwrap()),
            }]),
        }
    }

    #[test]
    fn direct_entries_flatten() {
        let rib = rib_with(vec![e(
            "10.0.0.0/24",
            RouteSource::Connected,
            "Gi0/0",
            None,
        )]);
        let fib = Fib::from_rib(&rib);
        let (p, hops) = fib.lookup("10.0.0.5".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/24");
        assert_eq!(hops[0].iface, "Gi0/0");
        assert_eq!(hops[0].gateway, None);
    }

    #[test]
    fn recursive_static_resolves_through_connected() {
        let rib = rib_with(vec![
            e("10.0.0.0/24", RouteSource::Connected, "Gi0/0", None),
            // Static with no iface, gw on the connected subnet.
            e("0.0.0.0/0", RouteSource::Static, "", Some("10.0.0.9")),
        ]);
        let fib = Fib::from_rib(&rib);
        let (_, hops) = fib.lookup("8.8.8.8".parse().unwrap()).unwrap();
        assert_eq!(hops[0].iface, "Gi0/0");
        assert_eq!(hops[0].gateway, Some("10.0.0.9".parse().unwrap()));
    }

    #[test]
    fn unresolvable_hop_omitted() {
        let rib = rib_with(vec![e(
            "0.0.0.0/0",
            RouteSource::Static,
            "",
            Some("99.9.9.9"),
        )]);
        let fib = Fib::from_rib(&rib);
        assert!(fib.lookup("8.8.8.8".parse().unwrap()).is_none());
        assert!(fib.is_empty());
    }

    #[test]
    fn lpm_prefers_longer() {
        let rib = rib_with(vec![
            e("10.0.0.0/8", RouteSource::Ospf, "Gi0/1", Some("10.255.0.1")),
            e("10.0.1.0/24", RouteSource::Connected, "Gi0/0", None),
        ]);
        let fib = Fib::from_rib(&rib);
        assert_eq!(
            fib.lookup("10.0.1.1".parse().unwrap()).unwrap().1[0].iface,
            "Gi0/0"
        );
        assert_eq!(
            fib.lookup("10.3.0.1".parse().unwrap()).unwrap().1[0].iface,
            "Gi0/1"
        );
    }

    #[test]
    fn resolution_depth_bounded() {
        // 0/0 -> 1.1.1.1 -> itself (loop); must not hang or resolve.
        let rib = rib_with(vec![e(
            "1.1.1.1/32",
            RouteSource::Static,
            "",
            Some("1.1.1.1"),
        )]);
        let fib = Fib::from_rib(&rib);
        assert!(fib.is_empty());
    }
}
