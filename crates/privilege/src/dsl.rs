//! The compact text form of `Privilege_msp`.
//!
//! Grammar (one predicate per line; `#` comments):
//!
//! ```text
//! spec      := line*
//! line      := effect "(" action "," resource ")"
//! effect    := "allow" | "deny"
//! action    := "*" | keyword | "acl[" name "]"
//! resource  := "*" | device | device "." iface
//! ```
//!
//! `acl[NAME]` is sugar: `allow(acl[101], r3)` means action `ModifyAcl`
//! restricted to ACL `101` on device `r3`.

use crate::model::{Action, Effect, Predicate, PrivilegeMsp, ResourcePattern};
use std::fmt;

/// A DSL parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privilege DSL error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for DslError {}

/// Parses the DSL text into a specification.
pub fn parse(text: &str) -> Result<PrivilegeMsp, DslError> {
    let mut spec = PrivilegeMsp::new();
    for (n, raw) in text.lines().enumerate() {
        let lineno = n + 1;
        let err = |m: String| DslError {
            line: lineno,
            message: m,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        spec.predicates.push(parse_line(line).map_err(err)?);
    }
    Ok(spec)
}

fn parse_line(line: &str) -> Result<Predicate, String> {
    let (effect, rest) = if let Some(r) = line.strip_prefix("allow") {
        (Effect::Allow, r)
    } else if let Some(r) = line.strip_prefix("deny") {
        (Effect::Deny, r)
    } else {
        return Err(format!("expected allow/deny, got {line:?}"));
    };
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| format!("expected (action, resource), got {rest:?}"))?;
    let (action_s, resource_s) = inner
        .split_once(',')
        .ok_or_else(|| format!("expected two comma-separated fields in {inner:?}"))?;
    let action_s = action_s.trim();
    let resource_s = resource_s.trim();

    // acl[NAME] sugar binds the resource to a specific ACL.
    if let Some(name) = action_s
        .strip_prefix("acl[")
        .and_then(|s| s.strip_suffix(']'))
    {
        if resource_s == "*" || resource_s.contains('.') {
            return Err("acl[..] requires a concrete device resource".to_string());
        }
        return Ok(Predicate {
            effect,
            action: Some(Action::ModifyAcl),
            resource: ResourcePattern::Acl {
                device: resource_s.to_string(),
                name: name.to_string(),
            },
        });
    }

    let action = match action_s {
        "*" => None,
        kw => Some(Action::from_keyword(kw).ok_or_else(|| format!("unknown action {kw:?}"))?),
    };
    let resource = match resource_s {
        "*" => ResourcePattern::Any,
        r => match r.split_once('.') {
            Some((dev, iface)) => ResourcePattern::Interface {
                device: dev.to_string(),
                iface: iface.to_string(),
            },
            None => ResourcePattern::Device(r.to_string()),
        },
    };
    Ok(Predicate {
        effect,
        action,
        resource,
    })
}

/// Renders a specification in DSL form (the inverse of [`parse`]).
pub fn render(spec: &PrivilegeMsp) -> String {
    spec.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        let spec = parse("allow(ip, r1)\n").unwrap();
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.predicates[0].action, Some(Action::ModifyIpAddress));
        assert_eq!(
            spec.predicates[0].resource,
            ResourcePattern::Device("r1".into())
        );
    }

    #[test]
    fn parses_full_grammar() {
        let text = "\
# read everywhere, fix acl 101 on r3, touch one port, nothing on h7
allow(view, *)
allow(ping, *)
allow(acl[101], r3)
allow(ifstate, r3.Gi0/2)
deny(*, h7)
";
        let spec = parse(text).unwrap();
        assert_eq!(spec.len(), 5);
        assert_eq!(
            spec.predicates[2].resource,
            ResourcePattern::Acl {
                device: "r3".into(),
                name: "101".into()
            }
        );
        assert_eq!(
            spec.predicates[3].resource,
            ResourcePattern::Interface {
                device: "r3".into(),
                iface: "Gi0/2".into()
            }
        );
        assert_eq!(spec.predicates[4].action, None);
    }

    #[test]
    fn round_trips_through_render() {
        let text = "allow(view, *)\nallow(acl[101], r3)\nallow(ifstate, r3.Gi0/2)\ndeny(*, h7)\n";
        let spec = parse(text).unwrap();
        let rendered = render(&spec);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("allow(view, *)\nfrobnicate(x, y)\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_unknown_action() {
        assert!(parse("allow(sudo, r1)").is_err());
    }

    #[test]
    fn rejects_malformed_syntax() {
        assert!(parse("allow view *").is_err());
        assert!(parse("allow(view)").is_err());
        assert!(parse("allow(acl[101], *)").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = parse("\n# nothing\n   \nallow(view, *) # trailing\n").unwrap();
        assert_eq!(spec.len(), 1);
    }
}
