//! # heimdall-privilege
//!
//! The `Privilege_msp` specification language — the paper's first component:
//! "a simple yet expressive language for MSP customers to specify their
//! policies on privilege levels for various network resources".
//!
//! A `Privilege_msp` is a set of predicates, each an `allow` or `deny` of an
//! *action pattern* on a *resource pattern*:
//!
//! ```text
//! allow(view, *)          # read-only everywhere
//! allow(ip, r3)           # modify IP addresses on router r3
//! allow(acl[101], r3)     # edit exactly ACL 101 on r3
//! allow(ifstate, r3.Gi0/2)# shut/no-shut one interface
//! deny(*, h7)             # nothing on the finance host, ever
//! ```
//!
//! Evaluation ([`eval`]) is deny-by-default with specificity ordering and
//! deny-overrides on ties. The JSON front-end ([`json`]) is the
//! admin-facing format the paper describes ("a convenient front-end
//! interface, based on JSON"); the text DSL ([`dsl`]) is its compact form.
//! [`derive`](mod@derive) implements the *task-driven* generation of minimal privilege
//! sets from a ticket, and [`escalate`] the controlled widening the paper's
//! §7 discusses.
//!
//! ```
//! use heimdall_privilege::{dsl, eval, model::{Action, Resource}};
//!
//! let spec = dsl::parse(
//!     "allow(view, *)\nallow(acl[101], r3)\ndeny(*, h7)\n",
//! ).unwrap();
//!
//! let r3_acl = Resource::Acl { device: "r3".into(), name: "101".into() };
//! assert!(eval::is_allowed(&spec, Action::ModifyAcl, &r3_acl));
//! // Deny-by-default: nothing else on r3 is granted.
//! assert!(!eval::is_allowed(&spec, Action::Reboot, &Resource::Device("r3".into())));
//! // The explicit deny wins over the broad view grant.
//! assert!(!eval::is_allowed(&spec, Action::View, &Resource::Device("h7".into())));
//! ```

pub mod derive;
pub mod dsl;
pub mod escalate;
pub mod eval;
pub mod json;
pub mod model;

pub use derive::{derive_privileges, Task, TaskKind};
pub use eval::Decision;
pub use model::{Action, Effect, Predicate, PrivilegeMsp, Resource, ResourcePattern};
