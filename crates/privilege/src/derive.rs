//! Task-driven privilege derivation: from a ticket to a *minimal*
//! `Privilege_msp`.
//!
//! This implements the paper's answer to Challenge 1 ("crafting a
//! fine-grained Privilege_msp is ... tedious and error-prone"): the admin
//! does not enumerate predicates by hand; Heimdall derives them from the
//! ticket. The derivation is scoped two ways:
//!
//! - **Topologically**: only devices on some shortest path between the
//!   affected endpoints (plus the endpoints themselves) are granted
//!   anything — the same relevance set the twin slicer uses.
//! - **Functionally**: the ticket's kind determines which mutating actions
//!   are granted. An OSPF ticket gets `ospf` and `ifstate`, not `acl`; the
//!   paper's §7 escalation workflow widens this at runtime if the
//!   hypothesis was wrong.

use crate::model::{Action, Predicate, PrivilegeMsp, ResourcePattern};
use heimdall_netmodel::topology::{DeviceIdx, Network};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What kind of problem the ticket describes (drives the action grant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Point-to-point connectivity failure, cause unknown.
    Connectivity,
    /// Suspected routing-protocol problem.
    Routing,
    /// Suspected ACL/firewall problem.
    AccessControl,
    /// Suspected VLAN/switchport problem.
    Vlan,
    /// Planned upstream/ISP change on the border.
    IspChange,
    /// Read-only investigation (performance monitoring etc.).
    Monitoring,
}

impl TaskKind {
    /// The mutating actions this kind of task may need.
    pub fn mutating_actions(&self) -> &'static [Action] {
        match self {
            TaskKind::Connectivity => &[Action::ModifyInterfaceState],
            TaskKind::Routing => &[
                Action::ModifyOspf,
                Action::ModifyRoute,
                Action::ModifyInterfaceState,
            ],
            TaskKind::AccessControl => &[Action::ModifyAcl],
            TaskKind::Vlan => &[Action::ModifyVlan, Action::ModifyInterfaceState],
            TaskKind::IspChange => &[
                Action::ModifyIpAddress,
                Action::ModifyRoute,
                Action::ModifyBgp,
                Action::ModifyInterfaceState,
            ],
            TaskKind::Monitoring => &[],
        }
    }
}

/// A task distilled from a ticket: the endpoints it concerns and its kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    pub kind: TaskKind,
    /// Affected device names (usually the two endpoints of a "cannot
    /// reach" ticket, or the one device of a change request).
    pub affected: Vec<String>,
}

impl Task {
    /// A connectivity task between two endpoints.
    pub fn connectivity(a: &str, b: &str) -> Task {
        Task {
            kind: TaskKind::Connectivity,
            affected: vec![a.to_string(), b.to_string()],
        }
    }
}

/// The devices relevant to a task: every device on some designed shortest
/// path between each pair of affected endpoints, plus the endpoints
/// themselves.
///
/// Paths are computed over the topology *ignoring interface state* — the
/// network as cabled — so the device whose downed interface or bad config
/// broke the path is still inside the set (otherwise no twin built from
/// this set could ever reproduce the failure).
pub fn relevant_devices(net: &Network, task: &Task) -> BTreeSet<DeviceIdx> {
    let mut out: BTreeSet<DeviceIdx> = BTreeSet::new();
    let ids: Vec<DeviceIdx> = task
        .affected
        .iter()
        .filter_map(|n| net.idx(n).ok())
        .collect();
    out.extend(ids.iter().copied());
    for (i, &a) in ids.iter().enumerate() {
        for &b in ids.iter().skip(i + 1) {
            out.extend(net.shortest_path_union_any_state(a, b));
        }
    }
    out
}

/// Derives the minimal `Privilege_msp` for a task.
///
/// Grants: `view`+`ping` on every relevant device; the task kind's mutating
/// actions on relevant *infrastructure* (non-host) devices; and explicit
/// `deny(*, d)` is implied for everything else by deny-by-default.
pub fn derive_privileges(net: &Network, task: &Task) -> PrivilegeMsp {
    let relevant = relevant_devices(net, task);
    let mut spec = PrivilegeMsp::new();
    for &d in &relevant {
        let dev = net.device(d);
        spec.predicates.push(Predicate::allow(
            Action::View,
            ResourcePattern::Device(dev.name.clone()),
        ));
        spec.predicates.push(Predicate::allow(
            Action::Ping,
            ResourcePattern::Device(dev.name.clone()),
        ));
        if dev.kind != heimdall_netmodel::device::DeviceKind::Host {
            for &a in task.kind.mutating_actions() {
                spec.predicates.push(Predicate::allow(
                    a,
                    ResourcePattern::Device(dev.name.clone()),
                ));
            }
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::is_allowed;
    use crate::model::Resource;
    use heimdall_netmodel::gen::enterprise_network;

    fn names(net: &Network, set: &BTreeSet<DeviceIdx>) -> Vec<String> {
        set.iter().map(|&i| net.device(i).name.clone()).collect()
    }

    #[test]
    fn relevance_is_the_path_union() {
        let g = enterprise_network();
        let task = Task::connectivity("h1", "srv1");
        let rel = relevant_devices(&g.net, &task);
        let ns = names(&g.net, &rel);
        // The h1 <-> srv1 path runs acc1 -> dist1 -> core{1,2} -> fw1.
        for must in ["h1", "srv1", "acc1", "dist1", "fw1"] {
            assert!(ns.contains(&must.to_string()), "{must} missing from {ns:?}");
        }
        // acc3 and bdr1 are off-path.
        assert!(!ns.contains(&"acc3".to_string()));
        assert!(!ns.contains(&"bdr1".to_string()));
        assert!(!ns.contains(&"h7".to_string()));
    }

    #[test]
    fn derived_spec_denies_off_path_devices() {
        let g = enterprise_network();
        let spec = derive_privileges(&g.net, &Task::connectivity("h1", "srv1"));
        assert!(is_allowed(
            &spec,
            Action::View,
            &Resource::Device("fw1".into())
        ));
        assert!(!is_allowed(
            &spec,
            Action::View,
            &Resource::Device("acc3".into())
        ));
        assert!(!is_allowed(
            &spec,
            Action::View,
            &Resource::Device("h7".into())
        ));
    }

    #[test]
    fn connectivity_tasks_get_ifstate_only() {
        let g = enterprise_network();
        let spec = derive_privileges(&g.net, &Task::connectivity("h1", "srv1"));
        let fw1 = Resource::Device("fw1".into());
        assert!(is_allowed(&spec, Action::ModifyInterfaceState, &fw1));
        assert!(!is_allowed(&spec, Action::ModifyAcl, &fw1));
        assert!(!is_allowed(&spec, Action::Erase, &fw1));
        assert!(!is_allowed(&spec, Action::ModifyCredentials, &fw1));
    }

    #[test]
    fn acl_tasks_get_acl_rights() {
        let g = enterprise_network();
        let task = Task {
            kind: TaskKind::AccessControl,
            affected: vec!["h4".into(), "srv1".into()],
        };
        let spec = derive_privileges(&g.net, &task);
        assert!(is_allowed(
            &spec,
            Action::ModifyAcl,
            &Resource::Device("fw1".into())
        ));
        assert!(!is_allowed(
            &spec,
            Action::ModifyOspf,
            &Resource::Device("fw1".into())
        ));
    }

    #[test]
    fn hosts_never_get_mutating_actions() {
        let g = enterprise_network();
        let spec = derive_privileges(&g.net, &Task::connectivity("h1", "srv1"));
        let h1 = Resource::Device("h1".into());
        assert!(is_allowed(&spec, Action::View, &h1));
        assert!(is_allowed(&spec, Action::Ping, &h1));
        assert!(!is_allowed(&spec, Action::ModifyInterfaceState, &h1));
    }

    #[test]
    fn monitoring_is_read_only() {
        let g = enterprise_network();
        let task = Task {
            kind: TaskKind::Monitoring,
            affected: vec!["core1".into(), "core2".into()],
        };
        let spec = derive_privileges(&g.net, &task);
        assert!(is_allowed(
            &spec,
            Action::View,
            &Resource::Device("core1".into())
        ));
        assert!(spec
            .predicates
            .iter()
            .all(|p| !p.action.map(|a| a.is_mutating()).unwrap_or(true)));
    }

    #[test]
    fn single_endpoint_task_scopes_to_it() {
        let g = enterprise_network();
        let task = Task {
            kind: TaskKind::IspChange,
            affected: vec!["bdr1".into()],
        };
        let spec = derive_privileges(&g.net, &task);
        assert!(is_allowed(
            &spec,
            Action::ModifyRoute,
            &Resource::Device("bdr1".into())
        ));
        assert!(!is_allowed(
            &spec,
            Action::View,
            &Resource::Device("core1".into())
        ));
    }

    #[test]
    fn unknown_affected_devices_are_ignored() {
        let g = enterprise_network();
        let task = Task::connectivity("ghost", "srv1");
        let rel = relevant_devices(&g.net, &task);
        assert_eq!(names(&g.net, &rel), vec!["srv1".to_string()]);
    }
}
