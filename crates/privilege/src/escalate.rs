//! Privilege escalation: the §7 workflow ("privileges may need to evolve
//! over time, likely escalating from more to less restrictive, as they
//! address an issue").
//!
//! A technician mid-ticket may request additional actions on additional
//! resources. The escalation policy decides automatically where it safely
//! can, and defers to the admin otherwise:
//!
//! - the requested resource must already be *relevant* to the task (inside
//!   the derived device set) — widening scope to new devices always needs
//!   an admin;
//! - the requested action must be plausibly related to the task kind (the
//!   `related_kinds` table) — e.g. a connectivity ticket may escalate into
//!   routing or ACL work, but never into credential changes;
//! - destructive actions (`erase`, `creds`) are never auto-granted.
//!
//! Every decision is recorded so the enforcer's audit trail can reconstruct
//! why a privilege existed.

use crate::derive::{relevant_devices, Task, TaskKind};
use crate::model::{Action, Predicate, PrivilegeMsp, ResourcePattern};
use heimdall_netmodel::topology::Network;
use serde::{Deserialize, Serialize};

/// A technician's request for more privilege.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EscalationRequest {
    pub technician: String,
    pub action: Action,
    /// Device the action is needed on.
    pub device: String,
    /// Free-text justification (recorded verbatim in the audit trail).
    pub justification: String,
}

/// The outcome of an escalation request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EscalationDecision {
    /// Granted automatically; the predicate was appended.
    AutoGranted,
    /// Requires explicit admin approval (reason given).
    NeedsAdmin { reason: String },
    /// Flatly denied (reason given).
    Denied { reason: String },
}

/// Task kinds a given kind may escalate into.
///
/// Public so static analysis (`heimdall-analyze`) can compute the
/// transitive closure of what a technician could reach without an admin.
pub fn related_kinds(kind: TaskKind) -> &'static [TaskKind] {
    match kind {
        TaskKind::Connectivity => &[TaskKind::Routing, TaskKind::AccessControl, TaskKind::Vlan],
        TaskKind::Routing => &[TaskKind::Connectivity, TaskKind::AccessControl],
        TaskKind::AccessControl => &[TaskKind::Connectivity],
        TaskKind::Vlan => &[TaskKind::Connectivity],
        TaskKind::IspChange => &[TaskKind::Routing],
        TaskKind::Monitoring => &[],
    }
}

/// Whether `action` belongs to the mutating repertoire of `kind` or a
/// related kind.
///
/// Public for the same reason as [`related_kinds`]: the analyzer's
/// reachability closure must over-approximate exactly this check.
pub fn action_plausible(kind: TaskKind, action: Action) -> bool {
    if kind.mutating_actions().contains(&action) {
        return true;
    }
    related_kinds(kind)
        .iter()
        .any(|k| k.mutating_actions().contains(&action))
}

/// Decides an escalation request against the task and, when auto-granted,
/// appends the predicate to `spec`.
pub fn decide_escalation(
    net: &Network,
    task: &Task,
    spec: &mut PrivilegeMsp,
    req: &EscalationRequest,
) -> EscalationDecision {
    // Destructive actions are never self-service.
    if matches!(
        req.action,
        Action::Erase | Action::ModifyCredentials | Action::Reboot
    ) {
        return EscalationDecision::Denied {
            reason: format!("action {} is never auto-escalated", req.action),
        };
    }
    // Scope check: the device must already be relevant to the task.
    let relevant = relevant_devices(net, task);
    let in_scope = net
        .idx(&req.device)
        .map(|i| relevant.contains(&i))
        .unwrap_or(false);
    if !in_scope {
        return EscalationDecision::NeedsAdmin {
            reason: format!("device {} is outside the task's relevant set", req.device),
        };
    }
    // Kind check: the action must be plausible for this class of problem.
    if !action_plausible(task.kind, req.action) {
        return EscalationDecision::NeedsAdmin {
            reason: format!(
                "action {} is unrelated to a {:?} task",
                req.action, task.kind
            ),
        };
    }
    spec.predicates.push(Predicate::allow(
        req.action,
        ResourcePattern::Device(req.device.clone()),
    ));
    EscalationDecision::AutoGranted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_privileges;
    use crate::eval::is_allowed;
    use crate::model::Resource;
    use heimdall_netmodel::gen::enterprise_network;

    fn req(action: Action, device: &str) -> EscalationRequest {
        EscalationRequest {
            technician: "t1".into(),
            action,
            device: device.into(),
            justification: "testing".into(),
        }
    }

    #[test]
    fn connectivity_escalates_into_acl_on_path() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let mut spec = derive_privileges(&g.net, &task);
        assert!(!is_allowed(
            &spec,
            Action::ModifyAcl,
            &Resource::Device("fw1".into())
        ));
        let d = decide_escalation(&g.net, &task, &mut spec, &req(Action::ModifyAcl, "fw1"));
        assert_eq!(d, EscalationDecision::AutoGranted);
        assert!(is_allowed(
            &spec,
            Action::ModifyAcl,
            &Resource::Device("fw1".into())
        ));
    }

    #[test]
    fn off_path_device_needs_admin() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let mut spec = derive_privileges(&g.net, &task);
        let d = decide_escalation(&g.net, &task, &mut spec, &req(Action::ModifyAcl, "acc3"));
        assert!(matches!(d, EscalationDecision::NeedsAdmin { .. }));
        assert!(!is_allowed(
            &spec,
            Action::ModifyAcl,
            &Resource::Device("acc3".into())
        ));
    }

    #[test]
    fn destructive_actions_always_denied() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let mut spec = derive_privileges(&g.net, &task);
        for a in [Action::Erase, Action::ModifyCredentials, Action::Reboot] {
            let d = decide_escalation(&g.net, &task, &mut spec, &req(a, "fw1"));
            assert!(
                matches!(d, EscalationDecision::Denied { .. }),
                "{a} must be denied"
            );
        }
    }

    #[test]
    fn unrelated_action_needs_admin() {
        let g = enterprise_network();
        // ACL task asking for BGP rights: not plausible.
        let task = Task {
            kind: TaskKind::AccessControl,
            affected: vec!["h4".into(), "srv1".into()],
        };
        let mut spec = derive_privileges(&g.net, &task);
        let d = decide_escalation(&g.net, &task, &mut spec, &req(Action::ModifyBgp, "fw1"));
        assert!(matches!(d, EscalationDecision::NeedsAdmin { .. }));
    }

    #[test]
    fn monitoring_never_escalates() {
        let g = enterprise_network();
        let task = Task {
            kind: TaskKind::Monitoring,
            affected: vec!["core1".into()],
        };
        let mut spec = derive_privileges(&g.net, &task);
        let d = decide_escalation(&g.net, &task, &mut spec, &req(Action::ModifyOspf, "core1"));
        assert!(matches!(d, EscalationDecision::NeedsAdmin { .. }));
    }

    #[test]
    fn unknown_device_needs_admin() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let mut spec = derive_privileges(&g.net, &task);
        let d = decide_escalation(&g.net, &task, &mut spec, &req(Action::ModifyAcl, "ghost"));
        assert!(matches!(d, EscalationDecision::NeedsAdmin { .. }));
    }
}
