//! The JSON front-end: the admin-facing interchange format ("Heimdall
//! includes a convenient front-end interface, based on JSON, that builds on
//! the specification DSL").
//!
//! The JSON schema is deliberately flatter than the Rust model so an admin
//! (or their tooling) writes strings, not tagged enums:
//!
//! ```json
//! {
//!   "version": 1,
//!   "ticket": "TCK-1042",
//!   "rules": [
//!     {"effect": "allow", "action": "view",     "resource": "*"},
//!     {"effect": "allow", "action": "acl[101]", "resource": "r3"},
//!     {"effect": "deny",  "action": "*",        "resource": "h7"}
//!   ]
//! }
//! ```
//!
//! `action`/`resource` strings reuse the DSL grammar, so the two front-ends
//! cannot drift apart.

use crate::dsl;
use crate::model::PrivilegeMsp;
use serde::{Deserialize, Serialize};

/// The JSON document shape.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PrivilegeDoc {
    pub version: u32,
    /// Optional ticket this specification was issued for.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ticket: Option<String>,
    pub rules: Vec<JsonRule>,
}

/// One rule in the JSON form.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JsonRule {
    pub effect: String,
    pub action: String,
    pub resource: String,
}

/// A JSON front-end failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    Syntax(String),
    Semantic { rule: usize, message: String },
    UnsupportedVersion(u32),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax(m) => write!(f, "privilege JSON syntax error: {m}"),
            JsonError::Semantic { rule, message } => {
                write!(f, "privilege JSON rule {rule}: {message}")
            }
            JsonError::UnsupportedVersion(v) => write!(f, "unsupported privilege doc version {v}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses the JSON document into a specification.
pub fn from_json(text: &str) -> Result<(PrivilegeMsp, Option<String>), JsonError> {
    let doc: PrivilegeDoc =
        serde_json::from_str(text).map_err(|e| JsonError::Syntax(e.to_string()))?;
    if doc.version != 1 {
        return Err(JsonError::UnsupportedVersion(doc.version));
    }
    let mut spec = PrivilegeMsp::new();
    for (i, rule) in doc.rules.iter().enumerate() {
        let line = format!("{}({}, {})", rule.effect, rule.action, rule.resource);
        let parsed = dsl::parse(&line).map_err(|e| JsonError::Semantic {
            rule: i,
            message: e.message,
        })?;
        spec.predicates.extend(parsed.predicates);
    }
    Ok((spec, doc.ticket))
}

/// Serializes a specification to the JSON document form.
pub fn to_json(spec: &PrivilegeMsp, ticket: Option<&str>) -> String {
    let rules = spec
        .predicates
        .iter()
        .map(|p| {
            // Reuse the Display form `effect(action, resource)` and split it.
            let s = p.to_string();
            let (effect, rest) = s.split_once('(').expect("display format");
            let inner = rest.strip_suffix(')').expect("display format");
            let (action, resource) = inner.split_once(", ").expect("display format");
            JsonRule {
                effect: effect.to_string(),
                action: action.to_string(),
                resource: resource.to_string(),
            }
        })
        .collect();
    let doc = PrivilegeDoc {
        version: 1,
        ticket: ticket.map(str::to_string),
        rules,
    };
    serde_json::to_string_pretty(&doc).expect("doc serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Action, ResourcePattern};

    const DOC: &str = r#"{
  "version": 1,
  "ticket": "TCK-1042",
  "rules": [
    {"effect": "allow", "action": "view", "resource": "*"},
    {"effect": "allow", "action": "acl[101]", "resource": "r3"},
    {"effect": "allow", "action": "ifstate", "resource": "r3.Gi0/2"},
    {"effect": "deny", "action": "*", "resource": "h7"}
  ]
}"#;

    #[test]
    fn parses_document() {
        let (spec, ticket) = from_json(DOC).unwrap();
        assert_eq!(ticket.as_deref(), Some("TCK-1042"));
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.predicates[1].action, Some(Action::ModifyAcl));
        assert_eq!(
            spec.predicates[1].resource,
            ResourcePattern::Acl {
                device: "r3".into(),
                name: "101".into()
            }
        );
    }

    #[test]
    fn json_round_trip() {
        let (spec, _) = from_json(DOC).unwrap();
        let rendered = to_json(&spec, Some("TCK-1042"));
        let (again, ticket) = from_json(&rendered).unwrap();
        assert_eq!(spec, again);
        assert_eq!(ticket.as_deref(), Some("TCK-1042"));
    }

    #[test]
    fn rejects_bad_version() {
        let bad = DOC.replace("\"version\": 1", "\"version\": 7");
        assert_eq!(from_json(&bad), Err(JsonError::UnsupportedVersion(7)));
    }

    #[test]
    fn rejects_bad_action_with_rule_index() {
        let bad = DOC.replace("\"view\"", "\"sudo\"");
        match from_json(&bad) {
            Err(JsonError::Semantic { rule, .. }) => assert_eq!(rule, 0),
            other => panic!("expected semantic error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(from_json("{nope"), Err(JsonError::Syntax(_))));
    }
}
