//! The `Privilege_msp` object model: actions, resources, predicates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything a technician can do to a network object.
///
/// This enumeration *is* the per-node command inventory: the paper's
/// attack-surface formula counts "allowed and available commands on node n",
/// and those counts are taken over these actions (see
/// `heimdall::metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Action {
    /// Read-only inspection (`show running-config`, `show ip route`, ...).
    View,
    /// Active probing (`ping`, `traceroute`).
    Ping,
    /// `shutdown` / `no shutdown`.
    ModifyInterfaceState,
    /// `ip address ...`.
    ModifyIpAddress,
    /// Editing access lists.
    ModifyAcl,
    /// Adding/removing static routes.
    ModifyRoute,
    /// OSPF process configuration.
    ModifyOspf,
    /// BGP process configuration.
    ModifyBgp,
    /// VLANs and switchport assignment.
    ModifyVlan,
    /// Passwords, user accounts, SNMP communities.
    ModifyCredentials,
    /// Reloading the device.
    Reboot,
    /// Destructive wipes (`write erase`, the Figure 3 accident).
    Erase,
}

impl Action {
    /// Every action, in stable order.
    pub const ALL: [Action; 12] = [
        Action::View,
        Action::Ping,
        Action::ModifyInterfaceState,
        Action::ModifyIpAddress,
        Action::ModifyAcl,
        Action::ModifyRoute,
        Action::ModifyOspf,
        Action::ModifyBgp,
        Action::ModifyVlan,
        Action::ModifyCredentials,
        Action::Reboot,
        Action::Erase,
    ];

    /// The DSL keyword for this action.
    pub fn keyword(&self) -> &'static str {
        match self {
            Action::View => "view",
            Action::Ping => "ping",
            Action::ModifyInterfaceState => "ifstate",
            Action::ModifyIpAddress => "ip",
            Action::ModifyAcl => "acl",
            Action::ModifyRoute => "route",
            Action::ModifyOspf => "ospf",
            Action::ModifyBgp => "bgp",
            Action::ModifyVlan => "vlan",
            Action::ModifyCredentials => "creds",
            Action::Reboot => "reboot",
            Action::Erase => "erase",
        }
    }

    /// Parses a DSL keyword.
    pub fn from_keyword(s: &str) -> Option<Action> {
        Action::ALL.iter().copied().find(|a| a.keyword() == s)
    }

    /// Whether this action changes state (vs. read-only/diagnostic).
    pub fn is_mutating(&self) -> bool {
        !matches!(self, Action::View | Action::Ping)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

/// A concrete resource a command acts on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    Device(String),
    Interface { device: String, iface: String },
    Acl { device: String, name: String },
}

impl Resource {
    /// The device this resource lives on.
    pub fn device(&self) -> &str {
        match self {
            Resource::Device(d) => d,
            Resource::Interface { device, .. } | Resource::Acl { device, .. } => device,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Device(d) => write!(f, "{d}"),
            Resource::Interface { device, iface } => write!(f, "{device}.{iface}"),
            Resource::Acl { device, name } => write!(f, "{device}:acl[{name}]"),
        }
    }
}

/// A resource pattern: matches concrete resources, possibly with wildcards.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourcePattern {
    /// Matches anything.
    Any,
    /// Matches a device and everything on it.
    Device(String),
    /// Matches one interface (device must be concrete).
    Interface { device: String, iface: String },
    /// Matches one ACL by name; `name == "*"` matches every ACL on the
    /// device.
    Acl { device: String, name: String },
}

impl ResourcePattern {
    /// Whether this pattern covers the concrete resource.
    pub fn matches(&self, r: &Resource) -> bool {
        match self {
            ResourcePattern::Any => true,
            ResourcePattern::Device(d) => r.device() == d,
            ResourcePattern::Interface { device, iface } => {
                matches!(r, Resource::Interface { device: rd, iface: ri }
                    if rd == device && ri == iface)
            }
            ResourcePattern::Acl { device, name } => {
                matches!(r, Resource::Acl { device: rd, name: rn }
                    if rd == device && (name == "*" || rn == name))
            }
        }
    }

    /// Specificity: higher = more specific. Any=0, Device=1, sub-object=2.
    pub fn specificity(&self) -> u8 {
        match self {
            ResourcePattern::Any => 0,
            ResourcePattern::Device(_) => 1,
            ResourcePattern::Acl { name, .. } if name == "*" => 1,
            ResourcePattern::Interface { .. } | ResourcePattern::Acl { .. } => 2,
        }
    }
}

impl fmt::Display for ResourcePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourcePattern::Any => write!(f, "*"),
            ResourcePattern::Device(d) => write!(f, "{d}"),
            ResourcePattern::Interface { device, iface } => write!(f, "{device}.{iface}"),
            ResourcePattern::Acl { device, name } => write!(f, "{device}:acl[{name}]"),
        }
    }
}

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effect {
    Allow,
    Deny,
}

/// One predicate of a `Privilege_msp`: `effect(action-pattern, resource-pattern)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    pub effect: Effect,
    /// `None` = any action (`*`).
    pub action: Option<Action>,
    pub resource: ResourcePattern,
}

impl Predicate {
    /// `allow(action, resource)`.
    pub fn allow(action: Action, resource: ResourcePattern) -> Self {
        Predicate {
            effect: Effect::Allow,
            action: Some(action),
            resource,
        }
    }

    /// `deny(action, resource)`.
    pub fn deny(action: Action, resource: ResourcePattern) -> Self {
        Predicate {
            effect: Effect::Deny,
            action: Some(action),
            resource,
        }
    }

    /// `allow(*, resource)`.
    pub fn allow_all(resource: ResourcePattern) -> Self {
        Predicate {
            effect: Effect::Allow,
            action: None,
            resource,
        }
    }

    /// `deny(*, resource)`.
    pub fn deny_all(resource: ResourcePattern) -> Self {
        Predicate {
            effect: Effect::Deny,
            action: None,
            resource,
        }
    }

    /// Whether this predicate applies to the request.
    pub fn matches(&self, action: Action, resource: &Resource) -> bool {
        (self.action.is_none() || self.action == Some(action)) && self.resource.matches(resource)
    }

    /// Specificity: (resource specificity, action concreteness).
    pub fn specificity(&self) -> (u8, u8) {
        (
            self.resource.specificity(),
            if self.action.is_some() { 1 } else { 0 },
        )
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let effect = match self.effect {
            Effect::Allow => "allow",
            Effect::Deny => "deny",
        };
        match (&self.action, &self.resource) {
            // acl actions with a concrete ACL render as acl[NAME].
            (Some(Action::ModifyAcl), ResourcePattern::Acl { device, name }) => {
                write!(f, "{effect}(acl[{name}], {device})")
            }
            (Some(a), r) => write!(f, "{effect}({a}, {r})"),
            (None, r) => write!(f, "{effect}(*, {r})"),
        }
    }
}

/// A complete privilege specification: the ordered predicate set an admin
/// hands to Heimdall for one ticket/technician.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivilegeMsp {
    pub predicates: Vec<Predicate>,
}

impl PrivilegeMsp {
    /// An empty (deny-everything) specification.
    pub fn new() -> Self {
        PrivilegeMsp::default()
    }

    /// Builder: append a predicate.
    pub fn with(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether there are no predicates (deny everything).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The full-access specification (the "current approach" baseline).
    pub fn allow_everything() -> Self {
        PrivilegeMsp::new().with(Predicate::allow_all(ResourcePattern::Any))
    }
}

impl fmt::Display for PrivilegeMsp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.predicates {
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for a in Action::ALL {
            assert_eq!(Action::from_keyword(a.keyword()), Some(a));
        }
        assert_eq!(Action::from_keyword("bogus"), None);
    }

    #[test]
    fn mutating_classification() {
        assert!(!Action::View.is_mutating());
        assert!(!Action::Ping.is_mutating());
        assert!(Action::ModifyAcl.is_mutating());
        assert!(Action::Erase.is_mutating());
    }

    #[test]
    fn pattern_matching_hierarchy() {
        let iface = Resource::Interface {
            device: "r1".into(),
            iface: "Gi0/0".into(),
        };
        assert!(ResourcePattern::Any.matches(&iface));
        assert!(ResourcePattern::Device("r1".into()).matches(&iface));
        assert!(!ResourcePattern::Device("r2".into()).matches(&iface));
        assert!(ResourcePattern::Interface {
            device: "r1".into(),
            iface: "Gi0/0".into()
        }
        .matches(&iface));
        assert!(!ResourcePattern::Interface {
            device: "r1".into(),
            iface: "Gi0/1".into()
        }
        .matches(&iface));
    }

    #[test]
    fn acl_wildcard_name() {
        let acl = Resource::Acl {
            device: "r3".into(),
            name: "101".into(),
        };
        assert!(ResourcePattern::Acl {
            device: "r3".into(),
            name: "*".into()
        }
        .matches(&acl));
        assert!(!ResourcePattern::Acl {
            device: "r3".into(),
            name: "102".into()
        }
        .matches(&acl));
        // Device pattern also covers ACLs on it.
        assert!(ResourcePattern::Device("r3".into()).matches(&acl));
    }

    #[test]
    fn specificity_ordering() {
        assert!(
            ResourcePattern::Any.specificity() < ResourcePattern::Device("d".into()).specificity()
        );
        assert!(
            ResourcePattern::Device("d".into()).specificity()
                < ResourcePattern::Interface {
                    device: "d".into(),
                    iface: "i".into()
                }
                .specificity()
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        // The paper's running example: {allow(ip, r1)}.
        let p = Predicate::allow(
            Action::ModifyIpAddress,
            ResourcePattern::Device("r1".into()),
        );
        assert_eq!(p.to_string(), "allow(ip, r1)");
        let p = Predicate::allow(
            Action::ModifyAcl,
            ResourcePattern::Acl {
                device: "r3".into(),
                name: "101".into(),
            },
        );
        assert_eq!(p.to_string(), "allow(acl[101], r3)");
        let p = Predicate::deny_all(ResourcePattern::Device("h7".into()));
        assert_eq!(p.to_string(), "deny(*, h7)");
    }
}
