//! Privilege evaluation: deny-by-default, most-specific-wins,
//! deny-overrides-on-tie.
//!
//! This is the decision procedure both enforcement points share: the twin's
//! reference monitor calls it per command, the policy enforcer calls it per
//! imported change.

use crate::model::{Action, Effect, PrivilegeMsp, Resource};
use serde::{Deserialize, Serialize};

/// The outcome of a privilege check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Permitted by the cited predicate (index into the specification).
    Allowed { by: usize },
    /// Denied by the cited predicate.
    DeniedBy { by: usize },
    /// Denied because nothing matched (the default).
    DeniedDefault,
}

impl Decision {
    /// Whether the request may proceed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, Decision::Allowed { .. })
    }
}

/// Evaluates a request against a specification.
///
/// Among matching predicates the most specific wins (resource specificity,
/// then action concreteness); on an exact tie a deny beats an allow; with
/// no match the request is denied.
pub fn evaluate(spec: &PrivilegeMsp, action: Action, resource: &Resource) -> Decision {
    let mut best: Option<(usize, (u8, u8), Effect)> = None;
    for (i, p) in spec.predicates.iter().enumerate() {
        if !p.matches(action, resource) {
            continue;
        }
        let s = p.specificity();
        match &best {
            None => best = Some((i, s, p.effect)),
            Some((_, bs, beffect)) => {
                if s > *bs || (s == *bs && p.effect == Effect::Deny && *beffect == Effect::Allow) {
                    best = Some((i, s, p.effect));
                }
            }
        }
    }
    match best {
        Some((i, _, Effect::Allow)) => Decision::Allowed { by: i },
        Some((i, _, Effect::Deny)) => Decision::DeniedBy { by: i },
        None => Decision::DeniedDefault,
    }
}

/// Convenience: just the boolean.
pub fn is_allowed(spec: &PrivilegeMsp, action: Action, resource: &Resource) -> bool {
    evaluate(spec, action, resource).is_allowed()
}

/// Counts how many of the twelve actions are allowed on a device-level
/// resource — the `C_n` term of the paper's attack-surface formula.
pub fn allowed_action_count(spec: &PrivilegeMsp, device: &str) -> usize {
    Action::ALL
        .iter()
        .filter(|a| is_allowed(spec, **a, &Resource::Device(device.to_string())))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Predicate, ResourcePattern};

    fn dev(d: &str) -> Resource {
        Resource::Device(d.to_string())
    }

    #[test]
    fn default_is_deny() {
        let spec = PrivilegeMsp::new();
        assert_eq!(
            evaluate(&spec, Action::View, &dev("r1")),
            Decision::DeniedDefault
        );
    }

    #[test]
    fn simple_allow() {
        let spec = PrivilegeMsp::new().with(Predicate::allow(
            Action::ModifyIpAddress,
            ResourcePattern::Device("r1".into()),
        ));
        assert!(is_allowed(&spec, Action::ModifyIpAddress, &dev("r1")));
        assert!(!is_allowed(&spec, Action::ModifyAcl, &dev("r1")));
        assert!(!is_allowed(&spec, Action::ModifyIpAddress, &dev("r2")));
    }

    #[test]
    fn specific_deny_beats_broad_allow() {
        // allow(*, *) but deny(*, h7): h7 stays closed.
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow_all(ResourcePattern::Any))
            .with(Predicate::deny_all(ResourcePattern::Device("h7".into())));
        assert!(is_allowed(&spec, Action::View, &dev("r1")));
        assert!(!is_allowed(&spec, Action::View, &dev("h7")));
    }

    #[test]
    fn specific_allow_pierces_broad_deny() {
        // deny everything on r3 except acl 101.
        let spec = PrivilegeMsp::new()
            .with(Predicate::deny_all(ResourcePattern::Device("r3".into())))
            .with(Predicate::allow(
                Action::ModifyAcl,
                ResourcePattern::Acl {
                    device: "r3".into(),
                    name: "101".into(),
                },
            ));
        let acl101 = Resource::Acl {
            device: "r3".into(),
            name: "101".into(),
        };
        let acl102 = Resource::Acl {
            device: "r3".into(),
            name: "102".into(),
        };
        assert!(is_allowed(&spec, Action::ModifyAcl, &acl101));
        assert!(!is_allowed(&spec, Action::ModifyAcl, &acl102));
        assert!(!is_allowed(&spec, Action::Reboot, &dev("r3")));
    }

    #[test]
    fn tie_denies() {
        // Same specificity, conflicting effects -> deny.
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow(
                Action::Reboot,
                ResourcePattern::Device("r1".into()),
            ))
            .with(Predicate::deny(
                Action::Reboot,
                ResourcePattern::Device("r1".into()),
            ));
        assert!(!is_allowed(&spec, Action::Reboot, &dev("r1")));
        // Order independence.
        let spec2 = PrivilegeMsp::new()
            .with(Predicate::deny(
                Action::Reboot,
                ResourcePattern::Device("r1".into()),
            ))
            .with(Predicate::allow(
                Action::Reboot,
                ResourcePattern::Device("r1".into()),
            ));
        assert!(!is_allowed(&spec2, Action::Reboot, &dev("r1")));
    }

    #[test]
    fn concrete_action_more_specific_than_wildcard() {
        let spec = PrivilegeMsp::new()
            .with(Predicate::deny_all(ResourcePattern::Device("r1".into())))
            .with(Predicate::allow(
                Action::View,
                ResourcePattern::Device("r1".into()),
            ));
        assert!(is_allowed(&spec, Action::View, &dev("r1")));
        assert!(!is_allowed(&spec, Action::Erase, &dev("r1")));
    }

    #[test]
    fn decision_cites_predicate() {
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow_all(ResourcePattern::Any))
            .with(Predicate::deny(
                Action::Erase,
                ResourcePattern::Device("r1".into()),
            ));
        assert_eq!(
            evaluate(&spec, Action::View, &dev("r1")),
            Decision::Allowed { by: 0 }
        );
        assert_eq!(
            evaluate(&spec, Action::Erase, &dev("r1")),
            Decision::DeniedBy { by: 1 }
        );
    }

    #[test]
    fn allowed_action_count_counts() {
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow(
                Action::View,
                ResourcePattern::Device("r1".into()),
            ))
            .with(Predicate::allow(
                Action::Ping,
                ResourcePattern::Device("r1".into()),
            ));
        assert_eq!(allowed_action_count(&spec, "r1"), 2);
        assert_eq!(allowed_action_count(&spec, "r2"), 0);
        assert_eq!(
            allowed_action_count(&PrivilegeMsp::allow_everything(), "x"),
            Action::ALL.len()
        );
    }

    #[test]
    fn interface_grant_does_not_cover_device() {
        let spec = PrivilegeMsp::new().with(Predicate::allow(
            Action::ModifyInterfaceState,
            ResourcePattern::Interface {
                device: "r1".into(),
                iface: "Gi0/0".into(),
            },
        ));
        assert!(!is_allowed(&spec, Action::ModifyInterfaceState, &dev("r1")));
        assert!(is_allowed(
            &spec,
            Action::ModifyInterfaceState,
            &Resource::Interface {
                device: "r1".into(),
                iface: "Gi0/0".into()
            }
        ));
    }
}
