//! Critical-path analysis over stored span trees: where did the
//! end-to-end latency actually go?
//!
//! For every span, *self time* is its duration minus the summed durations
//! of its direct children (saturating — clock skew between spans must
//! not produce negative attributions). Aggregated per stage this answers
//! "which stage made p99 bad" directly: the stage with the most self
//! time is the critical path's top contributor.

use heimdall_telemetry::{Span, SpanId, TraceId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Latency attributed to one pipeline stage within a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    pub stage: String,
    pub count: u64,
    /// Summed wall-clock of the stage's spans (children included).
    pub total_ns: u64,
    /// Time spent in the stage itself: duration minus direct children.
    pub self_ns: u64,
}

/// The critical-path breakdown of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathReport {
    /// Canonical 16-hex trace tag.
    pub trace: String,
    /// Wall-clock of the trace's root span (0 when no root is retained).
    pub total_ns: u64,
    /// Per-stage attribution, worst self-time first.
    pub stages: Vec<StageCost>,
    /// The stage with the most self time (empty for an empty report).
    pub top_contributor: String,
}

impl CriticalPathReport {
    /// The report for a trace with no retained spans.
    pub fn empty(trace: &str) -> CriticalPathReport {
        CriticalPathReport {
            trace: trace.to_string(),
            total_ns: 0,
            stages: Vec::new(),
            top_contributor: String::new(),
        }
    }
}

/// Walks `spans` (one trace's spans, any order) and attributes latency
/// per stage. Returns [`CriticalPathReport::empty`] when `spans` is
/// empty.
pub fn analyze(trace: &str, spans: &[Span]) -> CriticalPathReport {
    if spans.is_empty() {
        return CriticalPathReport::empty(trace);
    }
    // Sum of direct-children durations per parent.
    let mut child_ns: HashMap<SpanId, u64> = HashMap::new();
    for s in spans {
        if let Some(parent) = s.parent {
            *child_ns.entry(parent).or_insert(0) += s.duration_ns;
        }
    }
    let mut by_stage: HashMap<&str, StageCost> = HashMap::new();
    let mut root_ns = 0u64;
    for s in spans {
        let self_ns = s
            .duration_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let entry = by_stage
            .entry(s.stage.as_str())
            .or_insert_with(|| StageCost {
                stage: s.stage.as_str().to_string(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
        entry.count += 1;
        entry.total_ns += s.duration_ns;
        entry.self_ns += self_ns;
        if s.parent.is_none() {
            root_ns = root_ns.max(s.duration_ns);
        }
    }
    let mut stages: Vec<StageCost> = by_stage.into_values().collect();
    stages.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.stage.cmp(&b.stage)));
    let top_contributor = stages.first().map(|s| s.stage.clone()).unwrap_or_default();
    CriticalPathReport {
        trace: trace.to_string(),
        total_ns: root_ns,
        stages,
        top_contributor,
    }
}

/// Picks, among the traces represented in `spans`, the one whose root
/// span duration sits at quantile `q` (0..=1) — e.g. `q = 1.0` is the
/// slowest retained trace, the natural target for a deep dive.
pub fn quantile_trace(spans: &[Span], q: f64) -> Option<TraceId> {
    let mut roots: Vec<(u64, TraceId)> = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| (s.duration_ns, s.trace))
        .collect();
    if roots.is_empty() {
        return None;
    }
    roots.sort_by_key(|&(d, _)| d);
    let rank = ((roots.len() as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
    Some(roots[rank.max(1) - 1].1)
}

/// The top-`k` slowest traces by root duration with their critical-path
/// reports, slowest first — "top-k contributors per quantile" for a
/// dashboard.
pub fn top_k_reports(spans: &[Span], k: usize) -> Vec<CriticalPathReport> {
    let mut roots: Vec<(u64, TraceId)> = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| (s.duration_ns, s.trace))
        .collect();
    roots.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
    roots
        .iter()
        .take(k)
        .map(|&(_, trace)| {
            let of_trace: Vec<Span> = spans.iter().filter(|s| s.trace == trace).cloned().collect();
            analyze(&trace.to_string(), &of_trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_telemetry::{SpanStatus, Stage};

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        stage: Stage,
        start_ns: u64,
        duration_ns: u64,
    ) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            stage,
            actor: "t".to_string(),
            device: None,
            start_ns,
            duration_ns,
            status: SpanStatus::Ok,
            detail: String::new(),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // open_session(1000) ⊃ exec(700) ⊃ console(600); exec is the top
        // self-time contributor (console work is exec's child).
        let spans = vec![
            span(1, 1, None, Stage::OpenSession, 0, 1000),
            span(1, 2, Some(1), Stage::Exec, 100, 700),
            span(1, 3, Some(2), Stage::Console, 150, 600),
        ];
        let report = analyze("0000000000000001", &spans);
        assert_eq!(report.total_ns, 1000);
        assert_eq!(report.top_contributor, "console");
        let get = |name: &str| report.stages.iter().find(|s| s.stage == name).unwrap();
        assert_eq!(get("open_session").self_ns, 300);
        assert_eq!(get("exec").self_ns, 100);
        assert_eq!(get("console").self_ns, 600);
        assert_eq!(get("exec").total_ns, 700);
    }

    #[test]
    fn skewed_clocks_never_go_negative() {
        // Child claims more time than its parent: saturate, don't wrap.
        let spans = vec![
            span(1, 1, None, Stage::Exec, 0, 100),
            span(1, 2, Some(1), Stage::Console, 0, 500),
        ];
        let report = analyze("t", &spans);
        let exec = report.stages.iter().find(|s| s.stage == "exec").unwrap();
        assert_eq!(exec.self_ns, 0);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = analyze("dead", &[]);
        assert_eq!(report, CriticalPathReport::empty("dead"));
    }

    #[test]
    fn quantile_and_top_k_pick_by_root_duration() {
        let spans: Vec<Span> = (1..=10u64)
            .map(|i| span(i, i * 100, None, Stage::OpenSession, 0, i * 1000))
            .collect();
        assert_eq!(quantile_trace(&spans, 1.0), Some(TraceId(10)));
        assert_eq!(quantile_trace(&spans, 0.5), Some(TraceId(5)));
        assert_eq!(quantile_trace(&[], 0.5), None);
        let top = top_k_reports(&spans, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].total_ns, 10_000);
        assert_eq!(top[2].total_ns, 8_000);
    }
}
