//! # heimdall-obs
//!
//! Second-generation observability for the Heimdall pipeline, consuming
//! `heimdall-telemetry` rather than replacing it. The paper's RMM model
//! is Remote Management **and Monitoring**; PR 2 gave the management
//! pipeline an instantaneous view (spans, histograms, flight recorder) —
//! this crate adds history, judgment, and attribution:
//!
//! - [`store`] — a lock-light [`store::TimeSeriesStore`]: fixed-capacity
//!   per-series rings with tiered downsampling (raw → 16-sample →
//!   256-sample min/max/sum/count aggregates), fed by the broker's
//!   scrape loop and queried over the wire via `TimeQuery`;
//! - [`slo`] — an [`slo::SloEngine`] evaluating declarative rules as
//!   multi-window burn rates; alerts carry exemplar trace tags harvested
//!   from the worst spans, so every alert pivots into `TraceQuery` and
//!   the audit chain;
//! - [`critical`] — a critical-path analyzer walking stored span trees
//!   and attributing end-to-end latency per stage (self-time vs
//!   child-time, top-k contributors per quantile);
//! - [`bus`] — a push-based [`bus::EventBus`] fanning typed
//!   [`bus::ObsEvent`]s out through bounded per-subscriber queues with
//!   `Lagged` gap markers and slow-consumer eviction, feeding the net
//!   layer's `Subscribe`/`Event` frames.
//!
//! The "watching the watchmen" twist: monitoring reads of twin devices
//! go *through* `ReferenceMonitor::mediate` with read-only privileges —
//! scraping a device a technician may not view is a recorded denial (see
//! `heimdall_twin::TwinSession::poll_counters`), not a silent leak.

pub mod bus;
pub mod critical;
pub mod slo;
pub mod store;

pub use bus::{BusConfig, BusStats, DeliverOutcome, EventBus, EventSink, ObsEvent, Topic};
pub use critical::{analyze, quantile_trace, top_k_reports, CriticalPathReport, StageCost};
pub use slo::{harvest_exemplar, Alert, SloEngine, SloKind, SloOutcome, SloRule};
pub use store::{
    is_canonical_series, Bucket, Resolution, Series, SeriesConfig, TimeSeriesStore, FOLD,
};

/// Configuration for one broker's observability layer.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    pub series: SeriesConfig,
    /// SLO rules the scrape loop evaluates; see [`ObsConfig::default`]
    /// for the built-in set.
    pub rules: Vec<SloRule>,
    /// Alert history retained for `AlertQuery`.
    pub max_alerts: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            series: SeriesConfig::default(),
            rules: vec![
                // Mirrors the flight recorder's latency trigger: mediated
                // execs are µs-scale, 250ms of p99 is an excursion.
                SloRule::ceiling("exec_p99", "stage.exec.p99_ns", 250_000_000.0),
                // A handful of denials per scrape is a probing client.
                SloRule::rate("denial_rate", "service.denials_total", 8.0),
                // Optimistic-commit conflicts are expected under
                // contention; a sustained storm is not.
                SloRule::rate(
                    "commit_conflict_rate",
                    "service.commit_conflicts_total",
                    64.0,
                ),
                // The enforcer rejecting change-sets repeatedly means a
                // technician (or automation) keeps submitting bad diffs.
                SloRule::rate("verify_failure_rate", "enforcer.verify_failures_total", 8.0),
            ],
            max_alerts: 256,
        }
    }
}
