//! Push-based event fan-out: the [`EventBus`] behind `Subscribe` frames.
//!
//! PR 3 made every observability surface poll-only; this module inverts
//! it. Producers (the broker's scrape loop, the audit sink, the net
//! front-end) publish typed [`ObsEvent`]s; each subscriber owns a
//! *bounded* queue drained into an [`EventSink`] (the net layer wraps a
//! connection's write queue behind one). Three invariants:
//!
//! - **Never unbounded memory.** A full subscriber queue drops the event
//!   and counts it. When room reappears, a typed [`ObsEvent::Lagged`]
//!   gap marker is queued *at the gap position* so the subscriber knows
//!   exactly how many events it missed — the stream is a tamper-evident
//!   record with explicit holes, never a silent sample.
//! - **Slow consumers die, fast consumers are untouched.** A subscriber
//!   that accumulates more than [`BusConfig::max_dropped`] lifetime drops
//!   is evicted through its sink (the net layer slams the connection,
//!   same as PR 6's slow-consumer eviction). Fan-out is per-subscriber:
//!   one stalled queue never delays another.
//! - **Tenant scoping is enforced at delivery.** Fleet-scoped topics
//!   (SLO, recorder, net, metrics) reach any authorized subscriber;
//!   tenant-scoped events (audit appends, analyzer findings) only ever
//!   reach the tenant they concern. Authorization to subscribe at all is
//!   the broker's job (mediated through the `ReferenceMonitor`); the bus
//!   enforces the data-plane filter.

use crate::slo::Alert;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Event families a subscriber opts into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topic {
    /// SLO trips and re-arms from any shard's scrape loop.
    Slo,
    /// Flight-recorder dumps becoming available.
    Recorder,
    /// Static-analysis findings surfaced at session intake.
    Analyzer,
    /// Audit-chain appends (the subscriber's own entries only).
    Audit,
    /// Net-layer counters crossing configured thresholds.
    Net,
    /// Fleet-wide metrics snapshot changed.
    Metrics,
}

impl Topic {
    pub const ALL: [Topic; 6] = [
        Topic::Slo,
        Topic::Recorder,
        Topic::Analyzer,
        Topic::Audit,
        Topic::Net,
        Topic::Metrics,
    ];

    /// Fleet-scoped topics carry data about shared infrastructure and
    /// need a mediated read privilege; tenant-scoped topics only ever
    /// show a tenant its own records.
    pub fn fleet_scoped(self) -> bool {
        matches!(
            self,
            Topic::Slo | Topic::Recorder | Topic::Net | Topic::Metrics
        )
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Topic::Slo => "slo",
            Topic::Recorder => "recorder",
            Topic::Analyzer => "analyzer",
            Topic::Audit => "audit",
            Topic::Net => "net",
            Topic::Metrics => "metrics",
        }
    }
}

/// One pushed observability event. Payloads are plain strings/numbers so
/// the wire shape stays stable even as the producing crates evolve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// An SLO rule tripped on `shard`; the full alert rides along.
    SloTrip { shard: usize, alert: Alert },
    /// A previously tripped rule re-armed (short window clean again).
    SloRearm {
        shard: usize,
        rule: String,
        at_ns: u64,
    },
    /// The flight recorder produced a dump (burst/latency anomaly).
    RecorderDump {
        shard: usize,
        kind: String,
        spans: usize,
        at_ns: u64,
    },
    /// The static analyzer flagged a finding at session intake.
    AnalyzerFinding {
        shard: usize,
        technician: String,
        code: String,
        severity: String,
        device: String,
        at_ns: u64,
    },
    /// An entry was appended to the tamper-evident audit chain.
    AuditAppend {
        shard: usize,
        seq: u64,
        kind: String,
        actor: String,
        trace: String,
        at_ns: u64,
    },
    /// A net-layer counter crossed its configured threshold.
    NetThreshold {
        counter: String,
        value: u64,
        threshold: u64,
        at_ns: u64,
    },
    /// The fleet-wide metrics snapshot changed since the last scrape.
    MetricsDelta {
        shards: usize,
        changed: String,
        at_ns: u64,
    },
    /// Gap marker: this subscriber's queue overflowed and `dropped`
    /// events were discarded between the previous event and the next.
    Lagged { dropped: u64 },
}

impl ObsEvent {
    /// The topic this event publishes under; `None` for [`ObsEvent::Lagged`],
    /// which is injected per-subscriber and never published fleet-wide.
    pub fn topic(&self) -> Option<Topic> {
        match self {
            ObsEvent::SloTrip { .. } | ObsEvent::SloRearm { .. } => Some(Topic::Slo),
            ObsEvent::RecorderDump { .. } => Some(Topic::Recorder),
            ObsEvent::AnalyzerFinding { .. } => Some(Topic::Analyzer),
            ObsEvent::AuditAppend { .. } => Some(Topic::Audit),
            ObsEvent::NetThreshold { .. } => Some(Topic::Net),
            ObsEvent::MetricsDelta { .. } => Some(Topic::Metrics),
            ObsEvent::Lagged { .. } => None,
        }
    }

    /// The tenant this event concerns, or `None` for fleet-scoped
    /// events. Tenant-scoped events are only ever delivered to
    /// subscribers whose bound identity matches.
    pub fn scope(&self) -> Option<&str> {
        match self {
            ObsEvent::AnalyzerFinding { technician, .. } => Some(technician),
            ObsEvent::AuditAppend { actor, .. } => Some(actor),
            _ => None,
        }
    }
}

/// Where one delivery attempt landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverOutcome {
    /// The sink accepted the event.
    Delivered,
    /// The sink is momentarily full; the event stays queued and the bus
    /// retries on the next publish or [`EventBus::pump`].
    Busy,
    /// The sink is permanently dead (connection closed); the subscriber
    /// is garbage-collected.
    Gone,
}

/// Downstream half of one subscriber. The net layer implements this over
/// a connection's bounded write queue; tests implement it in-memory.
pub trait EventSink: Send + Sync {
    /// Attempt to hand one event to the consumer, without blocking.
    fn deliver(&self, event: &ObsEvent) -> DeliverOutcome;
    /// Permanently cut the consumer off (slow-consumer eviction). The
    /// bus calls this at most once per subscriber.
    fn evict(&self);
}

/// Bounds for every subscriber on a bus.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Per-subscriber queue depth (events buffered while the sink is
    /// busy). One slot is spent on a `Lagged` marker after an overflow.
    pub queue_depth: usize,
    /// Lifetime dropped-event budget; a subscriber exceeding it is
    /// evicted through its sink.
    pub max_dropped: u64,
}

impl Default for BusConfig {
    fn default() -> BusConfig {
        BusConfig {
            queue_depth: 64,
            max_dropped: 256,
        }
    }
}

struct Subscriber {
    id: u64,
    tenant: String,
    topics: Vec<Topic>,
    sink: Box<dyn EventSink>,
    queue: VecDeque<ObsEvent>,
    /// Drops since the last `Lagged` marker was queued.
    gap: u64,
    total_dropped: u64,
    dead: bool,
}

impl Subscriber {
    fn wants(&self, event: &ObsEvent) -> bool {
        let Some(topic) = event.topic() else {
            return false;
        };
        if !self.topics.contains(&topic) {
            return false;
        }
        match event.scope() {
            Some(owner) => owner == self.tenant,
            None => true,
        }
    }
}

/// Counters over the bus's lifetime, for `MetricsQuery` and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Live subscribers right now.
    pub subscribers: u64,
    /// Events offered to `publish` (before fan-out).
    pub published: u64,
    /// Events (incl. `Lagged` markers) handed to sinks.
    pub delivered: u64,
    /// Events discarded across all subscriber queues.
    pub dropped: u64,
    /// `Lagged` markers queued.
    pub lagged_markers: u64,
    /// Subscribers evicted for exceeding the drop budget.
    pub evicted: u64,
}

/// Per-subscriber bounded fan-out. All methods are safe from any thread;
/// fan-out runs under one mutex but each sink's `deliver` is non-blocking
/// by contract, so the critical section stays short.
pub struct EventBus {
    config: BusConfig,
    subs: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    lagged_markers: AtomicU64,
    evicted: AtomicU64,
}

impl EventBus {
    pub fn new(config: BusConfig) -> EventBus {
        EventBus {
            config: BusConfig {
                queue_depth: config.queue_depth.max(2),
                max_dropped: config.max_dropped.max(1),
            },
            subs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            lagged_markers: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Registers a subscriber; returns its bus-assigned id. Topics are
    /// deduplicated. Authorization must already have happened — the bus
    /// only enforces tenant scoping of individual events.
    pub fn subscribe(&self, tenant: &str, topics: &[Topic], sink: Box<dyn EventSink>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut dedup = Vec::new();
        for t in topics {
            if !dedup.contains(t) {
                dedup.push(*t);
            }
        }
        self.subs.lock().push(Subscriber {
            id,
            tenant: tenant.to_string(),
            topics: dedup,
            sink,
            queue: VecDeque::new(),
            gap: 0,
            total_dropped: 0,
            dead: false,
        });
        id
    }

    /// Removes a subscriber without evicting its sink (the consumer
    /// asked to stop). Returns whether the id was live.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = self.subs.lock();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        before != subs.len()
    }

    /// Fans `event` out to every matching subscriber, respecting queue
    /// bounds, then drains what it can. Never blocks on a consumer.
    pub fn publish(&self, event: &ObsEvent) {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut subs = self.subs.lock();
        for sub in subs.iter_mut() {
            if sub.dead || !sub.wants(event) {
                continue;
            }
            self.enqueue(sub, event);
            self.drain(sub);
        }
        subs.retain(|s| !s.dead);
    }

    /// Retries delivery for subscribers whose sinks reported `Busy`.
    /// The server's background loop calls this every tick so a queue
    /// drains even when no new event arrives.
    pub fn pump(&self) {
        let mut subs = self.subs.lock();
        for sub in subs.iter_mut() {
            if !sub.dead {
                self.drain(sub);
            }
        }
        subs.retain(|s| !s.dead);
    }

    pub fn stats(&self) -> BusStats {
        BusStats {
            subscribers: self.subs.lock().len() as u64,
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            lagged_markers: self.lagged_markers.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Queue `event` for one subscriber: a gap marker first if drops
    /// accumulated, the event itself if room remains, a counted drop
    /// otherwise. Crossing the drop budget evicts.
    fn enqueue(&self, sub: &mut Subscriber, event: &ObsEvent) {
        if sub.queue.len() < self.config.queue_depth && sub.gap > 0 {
            sub.queue.push_back(ObsEvent::Lagged { dropped: sub.gap });
            self.lagged_markers.fetch_add(1, Ordering::Relaxed);
            sub.gap = 0;
        }
        if sub.queue.len() < self.config.queue_depth {
            sub.queue.push_back(event.clone());
        } else {
            sub.gap += 1;
            sub.total_dropped += 1;
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if sub.total_dropped > self.config.max_dropped {
                sub.sink.evict();
                sub.dead = true;
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Push queued events into the sink until it reports busy or the
    /// queue empties. A `Gone` sink marks the subscriber for removal.
    fn drain(&self, sub: &mut Subscriber) {
        while let Some(front) = sub.queue.front() {
            match sub.sink.deliver(front) {
                DeliverOutcome::Delivered => {
                    sub.queue.pop_front();
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                }
                DeliverOutcome::Busy => break,
                DeliverOutcome::Gone => {
                    sub.dead = true;
                    break;
                }
            }
        }
    }
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new(BusConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// In-memory sink with a switchable busy flag.
    struct TestSink {
        got: Arc<Mutex<Vec<ObsEvent>>>,
        busy: Arc<AtomicBool>,
        evicted: Arc<AtomicBool>,
    }

    #[allow(clippy::type_complexity)]
    fn sink() -> (
        Box<TestSink>,
        Arc<Mutex<Vec<ObsEvent>>>,
        Arc<AtomicBool>,
        Arc<AtomicBool>,
    ) {
        let got = Arc::new(Mutex::new(Vec::new()));
        let busy = Arc::new(AtomicBool::new(false));
        let evicted = Arc::new(AtomicBool::new(false));
        (
            Box::new(TestSink {
                got: Arc::clone(&got),
                busy: Arc::clone(&busy),
                evicted: Arc::clone(&evicted),
            }),
            got,
            busy,
            evicted,
        )
    }

    impl EventSink for TestSink {
        fn deliver(&self, event: &ObsEvent) -> DeliverOutcome {
            if self.busy.load(Ordering::Acquire) {
                return DeliverOutcome::Busy;
            }
            self.got.lock().push(event.clone());
            DeliverOutcome::Delivered
        }

        fn evict(&self) {
            self.evicted.store(true, Ordering::Release);
        }
    }

    fn net_event(i: u64) -> ObsEvent {
        ObsEvent::NetThreshold {
            counter: "accepted_total".into(),
            value: i,
            threshold: 0,
            at_ns: i,
        }
    }

    fn audit_event(actor: &str) -> ObsEvent {
        ObsEvent::AuditAppend {
            shard: 0,
            seq: 1,
            kind: "Command".into(),
            actor: actor.into(),
            trace: String::new(),
            at_ns: 0,
        }
    }

    #[test]
    fn tenant_scoped_events_never_cross_tenants() {
        let bus = EventBus::default();
        let (sa, got_a, _, _) = sink();
        let (sb, got_b, _, _) = sink();
        bus.subscribe("alice", &[Topic::Audit, Topic::Net], sa);
        bus.subscribe("bob", &[Topic::Audit, Topic::Net], sb);
        bus.publish(&audit_event("alice"));
        bus.publish(&net_event(7));
        // Alice sees her audit append plus the fleet event; Bob only the
        // fleet event.
        assert_eq!(got_a.lock().len(), 2);
        let bob = got_b.lock();
        assert_eq!(bob.len(), 1);
        assert!(matches!(bob[0], ObsEvent::NetThreshold { .. }));
    }

    #[test]
    fn unsubscribed_topics_are_filtered() {
        let bus = EventBus::default();
        let (s, got, _, _) = sink();
        bus.subscribe("t", &[Topic::Slo], s);
        bus.publish(&net_event(1));
        assert!(got.lock().is_empty());
    }

    #[test]
    fn stalled_subscriber_gets_gap_marker_with_exact_count() {
        let bus = EventBus::new(BusConfig {
            queue_depth: 2,
            max_dropped: 1_000,
        });
        let (s, got, busy, _) = sink();
        bus.subscribe("t", &[Topic::Net], s);
        busy.store(true, Ordering::Release);
        // Queue depth 2: events 0,1 buffer; 2..7 drop (6 events).
        for i in 0..8 {
            bus.publish(&net_event(i));
        }
        assert!(got.lock().is_empty(), "busy sink receives nothing");
        busy.store(false, Ordering::Release);
        bus.pump(); // Drains the two buffered events.
        bus.publish(&net_event(8)); // Room again → marker + event.
        let seen = got.lock();
        let values: Vec<_> = seen
            .iter()
            .map(|e| match e {
                ObsEvent::NetThreshold { value, .. } => format!("v{value}"),
                ObsEvent::Lagged { dropped } => format!("lag{dropped}"),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(values, ["v0", "v1", "lag6", "v8"]);
        let stats = bus.stats();
        // Conservation: published = delivered-events + dropped.
        assert_eq!(stats.published, 9);
        assert_eq!(stats.dropped, 6);
        assert_eq!(stats.delivered, 4); // 3 events + 1 marker
        assert_eq!(stats.lagged_markers, 1);
    }

    #[test]
    fn drop_budget_evicts_slow_subscriber_only() {
        let bus = EventBus::new(BusConfig {
            queue_depth: 2,
            max_dropped: 3,
        });
        let (slow, _, busy, evicted) = sink();
        let (fast, got_fast, _, fast_evicted) = sink();
        bus.subscribe("slow", &[Topic::Net], slow);
        bus.subscribe("fast", &[Topic::Net], fast);
        busy.store(true, Ordering::Release);
        for i in 0..10 {
            bus.publish(&net_event(i));
        }
        assert!(evicted.load(Ordering::Acquire), "budget crossed → evicted");
        assert!(!fast_evicted.load(Ordering::Acquire));
        assert_eq!(got_fast.lock().len(), 10, "fast subscriber lost nothing");
        let stats = bus.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.subscribers, 1, "dead subscriber garbage-collected");
    }

    #[test]
    fn unsubscribe_stops_delivery_without_eviction() {
        let bus = EventBus::default();
        let (s, got, _, evicted) = sink();
        let id = bus.subscribe("t", &[Topic::Net], s);
        bus.publish(&net_event(1));
        assert!(bus.unsubscribe(id));
        assert!(!bus.unsubscribe(id), "second unsubscribe is a no-op");
        bus.publish(&net_event(2));
        assert_eq!(got.lock().len(), 1);
        assert!(!evicted.load(Ordering::Acquire));
    }

    #[test]
    fn gone_sink_is_garbage_collected() {
        struct GoneSink;
        impl EventSink for GoneSink {
            fn deliver(&self, _: &ObsEvent) -> DeliverOutcome {
                DeliverOutcome::Gone
            }
            fn evict(&self) {}
        }
        let bus = EventBus::default();
        bus.subscribe("t", &[Topic::Net], Box::new(GoneSink));
        bus.publish(&net_event(1));
        assert_eq!(bus.stats().subscribers, 0);
    }
}
