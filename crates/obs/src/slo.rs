//! The SLO engine: declarative rules evaluated as multi-window burn
//! rates over the time-series store.
//!
//! Each rule watches one series through two windows of scrape points — a
//! short window (fast detection) and a long window (flap suppression).
//! Per window, the *burn rate* is the fraction of breaching points
//! divided by the rule's error budget (`burn_threshold`); the rule fires
//! only when **both** windows burn at ≥ 1.0 — the classic SRE
//! multi-window pattern: the short window alone would page on a single
//! noisy scrape, the long window alone would page minutes late.
//!
//! A fired rule trips a debounce latch (the flight recorder's trip/re-arm
//! pattern) so one sustained excursion yields exactly one alert; the
//! latch re-arms once the short window is clean again. Every alert
//! carries an exemplar trace tag harvested from the worst span in the
//! window, so operators pivot straight from alert → `TraceQuery` → the
//! audit chain.

use crate::store::TimeSeriesStore;
use heimdall_telemetry::{SpanStatus, Stage, Telemetry, STAGE_DURATION_METRIC};
use serde::{Deserialize, Serialize};

/// What a rule checks about its series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SloKind {
    /// Each scrape point must stay at or below `max` (gauge series, e.g.
    /// a stage p99).
    Ceiling { max: f64 },
    /// The increase between consecutive scrape points must stay at or
    /// below `max` (cumulative counter series, e.g. denials).
    RatePerScrape { max: f64 },
}

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloRule {
    pub name: String,
    /// The store series the rule watches.
    pub series: String,
    pub kind: SloKind,
    /// Scrape points in the fast window (≥ 1).
    pub short_window: usize,
    /// Scrape points in the slow window (≥ short_window).
    pub long_window: usize,
    /// Error budget: fraction of window points allowed to breach before
    /// the window counts as burning (0 < x ≤ 1).
    pub burn_threshold: f64,
}

impl SloRule {
    /// A ceiling rule with the 4/16-point windows and a half-window
    /// budget — the defaults every built-in rule uses.
    pub fn ceiling(name: &str, series: &str, max: f64) -> SloRule {
        SloRule {
            name: name.to_string(),
            series: series.to_string(),
            kind: SloKind::Ceiling { max },
            short_window: 4,
            long_window: 16,
            burn_threshold: 0.5,
        }
    }

    /// A per-scrape rate rule over a cumulative counter series.
    pub fn rate(name: &str, series: &str, max_per_scrape: f64) -> SloRule {
        SloRule {
            kind: SloKind::RatePerScrape {
                max: max_per_scrape,
            },
            ..SloRule::ceiling(name, series, 0.0)
        }
    }

    /// Breach fraction over the last `window` points, or `None` while
    /// the window is not yet fully populated (cold starts never burn).
    fn breach_fraction(&self, store: &TimeSeriesStore, window: usize) -> Option<f64> {
        match &self.kind {
            SloKind::Ceiling { max } => {
                let points = store.tail(&self.series, window);
                if points.len() < window {
                    return None;
                }
                let breaches = points.iter().filter(|&&(_, v)| v > *max).count();
                Some(breaches as f64 / window as f64)
            }
            SloKind::RatePerScrape { max } => {
                // Deltas need one extra point.
                let points = store.tail(&self.series, window + 1);
                if points.len() < window + 1 {
                    return None;
                }
                let breaches = points.windows(2).filter(|w| w[1].1 - w[0].1 > *max).count();
                Some(breaches as f64 / window as f64)
            }
        }
    }
}

/// A fired SLO rule, ready for the `AlertQuery` wire frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    pub rule: String,
    pub series: String,
    pub fired_at_ns: u64,
    /// Short-window burn rate at fire time (≥ 1.0 by construction).
    pub burn_short: f64,
    pub burn_long: f64,
    /// Canonical 16-hex trace tag of the worst span in the window;
    /// empty when no tagged span was available.
    pub exemplar_trace: String,
    pub detail: String,
}

/// What one [`SloEngine::evaluate_detailed`] pass changed: the alerts
/// that fired and the rules whose latches re-armed. Push-based consumers
/// (the event bus) need both edges; poll-based consumers only count
/// `fired`.
#[derive(Debug, Clone, Default)]
pub struct SloOutcome {
    /// Alerts that fired this pass, in rule order.
    pub fired: Vec<Alert>,
    /// Names of rules whose trip latch re-armed this pass (the short
    /// window went clean after a trip).
    pub rearmed: Vec<String>,
}

/// Evaluates rules against the store; owns the debounce latches and the
/// bounded alert history.
pub struct SloEngine {
    rules: Vec<SloRule>,
    tripped: Vec<bool>,
    alerts: Vec<Alert>,
    max_alerts: usize,
    total_fired: u64,
}

impl SloEngine {
    pub fn new(rules: Vec<SloRule>, max_alerts: usize) -> SloEngine {
        let tripped = vec![false; rules.len()];
        SloEngine {
            rules,
            tripped,
            alerts: Vec::new(),
            max_alerts: max_alerts.max(1),
            total_fired: 0,
        }
    }

    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Alerts fired so far, oldest first (bounded to `max_alerts`).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Lifetime count of alerts fired, unaffected by the history cap.
    pub fn total_fired(&self) -> u64 {
        self.total_fired
    }

    /// Evaluates every rule once against the store; `exemplar` supplies
    /// the worst-span trace tag for a firing rule. Returns how many new
    /// alerts fired this pass.
    pub fn evaluate(
        &mut self,
        store: &TimeSeriesStore,
        now_ns: u64,
        exemplar: impl FnMut(&SloRule) -> String,
    ) -> usize {
        self.evaluate_detailed(store, now_ns, exemplar).fired.len()
    }

    /// Like [`SloEngine::evaluate`], but reports both edges of the trip
    /// latch: the alerts that fired *and* the rules that re-armed. The
    /// event bus streams both so a subscriber sees the excursion end,
    /// not just begin.
    pub fn evaluate_detailed(
        &mut self,
        store: &TimeSeriesStore,
        now_ns: u64,
        mut exemplar: impl FnMut(&SloRule) -> String,
    ) -> SloOutcome {
        let mut outcome = SloOutcome::default();
        for (i, rule) in self.rules.iter().enumerate() {
            let threshold = rule.burn_threshold.max(f64::EPSILON);
            let short = rule.short_window.max(1);
            let long = rule.long_window.max(short);
            let (Some(frac_short), Some(frac_long)) = (
                rule.breach_fraction(store, short),
                rule.breach_fraction(store, long),
            ) else {
                continue;
            };
            let burn_short = frac_short / threshold;
            let burn_long = frac_long / threshold;
            if burn_short >= 1.0 && burn_long >= 1.0 {
                if !self.tripped[i] {
                    self.tripped[i] = true;
                    self.total_fired += 1;
                    let alert = Alert {
                        rule: rule.name.clone(),
                        series: rule.series.clone(),
                        fired_at_ns: now_ns,
                        burn_short,
                        burn_long,
                        exemplar_trace: exemplar(rule),
                        detail: format!(
                            "{}: burn {burn_short:.2}x/{burn_long:.2}x over {short}/{long} scrapes",
                            rule.name
                        ),
                    };
                    outcome.fired.push(alert.clone());
                    self.alerts.push(alert);
                    if self.alerts.len() > self.max_alerts {
                        let overflow = self.alerts.len() - self.max_alerts;
                        self.alerts.drain(..overflow);
                    }
                }
            } else if burn_short < 1.0 {
                // Re-arm only once the fast window is clean: a sustained
                // excursion stays one alert, a fresh one fires anew.
                if self.tripped[i] {
                    outcome.rearmed.push(rule.name.clone());
                }
                self.tripped[i] = false;
            }
        }
        outcome
    }
}

/// Harvests the exemplar trace tag for a firing `rule` from the
/// telemetry hub: stage-latency rules read the tagged worst sample off
/// the stage histogram; denial/rejection rate rules take the most recent
/// matching span from the ring; anything else falls back to the slowest
/// recent span.
pub fn harvest_exemplar(telemetry: &Telemetry, rule: &SloRule) -> String {
    // `stage.<name>.p99_ns` (or `.p50_ns`): the histogram's own exemplar.
    if let Some(stage_name) = rule
        .series
        .strip_prefix("stage.")
        .and_then(|rest| rest.split('.').next())
    {
        if let Some(stage) = Stage::ALL.iter().find(|s| s.as_str() == stage_name) {
            let h = telemetry
                .registry()
                .histogram(STAGE_DURATION_METRIC, &[("stage", stage.as_str())]);
            if let Some((_, trace)) = h.exemplar() {
                return trace.to_string();
            }
        }
    }
    let wanted_status = if rule.series.contains("denial") {
        Some(SpanStatus::Denied)
    } else if rule.series.contains("conflict")
        || rule.series.contains("reject")
        || rule.series.contains("verify_failures")
    {
        Some(SpanStatus::Rejected)
    } else {
        None
    };
    let recent = telemetry.ring().tail(256);
    if let Some(status) = wanted_status {
        if let Some(span) = recent.iter().rev().find(|s| s.status == status) {
            return span.trace.to_string();
        }
    }
    recent
        .iter()
        .max_by_key(|s| s.duration_ns)
        .map(|s| s.trace.to_string())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SeriesConfig;

    fn store_with(series: &str, values: &[f64]) -> TimeSeriesStore {
        let store = TimeSeriesStore::new(SeriesConfig::default());
        for (i, v) in values.iter().enumerate() {
            store.push(series, i as u64, *v);
        }
        store
    }

    #[test]
    fn ceiling_rule_fires_once_per_excursion_and_rearms() {
        let rule = SloRule::ceiling("p99", "lat", 100.0);
        let mut engine = SloEngine::new(vec![rule], 64);
        let store = TimeSeriesStore::default();
        let mut t = 0u64;
        let mut scrape = |engine: &mut SloEngine, store: &TimeSeriesStore, v: f64| {
            store.push("lat", t, v);
            t += 1;
            engine.evaluate(store, t, |_| "cafe0123deadbeef".to_string())
        };
        // Quiet warm-up: windows fill, nothing fires.
        let mut total = 0;
        for _ in 0..20 {
            total += scrape(&mut engine, &store, 50.0);
        }
        assert_eq!(total, 0, "quiet run must fire nothing");
        // Sustained excursion: long window needs ≥ 8/16 breaches.
        let mut fired_at = Vec::new();
        for i in 0..12 {
            if scrape(&mut engine, &store, 500.0) > 0 {
                fired_at.push(i);
            }
        }
        assert_eq!(fired_at.len(), 1, "one excursion, one alert: {fired_at:?}");
        let alert = &engine.alerts()[0];
        assert_eq!(alert.rule, "p99");
        assert_eq!(alert.exemplar_trace, "cafe0123deadbeef");
        assert!(alert.burn_short >= 1.0 && alert.burn_long >= 1.0);
        // Recovery cleans the short window → re-arm → a second excursion
        // fires again.
        for _ in 0..20 {
            assert_eq!(scrape(&mut engine, &store, 50.0), 0);
        }
        for _ in 0..12 {
            scrape(&mut engine, &store, 500.0);
        }
        assert_eq!(engine.alerts().len(), 2);
    }

    #[test]
    fn rate_rule_watches_deltas_not_levels() {
        let rule = SloRule::rate("denials", "d", 2.0);
        let mut engine = SloEngine::new(vec![rule], 8);
        // A high but flat counter never fires…
        let store = store_with("d", &[900.0; 40]);
        assert_eq!(engine.evaluate(&store, 1, |_| String::new()), 0);
        // …but a counter climbing 10/scrape does.
        let climbing: Vec<f64> = (0..40).map(|i| (i * 10) as f64).collect();
        let store = store_with("d", &climbing);
        assert_eq!(engine.evaluate(&store, 2, |_| String::new()), 1);
    }

    #[test]
    fn cold_store_never_burns() {
        let rule = SloRule::ceiling("p99", "lat", 1.0);
        let mut engine = SloEngine::new(vec![rule], 8);
        // Fewer points than the long window — even all-breaching.
        let store = store_with("lat", &[999.0; 10]);
        assert_eq!(engine.evaluate(&store, 1, |_| String::new()), 0);
    }

    #[test]
    fn detailed_outcome_reports_both_latch_edges() {
        let rule = SloRule {
            short_window: 1,
            long_window: 1,
            ..SloRule::ceiling("p", "s", 0.0)
        };
        let mut engine = SloEngine::new(vec![rule], 8);
        let store = TimeSeriesStore::default();
        // Breach → trip.
        store.push("s", 0, 5.0);
        let out = engine.evaluate_detailed(&store, 0, |_| String::new());
        assert_eq!(out.fired.len(), 1);
        assert!(out.rearmed.is_empty());
        // Still breaching → latched, no edge.
        store.push("s", 1, 5.0);
        let out = engine.evaluate_detailed(&store, 1, |_| String::new());
        assert!(out.fired.is_empty() && out.rearmed.is_empty());
        // Clean → re-arm edge, exactly once.
        store.push("s", 2, -5.0);
        let out = engine.evaluate_detailed(&store, 2, |_| String::new());
        assert_eq!(out.rearmed, vec!["p".to_string()]);
        store.push("s", 3, -5.0);
        let out = engine.evaluate_detailed(&store, 3, |_| String::new());
        assert!(out.rearmed.is_empty(), "re-arm is an edge, not a level");
        assert_eq!(engine.total_fired(), 1);
    }

    #[test]
    fn alert_history_is_bounded() {
        let rule = SloRule {
            short_window: 1,
            long_window: 1,
            ..SloRule::ceiling("p", "s", 0.0)
        };
        let mut engine = SloEngine::new(vec![rule], 3);
        let store = TimeSeriesStore::default();
        for i in 0..10u64 {
            // Alternate breach / clean so the latch re-arms every time.
            store.push("s", 2 * i, 5.0);
            engine.evaluate(&store, 2 * i, |_| String::new());
            store.push("s", 2 * i + 1, -5.0);
            engine.evaluate(&store, 2 * i + 1, |_| String::new());
        }
        assert_eq!(engine.alerts().len(), 3, "history capped at max_alerts");
    }
}
