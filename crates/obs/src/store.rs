//! The time-series store: fixed-capacity per-series rings with tiered
//! downsampling.
//!
//! Each series holds three tiers: raw samples, mid buckets (each folding
//! [`FOLD`] raw samples), and coarse buckets (each folding [`FOLD`] mid
//! buckets, i.e. [`FOLD`]² raw samples). Folding is *exact-once*: a raw
//! sample is folded into precisely one mid bucket before it can be
//! evicted, and a mid bucket into precisely one coarse bucket, so the
//! invariant
//!
//! ```text
//! Σ coarse.sum + Σ unfolded mid.sum + Σ unfolded raw = lifetime sum
//! ```
//!
//! holds at every instant (the concurrency test in `tests/obs_race.rs`
//! asserts it under racing writers and downsamplers). The store is
//! lock-light in the same way as `MetricsRegistry`: the series map is an
//! `RwLock<BTreeMap>` write-locked only on first creation, and each
//! series serializes on its own short mutex.

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Samples per mid bucket, and mid buckets per coarse bucket (so one
/// coarse bucket covers `FOLD²` = 256 raw samples).
pub const FOLD: usize = 16;

/// Which tier a [`TimeQuery`](crate) reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resolution {
    /// Individual samples (each rendered as a one-sample bucket).
    Raw,
    /// 16-sample aggregates.
    Mid,
    /// 256-sample aggregates.
    Coarse,
}

/// One aggregate: min/max/sum/count over a time span. A raw sample is a
/// degenerate bucket with `count == 1` and `start_ns == end_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    pub start_ns: u64,
    pub end_ns: u64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
    pub count: u64,
}

impl Bucket {
    /// The degenerate bucket of one sample.
    pub fn from_sample(t_ns: u64, value: f64) -> Bucket {
        Bucket {
            start_ns: t_ns,
            end_ns: t_ns,
            min: value,
            max: value,
            sum: value,
            count: 1,
        }
    }

    /// Folds `other` into this bucket.
    pub fn merge(&mut self, other: &Bucket) {
        self.start_ns = self.start_ns.min(other.start_ns);
        self.end_ns = self.end_ns.max(other.end_ns);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Per-tier ring capacities.
#[derive(Debug, Clone)]
pub struct SeriesConfig {
    pub raw_capacity: usize,
    pub mid_capacity: usize,
    pub coarse_capacity: usize,
}

impl Default for SeriesConfig {
    fn default() -> SeriesConfig {
        SeriesConfig {
            raw_capacity: 4096,
            mid_capacity: 1024,
            coarse_capacity: 256,
        }
    }
}

impl SeriesConfig {
    /// Capacities floored so a full fold group always fits unfolded.
    fn clamped(&self) -> SeriesConfig {
        SeriesConfig {
            raw_capacity: self.raw_capacity.max(2 * FOLD),
            mid_capacity: self.mid_capacity.max(2 * FOLD),
            coarse_capacity: self.coarse_capacity.max(FOLD),
        }
    }
}

/// Whether `name` is a canonical series name: nonempty, at most 128
/// chars, leading `[a-z]`, then `[a-z0-9_.]`. The wire layer rejects
/// anything else as `BadRequest` before touching the store.
pub fn is_canonical_series(name: &str) -> bool {
    if name.is_empty() || name.len() > 128 {
        return false;
    }
    let mut chars = name.chars();
    let first = chars.next().expect("nonempty");
    first.is_ascii_lowercase()
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
}

#[derive(Default)]
struct SeriesInner {
    raw: VecDeque<(u64, f64)>,
    /// Prefix of `raw` already folded into `mid` (eviction-eligible).
    raw_folded: usize,
    mid: VecDeque<Bucket>,
    /// Prefix of `mid` already folded into `coarse`.
    mid_folded: usize,
    coarse: VecDeque<Bucket>,
    total_count: u64,
    total_sum: f64,
}

impl SeriesInner {
    /// Folds every complete group at both tiers, then evicts folded
    /// overflow down to the ring capacities. Idempotent: with no new
    /// samples a second call does nothing.
    fn downsample(&mut self, cfg: &SeriesConfig) {
        while self.raw.len() - self.raw_folded >= FOLD {
            let mut group: Option<Bucket> = None;
            for i in self.raw_folded..self.raw_folded + FOLD {
                let (t, v) = self.raw[i];
                let sample = Bucket::from_sample(t, v);
                match group.as_mut() {
                    None => group = Some(sample),
                    Some(g) => g.merge(&sample),
                }
            }
            self.mid.push_back(group.expect("FOLD >= 1"));
            self.raw_folded += FOLD;
        }
        while self.raw.len() > cfg.raw_capacity && self.raw_folded > 0 {
            self.raw.pop_front();
            self.raw_folded -= 1;
        }

        while self.mid.len() - self.mid_folded >= FOLD {
            let mut group = self.mid[self.mid_folded];
            for i in self.mid_folded + 1..self.mid_folded + FOLD {
                group.merge(&self.mid[i].clone());
            }
            self.coarse.push_back(group);
            self.mid_folded += FOLD;
        }
        while self.mid.len() > cfg.mid_capacity && self.mid_folded > 0 {
            self.mid.pop_front();
            self.mid_folded -= 1;
        }
        while self.coarse.len() > cfg.coarse_capacity {
            self.coarse.pop_front();
        }
    }
}

/// One named series. Shared as an `Arc` so hot writers skip the map.
#[derive(Default)]
pub struct Series {
    inner: Mutex<SeriesInner>,
}

impl Series {
    /// Appends a sample and folds any completed groups inline, keeping
    /// the rings bounded without a separate downsampler thread.
    pub fn push(&self, t_ns: u64, value: f64, cfg: &SeriesConfig) {
        let mut inner = self.inner.lock();
        inner.raw.push_back((t_ns, value));
        inner.total_count += 1;
        inner.total_sum += value;
        inner.downsample(cfg);
    }
}

/// The store: a registry of per-series tiered rings.
pub struct TimeSeriesStore {
    series: RwLock<BTreeMap<String, Arc<Series>>>,
    cfg: SeriesConfig,
}

impl Default for TimeSeriesStore {
    fn default() -> TimeSeriesStore {
        TimeSeriesStore::new(SeriesConfig::default())
    }
}

impl TimeSeriesStore {
    pub fn new(cfg: SeriesConfig) -> TimeSeriesStore {
        TimeSeriesStore {
            series: RwLock::new(BTreeMap::new()),
            cfg: cfg.clamped(),
        }
    }

    /// The series handle for `name`, created on first use. Hot writers
    /// should hold the `Arc` and call [`Series::push`] directly.
    pub fn series(&self, name: &str) -> Arc<Series> {
        if let Some(s) = self.series.read().get(name) {
            return Arc::clone(s);
        }
        Arc::clone(
            self.series
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Series::default())),
        )
    }

    /// Whether `name` already exists (does not create it).
    pub fn contains(&self, name: &str) -> bool {
        self.series.read().contains_key(name)
    }

    pub fn series_names(&self) -> Vec<String> {
        self.series.read().keys().cloned().collect()
    }

    pub fn config(&self) -> &SeriesConfig {
        &self.cfg
    }

    /// Appends one sample to `name`.
    pub fn push(&self, name: &str, t_ns: u64, value: f64) {
        self.series(name).push(t_ns, value, &self.cfg);
    }

    /// Folds completed groups on every series. `push` already folds
    /// inline; this exists for an external downsampler cadence and is
    /// idempotent.
    pub fn downsample(&self) {
        let all: Vec<Arc<Series>> = self.series.read().values().cloned().collect();
        for s in all {
            s.inner.lock().downsample(&self.cfg);
        }
    }

    /// Buckets of `name` overlapping the inclusive range
    /// `[start_ns, end_ns]` at `resolution`; `None` for unknown series.
    pub fn query(
        &self,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        resolution: Resolution,
    ) -> Option<Vec<Bucket>> {
        let series = Arc::clone(self.series.read().get(name)?);
        let inner = series.inner.lock();
        let overlaps = |b: &Bucket| b.end_ns >= start_ns && b.start_ns <= end_ns;
        Some(match resolution {
            Resolution::Raw => inner
                .raw
                .iter()
                .filter(|(t, _)| *t >= start_ns && *t <= end_ns)
                .map(|&(t, v)| Bucket::from_sample(t, v))
                .collect(),
            Resolution::Mid => inner.mid.iter().filter(|b| overlaps(b)).cloned().collect(),
            Resolution::Coarse => inner
                .coarse
                .iter()
                .filter(|b| overlaps(b))
                .cloned()
                .collect(),
        })
    }

    /// The last `n` raw samples of `name`, oldest first — the SLO
    /// engine's window feed.
    pub fn tail(&self, name: &str, n: usize) -> Vec<(u64, f64)> {
        let Some(series) = self.series.read().get(name).cloned() else {
            return Vec::new();
        };
        let inner = series.inner.lock();
        let skip = inner.raw.len().saturating_sub(n);
        inner.raw.iter().skip(skip).copied().collect()
    }

    /// Lifetime `(count, sum)` of `name` including evicted samples.
    pub fn totals(&self, name: &str) -> Option<(u64, f64)> {
        let series = Arc::clone(self.series.read().get(name)?);
        let inner = series.inner.lock();
        Some((inner.total_count, inner.total_sum))
    }

    /// Lifetime `(name, count, sum)` of every series — the compact form
    /// a durability checkpoint persists.
    pub fn totals_all(&self) -> Vec<(String, u64, f64)> {
        let series: Vec<(String, Arc<Series>)> = self
            .series
            .read()
            .iter()
            .map(|(n, s)| (n.clone(), Arc::clone(s)))
            .collect();
        series
            .into_iter()
            .map(|(name, s)| {
                let inner = s.inner.lock();
                (name, inner.total_count, inner.total_sum)
            })
            .collect()
    }

    /// Seeds `name`'s lifetime counters from a recovered checkpoint.
    /// Intended *before* new samples arrive: the restored baseline is
    /// added to whatever the series has already accumulated, so the
    /// lifetime totals continue across the restart instead of resetting.
    pub fn restore_totals(&self, name: &str, count: u64, sum: f64) {
        let series = self.series(name);
        let mut inner = series.inner.lock();
        inner.total_count += count;
        inner.total_sum += sum;
    }

    /// The three-tier sum decomposition of `name`: coarse plus unfolded
    /// mid plus unfolded raw. Always equals [`TimeSeriesStore::totals`]'
    /// sum — the exact-once folding invariant the race test leans on.
    pub fn tier_sum(&self, name: &str) -> Option<f64> {
        let series = Arc::clone(self.series.read().get(name)?);
        let inner = series.inner.lock();
        let coarse: f64 = inner.coarse.iter().map(|b| b.sum).sum();
        let mid: f64 = inner.mid.iter().skip(inner.mid_folded).map(|b| b.sum).sum();
        let raw: f64 = inner
            .raw
            .iter()
            .skip(inner.raw_folded)
            .map(|&(_, v)| v)
            .sum();
        Some(coarse + mid + raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TimeSeriesStore {
        TimeSeriesStore::new(SeriesConfig {
            raw_capacity: 2 * FOLD,
            mid_capacity: 2 * FOLD,
            coarse_capacity: FOLD,
        })
    }

    #[test]
    fn canonical_series_names() {
        for good in ["a", "stage.exec.p99_ns", "device.fw1.acl_hits", "x9_y"] {
            assert!(is_canonical_series(good), "{good}");
        }
        for bad in ["", "9x", "Stage.exec", "a b", "a-b", "a/b", "日本"] {
            assert!(!is_canonical_series(bad), "{bad:?}");
        }
        assert!(!is_canonical_series(&"a".repeat(129)));
    }

    #[test]
    fn buckets_aggregate_exactly() {
        let store = TimeSeriesStore::default();
        // 10_000 samples of value i at t = i.
        let n = 10_000u64;
        for i in 0..n {
            store.push("s", i, i as f64);
        }
        let expect_sum = (n * (n - 1) / 2) as f64;
        assert_eq!(store.totals("s"), Some((n, expect_sum)));
        assert_eq!(store.tier_sum("s"), Some(expect_sum));

        // Mid buckets cover FOLD consecutive samples exactly.
        let mids = store.query("s", 0, n, Resolution::Mid).unwrap();
        for b in &mids {
            assert_eq!(b.count, FOLD as u64);
            assert_eq!(b.end_ns - b.start_ns + 1, FOLD as u64);
            // Sum of an arithmetic run = count * midpoint.
            let expect = (b.start_ns + b.end_ns) as f64 * FOLD as f64 / 2.0;
            assert_eq!(b.sum, expect, "bucket {b:?}");
            assert_eq!(b.min, b.start_ns as f64);
            assert_eq!(b.max, b.end_ns as f64);
        }
        let coarse = store.query("s", 0, n, Resolution::Coarse).unwrap();
        for b in &coarse {
            assert_eq!(b.count, (FOLD * FOLD) as u64);
        }
        // Raw is capped but mid/coarse carry the history.
        let raw = store.query("s", 0, n, Resolution::Raw).unwrap();
        assert!(raw.len() <= store.config().raw_capacity);
    }

    #[test]
    fn query_ranges_are_inclusive_and_clipped() {
        let store = TimeSeriesStore::default();
        for i in 0..100u64 {
            store.push("s", i * 10, 1.0);
        }
        let raw = store.query("s", 200, 300, Resolution::Raw).unwrap();
        assert_eq!(raw.len(), 11, "inclusive [200, 300] at step 10");
        assert!(store.query("missing", 0, 10, Resolution::Raw).is_none());
        assert!(store
            .query("s", 5_000, 6_000, Resolution::Raw)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn eviction_never_loses_folded_mass() {
        let store = small_store();
        let n = 100_000u64;
        for i in 0..n {
            store.push("s", i, 1.0);
        }
        store.downsample();
        // Raw ring is tiny, coarse ring capped — but totals are exact.
        assert_eq!(store.totals("s"), Some((n, n as f64)));
        let raw = store.query("s", 0, n, Resolution::Raw).unwrap();
        assert!(raw.len() <= store.config().raw_capacity);
        let coarse = store.query("s", 0, n, Resolution::Coarse).unwrap();
        assert!(coarse.len() <= store.config().coarse_capacity);
        // Every surviving coarse bucket still aggregates FOLD² samples.
        assert!(coarse.iter().all(|b| b.count == (FOLD * FOLD) as u64));
    }

    #[test]
    fn tail_returns_newest_samples_in_order() {
        let store = TimeSeriesStore::default();
        for i in 0..50u64 {
            store.push("s", i, i as f64);
        }
        let t = store.tail("s", 5);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], (45, 45.0));
        assert_eq!(t[4], (49, 49.0));
        assert!(store.tail("missing", 5).is_empty());
    }

    #[test]
    fn restored_totals_continue_across_restart() {
        let store = TimeSeriesStore::default();
        for i in 0..10u64 {
            store.push("svc.counter", i, 2.0);
        }
        let dumped = store.totals_all();
        assert_eq!(dumped.len(), 1);
        let (ref name, count, sum) = dumped[0];
        assert_eq!((name.as_str(), count, sum), ("svc.counter", 10, 20.0));
        // "Restart": a fresh store seeds the checkpointed totals, then
        // keeps counting from there.
        let fresh = TimeSeriesStore::default();
        fresh.restore_totals(name, count, sum);
        fresh.push("svc.counter", 11, 3.0);
        assert_eq!(fresh.totals("svc.counter"), Some((11, 23.0)));
    }
}
