//! Net-layer framing: handshake and multiplexing envelopes.
//!
//! The broker's `Request`/`Response` vocabulary is unchanged — this
//! module wraps it. A connection starts with a three-frame handshake
//! (`Hello` → `Challenge` → `Proof`), after which every broker request
//! rides in a [`ClientFrame::Mux`] tagged with a client-chosen channel
//! id, and every reply comes back in a [`ServerFrame::Mux`] carrying the
//! same tag. Channels let one connection host many logical sessions
//! concurrently: replies are matched by tag, not by position, so a slow
//! `Finish` on one channel never head-of-line-blocks a `Stats` poll on
//! another.
//!
//! Everything the server refuses at the net layer — before a request
//! ever reaches a broker shard — is a typed [`ServerFrame::Reject`]
//! carrying a [`RejectReason`], mirrored into
//! [`crate::stats::NetStats`].

use heimdall_obs::{ObsEvent, Topic};
use heimdall_service::proto::{Request, Response};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Opens the handshake: the tenant this connection will speak for,
    /// plus a client nonce mixed into the proof so a recorded exchange
    /// cannot be replayed against a future challenge.
    Hello { tenant: String, nonce: String },
    /// Answers the server's [`ServerFrame::Challenge`]:
    /// `hex(HMAC(key, "heimdall-net-v1|tenant|client_nonce|server_nonce"))`.
    Proof { mac: String },
    /// One multiplexed broker request on a client-chosen channel.
    Mux { channel: u64, request: Request },
    /// Opens a push stream on a client-chosen channel: server-initiated
    /// [`ServerFrame::Event`] frames for the named topics arrive on it
    /// until an [`ClientFrame::Unsubscribe`] or disconnect. The channel
    /// must not collide with one already in use. Authorization is
    /// mediated: a denied subscription is a [`ServerFrame::Reject`] with
    /// [`RejectReason::SubscriptionDenied`] and a recorded denial — no
    /// events ever flow.
    Subscribe { channel: u64, topics: Vec<Topic> },
    /// Closes the push stream opened on `channel`.
    Unsubscribe { channel: u64 },
    /// Polite end-of-connection; the server drops the connection after
    /// flushing queued replies.
    Bye,
}

/// Frames the server sends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// The server nonce the client must bind into its proof.
    Challenge { nonce: String },
    /// Handshake accepted: the connection is bound to `tenant`, homed on
    /// broker shard `shard`.
    Welcome { tenant: String, shard: usize },
    /// The reply for the request sent on `channel`.
    Mux { channel: u64, response: Response },
    /// A [`ClientFrame::Subscribe`] was authorized; events for its
    /// topics will now arrive on `channel`.
    Subscribed { channel: u64, topics: Vec<Topic> },
    /// A [`ClientFrame::Unsubscribe`] completed; no further events will
    /// arrive on `channel`.
    Unsubscribed { channel: u64 },
    /// One server-pushed observability event on a subscribed channel.
    /// [`ObsEvent::Lagged`] marks a gap where the subscriber's bounded
    /// queue overflowed.
    Event { channel: u64, event: ObsEvent },
    /// A net-layer refusal. `channel` is the offending request's channel
    /// when one exists; handshake-time rejects carry `None`.
    Reject {
        channel: Option<u64>,
        reason: RejectReason,
        message: String,
    },
    /// Graceful shutdown: the server stops reading; already-queued
    /// replies still arrive before the stream closes.
    ShuttingDown,
}

/// Why the net layer refused a frame. Each variant has a dedicated
/// counter in [`crate::stats::NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// `Hello` named a tenant with no registered key.
    UnknownTenant,
    /// The proof MAC did not verify against the tenant's key.
    BadMac,
    /// The client nonce was already used by an earlier handshake.
    ReplayedNonce,
    /// A non-handshake frame arrived before authentication completed.
    NotAuthenticated,
    /// An `OpenSession` named a technician other than the authenticated
    /// tenant.
    IdentityMismatch,
    /// The frame addressed a session opened by a different connection.
    ForeignSession,
    /// The connection's write queue overflowed; the connection is being
    /// evicted.
    SlowConsumer,
    /// The home shard's request queue is full; retry later.
    Backpressure,
    /// The frame decoded but was not meaningful at this point in the
    /// protocol (e.g. a second `Hello`).
    BadFrame,
    /// The reference monitor denied a `Subscribe` (no view privilege for
    /// a fleet-scoped topic). The denial is recorded server-side; no
    /// events flow.
    SubscriptionDenied,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::UnknownTenant => "unknown tenant",
            RejectReason::BadMac => "bad mac",
            RejectReason::ReplayedNonce => "replayed nonce",
            RejectReason::NotAuthenticated => "not authenticated",
            RejectReason::IdentityMismatch => "identity mismatch",
            RejectReason::ForeignSession => "foreign session",
            RejectReason::SlowConsumer => "slow consumer",
            RejectReason::Backpressure => "backpressure",
            RejectReason::BadFrame => "bad frame",
            RejectReason::SubscriptionDenied => "subscription denied",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_json() {
        let frames = vec![
            ClientFrame::Hello {
                tenant: "tech01".into(),
                nonce: "abc".into(),
            },
            ClientFrame::Proof { mac: "00ff".into() },
            ClientFrame::Mux {
                channel: 7,
                request: Request::Stats,
            },
            ClientFrame::Subscribe {
                channel: 9,
                topics: vec![Topic::Slo, Topic::Audit],
            },
            ClientFrame::Unsubscribe { channel: 9 },
            ClientFrame::Bye,
        ];
        for f in frames {
            let json = serde_json::to_string(&f).unwrap();
            let back: ClientFrame = serde_json::from_str(&json).unwrap();
            assert_eq!(back, f);
        }
        let rejects = vec![
            ServerFrame::Challenge { nonce: "n".into() },
            ServerFrame::Welcome {
                tenant: "tech01".into(),
                shard: 3,
            },
            ServerFrame::Reject {
                channel: Some(7),
                reason: RejectReason::ForeignSession,
                message: "session s9 belongs to another connection".into(),
            },
            ServerFrame::Subscribed {
                channel: 9,
                topics: vec![Topic::Metrics],
            },
            ServerFrame::Unsubscribed { channel: 9 },
            ServerFrame::Event {
                channel: 9,
                event: ObsEvent::Lagged { dropped: 3 },
            },
            ServerFrame::Reject {
                channel: Some(9),
                reason: RejectReason::SubscriptionDenied,
                message: "no view privilege".into(),
            },
            ServerFrame::ShuttingDown,
        ];
        for f in rejects {
            let json = serde_json::to_string(&f).unwrap();
            let back: ServerFrame = serde_json::from_str(&json).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn reject_reasons_display_distinctly() {
        let all = [
            RejectReason::UnknownTenant,
            RejectReason::BadMac,
            RejectReason::ReplayedNonce,
            RejectReason::NotAuthenticated,
            RejectReason::IdentityMismatch,
            RejectReason::ForeignSession,
            RejectReason::SlowConsumer,
            RejectReason::Backpressure,
            RejectReason::BadFrame,
            RejectReason::SubscriptionDenied,
        ];
        let mut seen = std::collections::HashSet::new();
        for r in all {
            assert!(seen.insert(r.to_string()), "duplicate display for {r:?}");
        }
    }
}
