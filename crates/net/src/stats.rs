//! Net-layer counters: every typed rejection, eviction, and batch has a
//! number, so auth failures and misbehaving clients are visible in
//! monitoring — not just in per-connection error replies.

use crate::wire::RejectReason;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters for one [`crate::server::NetServer`].
#[derive(Default)]
pub struct NetStats {
    pub connections_opened: AtomicU64,
    pub connections_closed: AtomicU64,
    pub handshakes_ok: AtomicU64,
    pub rejects_unknown_tenant: AtomicU64,
    pub rejects_bad_mac: AtomicU64,
    pub rejects_replayed_nonce: AtomicU64,
    pub rejects_unauthenticated: AtomicU64,
    pub rejects_identity_mismatch: AtomicU64,
    pub rejects_foreign_session: AtomicU64,
    pub rejects_bad_frame: AtomicU64,
    /// Requests bounced because the home shard's queue was full.
    pub rejects_backpressure: AtomicU64,
    /// Connections killed because their bounded write queue overflowed.
    pub slow_consumer_evictions: AtomicU64,
    pub frames_in: AtomicU64,
    pub frames_out: AtomicU64,
    /// Executor wake-ups that handled at least one request.
    pub batches: AtomicU64,
    /// Requests handled across all batches (mean batch depth =
    /// `batched_frames / batches`).
    pub batched_frames: AtomicU64,
    /// Frames that failed to decode or arrived out of protocol.
    pub protocol_errors: AtomicU64,
    /// `Subscribe` frames refused by the reference monitor.
    pub rejects_subscription_denied: AtomicU64,
    /// Push subscriptions accepted.
    pub subscriptions_opened: AtomicU64,
    /// Push subscriptions closed by `Unsubscribe` (evictions and
    /// disconnects count under their own counters).
    pub subscriptions_closed: AtomicU64,
    /// `Event` frames queued to subscriber connections (incl. `Lagged`
    /// gap markers).
    pub events_pushed: AtomicU64,
}

impl NetStats {
    pub fn new() -> NetStats {
        NetStats::default()
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Routes a typed rejection to its dedicated counter.
    pub fn count_reject(&self, reason: RejectReason) {
        let counter = match reason {
            RejectReason::UnknownTenant => &self.rejects_unknown_tenant,
            RejectReason::BadMac => &self.rejects_bad_mac,
            RejectReason::ReplayedNonce => &self.rejects_replayed_nonce,
            RejectReason::NotAuthenticated => &self.rejects_unauthenticated,
            RejectReason::IdentityMismatch => &self.rejects_identity_mismatch,
            RejectReason::ForeignSession => &self.rejects_foreign_session,
            RejectReason::SlowConsumer => &self.slow_consumer_evictions,
            RejectReason::Backpressure => &self.rejects_backpressure,
            RejectReason::BadFrame => &self.rejects_bad_frame,
            RejectReason::SubscriptionDenied => &self.rejects_subscription_denied,
        };
        NetStats::bump(counter);
    }

    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            handshakes_ok: self.handshakes_ok.load(Ordering::Relaxed),
            rejects_unknown_tenant: self.rejects_unknown_tenant.load(Ordering::Relaxed),
            rejects_bad_mac: self.rejects_bad_mac.load(Ordering::Relaxed),
            rejects_replayed_nonce: self.rejects_replayed_nonce.load(Ordering::Relaxed),
            rejects_unauthenticated: self.rejects_unauthenticated.load(Ordering::Relaxed),
            rejects_identity_mismatch: self.rejects_identity_mismatch.load(Ordering::Relaxed),
            rejects_foreign_session: self.rejects_foreign_session.load(Ordering::Relaxed),
            rejects_bad_frame: self.rejects_bad_frame.load(Ordering::Relaxed),
            rejects_backpressure: self.rejects_backpressure.load(Ordering::Relaxed),
            slow_consumer_evictions: self.slow_consumer_evictions.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_frames: self.batched_frames.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            rejects_subscription_denied: self.rejects_subscription_denied.load(Ordering::Relaxed),
            subscriptions_opened: self.subscriptions_opened.load(Ordering::Relaxed),
            subscriptions_closed: self.subscriptions_closed.load(Ordering::Relaxed),
            events_pushed: self.events_pushed.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`NetStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStatsSnapshot {
    pub connections_opened: u64,
    pub connections_closed: u64,
    pub handshakes_ok: u64,
    pub rejects_unknown_tenant: u64,
    pub rejects_bad_mac: u64,
    pub rejects_replayed_nonce: u64,
    pub rejects_unauthenticated: u64,
    pub rejects_identity_mismatch: u64,
    pub rejects_foreign_session: u64,
    pub rejects_bad_frame: u64,
    pub rejects_backpressure: u64,
    pub slow_consumer_evictions: u64,
    pub frames_in: u64,
    pub frames_out: u64,
    pub batches: u64,
    pub batched_frames: u64,
    pub protocol_errors: u64,
    pub rejects_subscription_denied: u64,
    pub subscriptions_opened: u64,
    pub subscriptions_closed: u64,
    pub events_pushed: u64,
}

impl NetStatsSnapshot {
    /// Every counter as a `(name, value)` pair, in stable order. The
    /// single source of truth for the fleet exchange, the `MetricsQuery`
    /// net section, and the Prometheus rendering — a counter added to
    /// this list shows up on all three surfaces at once.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("connections_opened", self.connections_opened),
            ("connections_closed", self.connections_closed),
            ("handshakes_ok", self.handshakes_ok),
            ("rejects_unknown_tenant", self.rejects_unknown_tenant),
            ("rejects_bad_mac", self.rejects_bad_mac),
            ("rejects_replayed_nonce", self.rejects_replayed_nonce),
            ("rejects_unauthenticated", self.rejects_unauthenticated),
            ("rejects_identity_mismatch", self.rejects_identity_mismatch),
            ("rejects_foreign_session", self.rejects_foreign_session),
            ("rejects_bad_frame", self.rejects_bad_frame),
            ("rejects_backpressure", self.rejects_backpressure),
            (
                "rejects_subscription_denied",
                self.rejects_subscription_denied,
            ),
            ("slow_consumer_evictions", self.slow_consumer_evictions),
            ("frames_in", self.frames_in),
            ("frames_out", self.frames_out),
            ("batches", self.batches),
            ("batched_frames", self.batched_frames),
            ("protocol_errors", self.protocol_errors),
            ("subscriptions_opened", self.subscriptions_opened),
            ("subscriptions_closed", self.subscriptions_closed),
            ("events_pushed", self.events_pushed),
        ]
    }

    /// Folds another front-end's counters into this one (all counters
    /// are monotone sums, so the fleet-wide fold is plain addition).
    pub fn merge(&mut self, other: &NetStatsSnapshot) {
        self.connections_opened += other.connections_opened;
        self.connections_closed += other.connections_closed;
        self.handshakes_ok += other.handshakes_ok;
        self.rejects_unknown_tenant += other.rejects_unknown_tenant;
        self.rejects_bad_mac += other.rejects_bad_mac;
        self.rejects_replayed_nonce += other.rejects_replayed_nonce;
        self.rejects_unauthenticated += other.rejects_unauthenticated;
        self.rejects_identity_mismatch += other.rejects_identity_mismatch;
        self.rejects_foreign_session += other.rejects_foreign_session;
        self.rejects_bad_frame += other.rejects_bad_frame;
        self.rejects_backpressure += other.rejects_backpressure;
        self.rejects_subscription_denied += other.rejects_subscription_denied;
        self.slow_consumer_evictions += other.slow_consumer_evictions;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.batches += other.batches;
        self.batched_frames += other.batched_frames;
        self.protocol_errors += other.protocol_errors;
        self.subscriptions_opened += other.subscriptions_opened;
        self.subscriptions_closed += other.subscriptions_closed;
        self.events_pushed += other.events_pushed;
    }

    /// Appends every counter to a Prometheus text exposition under the
    /// `heimdall_net_` prefix, via the shared
    /// [`heimdall_telemetry::render_counter`] helper.
    pub fn render_prometheus_into(&self, out: &mut String) {
        for (name, value) in self.counters() {
            heimdall_telemetry::render_counter(out, &format!("heimdall_net_{name}_total"), value);
        }
    }
}

impl fmt::Display for NetStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conns:    {} opened / {} closed, {} handshakes ok",
            self.connections_opened, self.connections_closed, self.handshakes_ok
        )?;
        writeln!(
            f,
            "rejects:  {} unknown-tenant, {} bad-mac, {} replayed-nonce, {} unauthenticated",
            self.rejects_unknown_tenant,
            self.rejects_bad_mac,
            self.rejects_replayed_nonce,
            self.rejects_unauthenticated
        )?;
        writeln!(
            f,
            "          {} identity-mismatch, {} foreign-session, {} bad-frame, {} backpressure",
            self.rejects_identity_mismatch,
            self.rejects_foreign_session,
            self.rejects_bad_frame,
            self.rejects_backpressure
        )?;
        writeln!(
            f,
            "traffic:  {} in / {} out, {} batches ({} framed), {} slow-consumer evictions, {} protocol errors",
            self.frames_in,
            self.frames_out,
            self.batches,
            self.batched_frames,
            self.slow_consumer_evictions,
            self.protocol_errors
        )?;
        write!(
            f,
            "push:     {} subscribed / {} unsubscribed, {} denied, {} events pushed",
            self.subscriptions_opened,
            self.subscriptions_closed,
            self.rejects_subscription_denied,
            self.events_pushed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reject_reason_lands_in_its_own_counter() {
        let stats = NetStats::new();
        let reasons = [
            RejectReason::UnknownTenant,
            RejectReason::BadMac,
            RejectReason::ReplayedNonce,
            RejectReason::NotAuthenticated,
            RejectReason::IdentityMismatch,
            RejectReason::ForeignSession,
            RejectReason::SlowConsumer,
            RejectReason::Backpressure,
            RejectReason::BadFrame,
            RejectReason::SubscriptionDenied,
        ];
        for r in reasons {
            stats.count_reject(r);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.rejects_subscription_denied, 1);
        assert_eq!(snap.rejects_unknown_tenant, 1);
        assert_eq!(snap.rejects_bad_mac, 1);
        assert_eq!(snap.rejects_replayed_nonce, 1);
        assert_eq!(snap.rejects_unauthenticated, 1);
        assert_eq!(snap.rejects_identity_mismatch, 1);
        assert_eq!(snap.rejects_foreign_session, 1);
        assert_eq!(snap.slow_consumer_evictions, 1);
        assert_eq!(snap.rejects_backpressure, 1);
        assert_eq!(snap.rejects_bad_frame, 1);
        let json = serde_json::to_string(&snap).unwrap();
        let back: NetStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_and_counters_cover_every_field() {
        let a = NetStats::new();
        NetStats::bump(&a.connections_opened);
        NetStats::bump(&a.events_pushed);
        let b = NetStats::new();
        NetStats::bump(&b.connections_opened);
        NetStats::bump(&b.subscriptions_opened);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.connections_opened, 2);
        assert_eq!(merged.events_pushed, 1);
        assert_eq!(merged.subscriptions_opened, 1);
        // counters() must cover every serialized field: the JSON object
        // and the name/value list have the same cardinality.
        let json = serde_json::to_value(&merged).unwrap();
        let serde_json::Value::Object(map) = json else {
            panic!("snapshot serializes as an object");
        };
        assert_eq!(map.len(), merged.counters().len());
    }

    #[test]
    fn prometheus_rendering_uses_net_prefix() {
        let stats = NetStats::new();
        NetStats::bump(&stats.handshakes_ok);
        let mut out = String::new();
        stats.snapshot().render_prometheus_into(&mut out);
        assert!(out.contains("# TYPE heimdall_net_handshakes_ok_total counter"));
        assert!(out.contains("heimdall_net_handshakes_ok_total 1"));
        assert!(out.contains("heimdall_net_events_pushed_total 0"));
    }
}
