//! heimdall-net: the real transport in front of the reference monitor.
//!
//! Until this crate, the broker was an in-process object reached over an
//! in-memory pipe. Here it becomes a network service in the paper's
//! deployment shape — the MSP's Heimdall endpoint that every technician
//! connection must pass through:
//!
//! - [`wire`] — handshake and multiplexing envelopes around the existing
//!   `Request`/`Response` vocabulary (the broker protocol is unchanged);
//! - [`auth`] — per-connection HMAC challenge/response handshake using
//!   the enforcer's in-repo crypto: a connection is *bound* to a tenant,
//!   and every subsequent frame is attributed to that tenant without
//!   re-sending credentials;
//! - [`conn`] — one abstraction over TCP and Unix-domain sockets,
//!   bounded per-connection write queues with slow-consumer eviction,
//!   and the timeout-absorbing reader that keeps frame reassembly
//!   correct over real sockets;
//! - [`fleet`] — N independent [`heimdall_service::Broker`] shards
//!   behind a consistent-hash router, with cross-shard reads through an
//!   explicit exchange API (fleet stats aggregation, pair compose
//!   checks) instead of any global lock;
//! - [`server`] — acceptors, per-connection reader/writer threads,
//!   per-shard batching executors, net-layer authorization guards
//!   (identity and session-ownership), and graceful drain-then-sync
//!   shutdown;
//! - [`client`] — the matching multiplexing client;
//! - [`stats`] — a counter for every typed rejection and eviction.
//!
//! On top of request/reply, the server pushes: `Subscribe` opens a
//! reference-monitor-mediated stream of [`heimdall_obs::ObsEvent`]s
//! (SLO trips, recorder dumps, analyzer findings, audit appends, net
//! thresholds, metrics deltas) multiplexed onto the same connection,
//! fed by a background monitor thread that scrapes every shard and
//! aggregates fleet-wide metrics. A stalled subscriber gets typed
//! `Lagged` gap markers, then slow-consumer eviction — never unbounded
//! buffering, and never a slowed-down fast subscriber.
//!
//! Everything a client can do wrong — unknown tenant, bad proof,
//! replayed nonce, frames before authentication, opening sessions as
//! someone else, touching another connection's session, subscribing
//! without a view grant, stalling its read side, flooding a shard — is
//! a *typed* rejection on the wire and a dedicated counter in
//! [`NetStats`], never a hang and never a silent drop.

pub mod auth;
pub mod client;
pub mod conn;
pub mod fleet;
pub mod server;
pub mod stats;
pub mod wire;

pub use auth::{handshake_mac, NonceGen, NonceLedger, TenantKeys};
pub use client::{ClientError, NetClient};
pub use conn::{ConnHandle, NetAcceptor, NetStream, PatientReader, PushOutcome, TryPushOutcome};
pub use fleet::BrokerFleet;
pub use server::{BoundAcceptor, NetConfig, NetServer, ShutdownReport};
pub use stats::{NetStats, NetStatsSnapshot};
pub use wire::{ClientFrame, RejectReason, ServerFrame};

/// Compile-time thread-safety proof for everything the server shares
/// across its acceptor, reader, writer, and executor threads.
mod thread_safety {
    #[allow(dead_code)]
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn assert_sync<T: Sync>() {}

    #[allow(dead_code)]
    fn proofs() {
        assert_send::<crate::BrokerFleet>();
        assert_sync::<crate::BrokerFleet>();
        assert_send::<crate::ConnHandle>();
        assert_sync::<crate::ConnHandle>();
        assert_send::<crate::NetStats>();
        assert_sync::<crate::NetStats>();
        assert_send::<crate::TenantKeys>();
        assert_sync::<crate::TenantKeys>();
        assert_send::<crate::NonceLedger>();
        assert_sync::<crate::NonceLedger>();
        assert_send::<crate::NonceGen>();
        assert_sync::<crate::NonceGen>();
    }
}
