//! A multiplexing client for the net front-end.
//!
//! [`NetClient`] runs the handshake on construction, then exposes the
//! broker vocabulary over tagged channels: [`NetClient::call`] for one
//! request/reply round trip, or [`NetClient::open_channel`] /
//! [`NetClient::send_on`] / [`NetClient::recv_on`] to interleave many
//! logical conversations on one socket. Replies are matched by channel
//! tag — frames for other channels observed while waiting are buffered,
//! so interleaved use never loses or reorders a reply.

use crate::auth::handshake_mac;
use crate::conn::NetStream;
use crate::wire::{ClientFrame, RejectReason, ServerFrame};
use heimdall_obs::{ObsEvent, Topic};
use heimdall_service::proto::{read_frame, write_frame, FrameError, Request, Response};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Frame-level transport failure.
    Frame(FrameError),
    /// A typed net-layer rejection from the server.
    Rejected {
        reason: RejectReason,
        message: String,
    },
    /// The server announced a graceful shutdown.
    ShuttingDown,
    /// The server broke the protocol (e.g. no Challenge after Hello).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport: {e}"),
            ClientError::Rejected { reason, message } => {
                write!(f, "rejected ({reason}): {message}")
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

/// Process-wide counter so every client connection picks fresh client
/// nonces even when many clients spin up in the same nanosecond.
static CLIENT_NONCE_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_nonce(tenant: &str) -> String {
    let seq = CLIENT_NONCE_SEQ.fetch_add(1, Ordering::Relaxed);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let digest = heimdall_enforcer::crypto::sha256(
        format!("client|{tenant}|{}|{seq}|{now}", std::process::id()).as_bytes(),
    );
    heimdall_enforcer::crypto::hex(&digest)
}

/// An authenticated, multiplexing connection to a [`crate::NetServer`].
///
/// The `Debug` form elides the stream and buffered replies.
pub struct NetClient {
    stream: Box<dyn NetStream>,
    tenant: String,
    shard: usize,
    next_channel: u64,
    /// Replies observed for channels other than the one being awaited.
    pending: HashMap<u64, VecDeque<Response>>,
    /// Server-pushed events observed while waiting for something else.
    events: VecDeque<(u64, ObsEvent)>,
}

impl fmt::Debug for NetClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetClient")
            .field("tenant", &self.tenant)
            .field("shard", &self.shard)
            .field("next_channel", &self.next_channel)
            .finish_non_exhaustive()
    }
}

impl NetClient {
    /// Connects over TCP and authenticates.
    pub fn connect_tcp(addr: &str, tenant: &str, key: &[u8]) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        stream.set_nodelay(true).ok();
        NetClient::from_stream(Box::new(stream), tenant, key)
    }

    /// Connects over a Unix-domain socket and authenticates.
    pub fn connect_uds(path: &Path, tenant: &str, key: &[u8]) -> Result<NetClient, ClientError> {
        let stream =
            UnixStream::connect(path).map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        NetClient::from_stream(Box::new(stream), tenant, key)
    }

    /// Authenticates over an already-connected stream with a fresh
    /// client nonce.
    pub fn from_stream(
        stream: Box<dyn NetStream>,
        tenant: &str,
        key: &[u8],
    ) -> Result<NetClient, ClientError> {
        NetClient::from_stream_with_nonce(stream, tenant, key, &fresh_nonce(tenant))
    }

    /// Authenticates with a caller-chosen client nonce. Exists so tests
    /// can replay a nonce on purpose; normal callers want
    /// [`NetClient::from_stream`].
    pub fn from_stream_with_nonce(
        mut stream: Box<dyn NetStream>,
        tenant: &str,
        key: &[u8],
        nonce: &str,
    ) -> Result<NetClient, ClientError> {
        write_frame(
            &mut stream,
            &ClientFrame::Hello {
                tenant: tenant.to_string(),
                nonce: nonce.to_string(),
            },
        )?;
        let server_nonce = match read_frame::<_, ServerFrame>(&mut stream)? {
            ServerFrame::Challenge { nonce } => nonce,
            ServerFrame::Reject {
                reason, message, ..
            } => return Err(ClientError::Rejected { reason, message }),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Challenge, got {other:?}"
                )))
            }
        };
        let mac = handshake_mac(key, tenant, nonce, &server_nonce);
        write_frame(&mut stream, &ClientFrame::Proof { mac })?;
        let (tenant, shard) = match read_frame::<_, ServerFrame>(&mut stream)? {
            ServerFrame::Welcome { tenant, shard } => (tenant, shard),
            ServerFrame::Reject {
                reason, message, ..
            } => return Err(ClientError::Rejected { reason, message }),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Welcome, got {other:?}"
                )))
            }
        };
        Ok(NetClient {
            stream,
            tenant,
            shard,
            next_channel: 1,
            pending: HashMap::new(),
            events: VecDeque::new(),
        })
    }

    /// The identity this connection is authenticated as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The broker shard this tenant homes on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// A fresh channel id for an interleaved conversation.
    pub fn open_channel(&mut self) -> u64 {
        let c = self.next_channel;
        self.next_channel += 1;
        c
    }

    /// Sends one request on `channel` without waiting for the reply.
    pub fn send_on(&mut self, channel: u64, request: Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &ClientFrame::Mux { channel, request })?;
        Ok(())
    }

    /// Buffers a frame that arrived while waiting for a different one:
    /// replies keyed by channel, pushed events in arrival order.
    fn stash(&mut self, frame: ServerFrame) {
        match frame {
            ServerFrame::Mux { channel, response } => {
                self.pending.entry(channel).or_default().push_back(response);
            }
            ServerFrame::Event { channel, event } => {
                self.events.push_back((channel, event));
            }
            // Subscribed/Unsubscribed acks are awaited synchronously in
            // subscribe()/unsubscribe(); one observed elsewhere is stale.
            _ => {}
        }
    }

    /// The next reply for `channel`, buffering replies for other
    /// channels (and pushed events) seen along the way.
    pub fn recv_on(&mut self, channel: u64) -> Result<Response, ClientError> {
        if let Some(queue) = self.pending.get_mut(&channel) {
            if let Some(response) = queue.pop_front() {
                return Ok(response);
            }
        }
        loop {
            match read_frame::<_, ServerFrame>(&mut self.stream)? {
                ServerFrame::Mux {
                    channel: ch,
                    response,
                } => {
                    if ch == channel {
                        return Ok(response);
                    }
                    self.pending.entry(ch).or_default().push_back(response);
                }
                frame @ ServerFrame::Event { .. } => self.stash(frame),
                ServerFrame::Reject {
                    channel: ch,
                    reason,
                    message,
                } => {
                    // A reject for another channel still fails this call:
                    // surfacing it beats silently waiting on a reply that
                    // may never come.
                    let _ = ch;
                    return Err(ClientError::Rejected { reason, message });
                }
                ServerFrame::ShuttingDown => return Err(ClientError::ShuttingDown),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame mid-session: {other:?}"
                    )))
                }
            }
        }
    }

    /// One request/reply round trip on a fresh channel.
    pub fn call(&mut self, request: Request) -> Result<Response, ClientError> {
        let channel = self.open_channel();
        self.send_on(channel, request)?;
        self.recv_on(channel)
    }

    /// Polite goodbye; the server closes the connection after flushing.
    pub fn bye(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &ClientFrame::Bye)?;
        Ok(())
    }

    /// Opens a push subscription on a fresh channel; returns the channel
    /// pushed [`ServerFrame::Event`]s will arrive on. A denied
    /// subscription surfaces as [`ClientError::Rejected`] with
    /// [`RejectReason::SubscriptionDenied`].
    pub fn subscribe(&mut self, topics: &[Topic]) -> Result<u64, ClientError> {
        let channel = self.open_channel();
        self.subscribe_on(channel, topics)?;
        Ok(channel)
    }

    /// Opens a push subscription on a caller-chosen channel. Exists so
    /// tests can provoke channel collisions; normal callers want
    /// [`NetClient::subscribe`].
    pub fn subscribe_on(&mut self, channel: u64, topics: &[Topic]) -> Result<(), ClientError> {
        write_frame(
            &mut self.stream,
            &ClientFrame::Subscribe {
                channel,
                topics: topics.to_vec(),
            },
        )?;
        loop {
            match read_frame::<_, ServerFrame>(&mut self.stream)? {
                ServerFrame::Subscribed { channel: ch, .. } if ch == channel => return Ok(()),
                ServerFrame::Reject {
                    reason, message, ..
                } => return Err(ClientError::Rejected { reason, message }),
                ServerFrame::ShuttingDown => return Err(ClientError::ShuttingDown),
                frame @ (ServerFrame::Mux { .. } | ServerFrame::Event { .. }) => self.stash(frame),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Subscribed, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Closes the push subscription on `channel`. Events already pushed
    /// before the server processed the unsubscribe are still buffered
    /// and readable.
    pub fn unsubscribe(&mut self, channel: u64) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &ClientFrame::Unsubscribe { channel })?;
        loop {
            match read_frame::<_, ServerFrame>(&mut self.stream)? {
                ServerFrame::Unsubscribed { channel: ch } if ch == channel => return Ok(()),
                ServerFrame::Reject {
                    reason, message, ..
                } => return Err(ClientError::Rejected { reason, message }),
                ServerFrame::ShuttingDown => return Err(ClientError::ShuttingDown),
                frame @ (ServerFrame::Mux { .. } | ServerFrame::Event { .. }) => self.stash(frame),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Unsubscribed, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Blocks until the next pushed event arrives (or a buffered one is
    /// ready); returns `(channel, event)`.
    pub fn next_event(&mut self) -> Result<(u64, ObsEvent), ClientError> {
        if let Some(e) = self.events.pop_front() {
            return Ok(e);
        }
        loop {
            match read_frame::<_, ServerFrame>(&mut self.stream)? {
                ServerFrame::Event { channel, event } => return Ok((channel, event)),
                ServerFrame::Reject {
                    reason, message, ..
                } => return Err(ClientError::Rejected { reason, message }),
                ServerFrame::ShuttingDown => return Err(ClientError::ShuttingDown),
                frame @ ServerFrame::Mux { .. } => self.stash(frame),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame while waiting for an event: {other:?}"
                    )))
                }
            }
        }
    }

    /// Waits up to `timeout` for a pushed event; `Ok(None)` when none
    /// arrived. A timeout that fires mid-frame desynchronizes the
    /// stream, so use this when events are either promptly pushed or not
    /// coming at all (quiescence probes in tests and drills).
    pub fn try_next_event(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(u64, ObsEvent)>, ClientError> {
        if let Some(e) = self.events.pop_front() {
            return Ok(Some(e));
        }
        self.stream.set_stream_read_timeout(Some(timeout)).ok();
        let result = loop {
            match read_frame::<_, ServerFrame>(&mut self.stream) {
                Ok(ServerFrame::Event { channel, event }) => break Ok(Some((channel, event))),
                Ok(ServerFrame::Reject {
                    reason, message, ..
                }) => break Err(ClientError::Rejected { reason, message }),
                Ok(ServerFrame::ShuttingDown) => break Err(ClientError::ShuttingDown),
                Ok(frame @ ServerFrame::Mux { .. }) => self.stash(frame),
                Ok(other) => {
                    break Err(ClientError::Protocol(format!(
                        "unexpected frame while waiting for an event: {other:?}"
                    )))
                }
                Err(FrameError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break Ok(None)
                }
                Err(e) => break Err(e.into()),
            }
        };
        self.stream.set_stream_read_timeout(None).ok();
        result
    }
}
