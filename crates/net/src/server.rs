//! The network front-end: acceptors, per-connection reader/writer
//! threads, and per-shard executors.
//!
//! Thread layout (one process):
//!
//! ```text
//! acceptor (per listener) ──spawns──► reader (per conn) ──► shard queue
//!                                        │                      │
//!                                        ▼                      ▼
//!                                     writer (per conn) ◄── executor (per shard)
//! ```
//!
//! A reader authenticates its connection ([`crate::auth`]), then parses
//! [`ClientFrame::Mux`] envelopes and enqueues work onto the home
//! shard's bounded queue — full queue is a typed `Backpressure` reject,
//! never a blocked reader. Executors drain their queue in batches of up
//! to [`NetConfig::max_batch`], run each request against their shard's
//! [`heimdall_service::Broker`], and push replies onto the owning
//! connection's bounded write queue — full queue is slow-consumer
//! eviction, never a blocked executor. Writers do nothing but drain
//! that queue onto the socket.
//!
//! Net-layer guards run before any request touches a broker:
//!
//! - `OpenSession` must name the authenticated tenant (or leave the
//!   technician empty to inherit it) — `IdentityMismatch` otherwise;
//! - session-bearing requests must address a session opened on *this*
//!   connection — `ForeignSession` otherwise;
//! - `Stats` answers with the fleet-wide aggregate via the exchange API.
//!
//! [`NetServer::shutdown`] drains in flight work in order: stop
//! acceptors and readers (peers with queued replies still get them plus
//! a [`ServerFrame::ShuttingDown`]), let executors finish every queued
//! request, flush writers, then run a sync barrier over every shard
//! journal so every acknowledged commit is on stable storage before the
//! process exits.

use crate::auth::{server_handshake, HandshakeError, NonceGen, NonceLedger, TenantKeys};
use crate::conn::{
    tcp_acceptor, uds_acceptor, ConnHandle, NetAcceptor, NetStream, PatientReader, PushOutcome,
    SHUTDOWN_MARKER,
};
use crate::fleet::BrokerFleet;
use crate::stats::{NetStats, NetStatsSnapshot};
use crate::wire::{ClientFrame, RejectReason, ServerFrame};
use heimdall_service::proto::{read_frame, write_frame, FrameError, Request, Response};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for one [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Requests queued per shard before readers bounce `Backpressure`.
    pub shard_queue_depth: usize,
    /// Replies queued per connection before the slow consumer is evicted.
    pub write_queue_depth: usize,
    /// Max requests one executor wake-up handles back-to-back.
    pub max_batch: usize,
    /// Socket read timeout; bounds how fast readers notice shutdown.
    pub read_timeout: Duration,
    /// Socket write timeout; bounds how long a writer can stall.
    pub write_timeout: Duration,
    /// Whole-handshake deadline for a fresh connection.
    pub handshake_timeout: Duration,
    /// Client nonces remembered for replay detection.
    pub nonce_history: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            shard_queue_depth: 1024,
            write_queue_depth: 256,
            max_batch: 32,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(2),
            nonce_history: 4096,
        }
    }
}

/// A listener ready to hand to [`NetServer::start`], plus any filesystem
/// cleanup it owes (UDS socket files).
pub struct BoundAcceptor {
    acceptor: Box<dyn NetAcceptor>,
    cleanup: Option<PathBuf>,
}

impl BoundAcceptor {
    /// Binds a TCP listener; returns the acceptor and the actual bound
    /// address (useful with port 0).
    pub fn tcp(addr: &str) -> io::Result<(BoundAcceptor, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok((
            BoundAcceptor {
                acceptor: tcp_acceptor(listener)?,
                cleanup: None,
            },
            local,
        ))
    }

    /// Binds a Unix-domain socket, replacing any stale socket file.
    pub fn uds(path: &Path) -> io::Result<BoundAcceptor> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        Ok(BoundAcceptor {
            acceptor: uds_acceptor(listener)?,
            cleanup: Some(path.to_path_buf()),
        })
    }
}

/// One unit of work: a request, the channel it rode in on, and the
/// connection its reply must go back to.
struct Work {
    conn: Arc<ConnHandle>,
    channel: u64,
    request: Request,
}

/// Everything the server's threads share.
struct Shared {
    fleet: Arc<BrokerFleet>,
    keys: TenantKeys,
    ledger: NonceLedger,
    nonces: NonceGen,
    stats: Arc<NetStats>,
    config: NetConfig,
    /// Flipped first: acceptors stop accepting, readers stop reading.
    shutdown: Arc<AtomicBool>,
    /// Flipped after readers are joined: executors may exit once their
    /// queue is empty (nothing can enqueue anymore).
    drained: AtomicBool,
    conn_ids: AtomicU64,
    /// `(shard, session id)` → owning connection id. Keyed per shard
    /// because each shard numbers its sessions independently.
    owners: Mutex<HashMap<(usize, u64), u64>>,
    shard_txs: Vec<SyncSender<Work>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
}

/// What [`NetServer::shutdown`] observed.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Every shard journal reached stable storage (vacuously true for
    /// journal-less shards).
    pub journals_synced: bool,
    /// Connections accepted over the server's lifetime.
    pub connections_served: u64,
    /// Requests executed over the server's lifetime (all shards).
    pub frames_handled: u64,
}

/// A running front-end over a [`BrokerFleet`].
pub struct NetServer {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    cleanup: Vec<PathBuf>,
}

impl NetServer {
    /// Spawns acceptor and executor threads and starts serving.
    pub fn start(
        fleet: Arc<BrokerFleet>,
        keys: TenantKeys,
        config: NetConfig,
        acceptors: Vec<BoundAcceptor>,
    ) -> NetServer {
        let mut shard_txs = Vec::with_capacity(fleet.shard_count());
        let mut shard_rxs = Vec::with_capacity(fleet.shard_count());
        for _ in 0..fleet.shard_count() {
            let (tx, rx) = std::sync::mpsc::sync_channel(config.shard_queue_depth.max(1));
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            ledger: NonceLedger::new(config.nonce_history),
            nonces: NonceGen::new("heimdall-net-server"),
            shutdown: Arc::new(AtomicBool::new(false)),
            drained: AtomicBool::new(false),
            conn_ids: AtomicU64::new(1),
            owners: Mutex::new(HashMap::new()),
            shard_txs,
            readers: Mutex::new(Vec::new()),
            writers: Mutex::new(Vec::new()),
            fleet,
            keys,
            config,
            stats: Arc::new(NetStats::new()),
        });
        let executors = shard_rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared, i, rx))
            })
            .collect();
        let mut cleanup = Vec::new();
        let acceptors = acceptors
            .into_iter()
            .map(|bound| {
                if let Some(path) = bound.cleanup {
                    cleanup.push(path);
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || acceptor_loop(&shared, bound.acceptor))
            })
            .collect();
        NetServer {
            shared,
            acceptors,
            executors,
            cleanup,
        }
    }

    /// Net-layer counters (handshakes, rejects, evictions, batches).
    pub fn net_stats(&self) -> NetStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The fleet this server fronts.
    pub fn fleet(&self) -> &Arc<BrokerFleet> {
        &self.shared.fleet
    }

    /// Graceful stop: quiesce intake, drain every queued request, flush
    /// replies, sync every journal, unlink UDS socket files.
    pub fn shutdown(self) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in self.acceptors {
            let _ = h.join();
        }
        // Acceptors are done, so the reader set is final now.
        let readers = std::mem::take(&mut *self.shared.readers.lock());
        for h in readers {
            let _ = h.join();
        }
        // Nothing can enqueue anymore: let executors drain and exit.
        self.shared.drained.store(true, Ordering::Release);
        for h in self.executors {
            let _ = h.join();
        }
        // Executors dropped their ConnHandles; writers flush and exit.
        let writers = std::mem::take(&mut *self.shared.writers.lock());
        for h in writers {
            let _ = h.join();
        }
        let journals_synced = self.shared.fleet.sync_journals();
        for path in &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
        let stats = self.shared.stats.snapshot();
        ShutdownReport {
            journals_synced,
            connections_served: stats.connections_opened,
            frames_handled: stats.batched_frames,
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, acceptor: Box<dyn NetAcceptor>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match acceptor.poll_accept() {
            Ok(Some(stream)) => {
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || run_connection(&shared2, stream));
                shared.readers.lock().push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One connection, handshake to hangup. Runs on the reader thread.
fn run_connection(shared: &Arc<Shared>, mut stream: Box<dyn NetStream>) {
    NetStats::bump(&shared.stats.connections_opened);
    let _ = stream.set_stream_read_timeout(Some(shared.config.handshake_timeout));
    let tenant = match server_handshake(&mut stream, &shared.keys, &shared.ledger, &shared.nonces) {
        Ok(tenant) => tenant,
        Err(HandshakeError::Rejected(reason, _)) => {
            shared.stats.count_reject(reason);
            NetStats::bump(&shared.stats.connections_closed);
            return;
        }
        Err(HandshakeError::Transport(_)) => {
            NetStats::bump(&shared.stats.protocol_errors);
            NetStats::bump(&shared.stats.connections_closed);
            return;
        }
    };
    let shard = shared.fleet.route(&tenant);
    let conn_id = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
    let (control, write_half) = match (stream.try_clone_stream(), stream.try_clone_stream()) {
        (Ok(c), Ok(w)) => (c, w),
        _ => {
            NetStats::bump(&shared.stats.connections_closed);
            return;
        }
    };
    let _ = write_half.set_stream_write_timeout(Some(shared.config.write_timeout));
    let (conn, reply_rx) = ConnHandle::new(
        conn_id,
        tenant.clone(),
        shard,
        shared.config.write_queue_depth,
        control,
    );
    {
        let stats = Arc::clone(&shared.stats);
        let writer = std::thread::spawn(move || writer_loop(write_half, reply_rx, &stats));
        shared.writers.lock().push(writer);
    }
    conn.push(ServerFrame::Welcome {
        tenant: tenant.clone(),
        shard,
    });
    NetStats::bump(&shared.stats.handshakes_ok);

    let _ = stream.set_stream_read_timeout(Some(shared.config.read_timeout));
    let shard_tx = shared.shard_txs[shard].clone();
    let mut reader = PatientReader::new(stream, Arc::clone(&shared.shutdown));
    loop {
        if conn.is_evicted() {
            break;
        }
        match read_frame::<_, ClientFrame>(&mut reader) {
            Ok(ClientFrame::Mux { channel, request }) => {
                NetStats::bump(&shared.stats.frames_in);
                let work = Work {
                    conn: Arc::clone(&conn),
                    channel,
                    request,
                };
                match shard_tx.try_send(work) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        shared.stats.count_reject(RejectReason::Backpressure);
                        conn.push(ServerFrame::Reject {
                            channel: Some(channel),
                            reason: RejectReason::Backpressure,
                            message: format!("shard {shard} queue is full, retry"),
                        });
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Ok(ClientFrame::Bye) => break,
            Ok(ClientFrame::Hello { .. }) | Ok(ClientFrame::Proof { .. }) => {
                shared.stats.count_reject(RejectReason::BadFrame);
                conn.push(ServerFrame::Reject {
                    channel: None,
                    reason: RejectReason::BadFrame,
                    message: "connection is already authenticated".into(),
                });
            }
            Err(FrameError::Io(e)) if e.kind() == SHUTDOWN_MARKER => {
                conn.push(ServerFrame::ShuttingDown);
                break;
            }
            Err(FrameError::Codec(m)) => {
                NetStats::bump(&shared.stats.protocol_errors);
                conn.push(ServerFrame::Reject {
                    channel: None,
                    reason: RejectReason::BadFrame,
                    message: m,
                });
            }
            Err(FrameError::Closed) => break,
            Err(_) => {
                // Truncated / TooLarge / transport error: cannot resync.
                NetStats::bump(&shared.stats.protocol_errors);
                break;
            }
        }
    }
    // This connection's session claims die with it; the sessions
    // themselves live on in the broker until finished or idle-evicted.
    shared.owners.lock().retain(|_, owner| *owner != conn_id);
    NetStats::bump(&shared.stats.connections_closed);
}

fn writer_loop(
    mut stream: Box<dyn NetStream>,
    replies: Receiver<ServerFrame>,
    stats: &Arc<NetStats>,
) {
    while let Ok(frame) = replies.recv() {
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
        NetStats::bump(&stats.frames_out);
    }
    stream.shutdown_stream();
}

fn executor_loop(shared: &Arc<Shared>, shard: usize, rx: Receiver<Work>) {
    let broker = Arc::clone(shared.fleet.shard(shard));
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(first) => {
                let mut batch = Vec::with_capacity(shared.config.max_batch.max(1));
                batch.push(first);
                while batch.len() < shared.config.max_batch.max(1) {
                    match rx.try_recv() {
                        Ok(work) => batch.push(work),
                        Err(_) => break,
                    }
                }
                NetStats::bump(&shared.stats.batches);
                shared
                    .stats
                    .batched_frames
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                for work in batch {
                    handle_work(shared, shard, &broker, work);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.drained.load(Ordering::Acquire) {
                    // Final sweep: producers are gone, empty means done.
                    while let Ok(work) = rx.try_recv() {
                        NetStats::bump(&shared.stats.batches);
                        shared.stats.batched_frames.fetch_add(1, Ordering::Relaxed);
                        handle_work(shared, shard, &broker, work);
                    }
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The session id a request addresses, when it addresses one.
fn session_of(request: &Request) -> Option<u64> {
    match request {
        Request::Exec { session, .. }
        | Request::TopologyView { session }
        | Request::Finish { session } => Some(session.0),
        Request::AnalyzeQuery {
            session: Some(id), ..
        } => Some(id.0),
        _ => None,
    }
}

/// Net-layer guards, then one broker round-trip, then the reply push.
/// Runs on the shard's executor thread.
fn handle_work(
    shared: &Arc<Shared>,
    shard: usize,
    broker: &Arc<heimdall_service::Broker>,
    work: Work,
) {
    let Work {
        conn,
        channel,
        mut request,
    } = work;
    let reject = |reason: RejectReason, message: String| {
        shared.stats.count_reject(reason);
        conn.push(ServerFrame::Reject {
            channel: Some(channel),
            reason,
            message,
        });
    };
    // Attribution guard: a session is opened *as* the authenticated
    // tenant. An empty technician inherits the connection identity;
    // naming anyone else is a typed mismatch.
    if let Request::OpenSession { technician, .. } = &mut request {
        if technician.is_empty() {
            *technician = conn.tenant.clone();
        } else if *technician != conn.tenant {
            reject(
                RejectReason::IdentityMismatch,
                format!(
                    "connection is authenticated as {:?}, not {technician:?}",
                    conn.tenant
                ),
            );
            return;
        }
    }
    // Ownership guard: session handles are connection-scoped capabilities
    // at the net layer. A claimed session owned by another connection is
    // refused without touching the broker (no oracle about its state).
    if let Some(sid) = session_of(&request) {
        let owners = shared.owners.lock();
        if let Some(owner) = owners.get(&(shard, sid)) {
            if *owner != conn.id {
                drop(owners);
                reject(
                    RejectReason::ForeignSession,
                    format!("session s{sid} belongs to another connection"),
                );
                return;
            }
        }
    }
    let is_finish = matches!(request, Request::Finish { .. });
    let claimed = session_of(&request);
    let response = match request {
        // Stats goes through the exchange API: the caller sees the whole
        // fleet, not just their home shard.
        Request::Stats => Response::Stats {
            snapshot: shared.fleet.aggregate_stats(),
        },
        other => broker.handle(other),
    };
    match &response {
        Response::SessionOpened { session, .. } => {
            shared.owners.lock().insert((shard, session.0), conn.id);
        }
        Response::Finished { .. } if is_finish => {
            if let Some(sid) = claimed {
                shared.owners.lock().remove(&(shard, sid));
            }
        }
        Response::Error {
            kind: heimdall_service::proto::ErrorKind::SessionNotFound,
            ..
        } => {
            // The broker no longer knows the session (finished elsewhere
            // or idle-evicted): drop any stale claim.
            if let Some(sid) = claimed {
                shared.owners.lock().remove(&(shard, sid));
            }
        }
        _ => {}
    }
    if conn.push(ServerFrame::Mux { channel, response }) == PushOutcome::Evicted {
        shared.stats.count_reject(RejectReason::SlowConsumer);
    }
}
