//! The network front-end: acceptors, per-connection reader/writer
//! threads, and per-shard executors.
//!
//! Thread layout (one process):
//!
//! ```text
//! acceptor (per listener) ──spawns──► reader (per conn) ──► shard queue
//!                                        │                      │
//!                                        ▼                      ▼
//!                                     writer (per conn) ◄── executor (per shard)
//! ```
//!
//! A reader authenticates its connection ([`crate::auth`]), then parses
//! [`ClientFrame::Mux`] envelopes and enqueues work onto the home
//! shard's bounded queue — full queue is a typed `Backpressure` reject,
//! never a blocked reader. Executors drain their queue in batches of up
//! to [`NetConfig::max_batch`], run each request against their shard's
//! [`heimdall_service::Broker`], and push replies onto the owning
//! connection's bounded write queue — full queue is slow-consumer
//! eviction, never a blocked executor. Writers do nothing but drain
//! that queue onto the socket.
//!
//! Net-layer guards run before any request touches a broker:
//!
//! - `OpenSession` must name the authenticated tenant (or leave the
//!   technician empty to inherit it) — `IdentityMismatch` otherwise;
//! - session-bearing requests must address a session opened on *this*
//!   connection — `ForeignSession` otherwise;
//! - `Stats` answers with the fleet-wide aggregate via the exchange API.
//!
//! A background *monitor* thread drives the push side: every
//! [`NetConfig::scrape_interval`] it runs each shard's
//! [`heimdall_service::Broker::scrape_once`] (so SLO rules, flight
//! recorder, and time-series stores stay live even though the network
//! path never touches them), rebuilds the fleet-wide
//! [`FleetMetrics`] served on `MetricsQuery`, checks
//! [`NetConfig::net_thresholds`], and pumps the
//! [`heimdall_obs::EventBus`] that fans pushed [`ServerFrame::Event`]s
//! out to subscribed connections. Subscriptions are authorized by the
//! tenant's home shard (reference-monitor mediated) and delivered
//! through the connection's bounded write queue: a stalled subscriber
//! gets [`heimdall_obs::ObsEvent::Lagged`] gap markers, then
//! slow-consumer eviction — never unbounded buffering.
//!
//! [`NetServer::shutdown`] drains in flight work in order: stop
//! acceptors and readers (peers with queued replies still get them plus
//! a [`ServerFrame::ShuttingDown`]), let executors finish every queued
//! request, flush writers, then run a sync barrier over every shard
//! journal so every acknowledged commit is on stable storage before the
//! process exits.

use crate::auth::{server_handshake, HandshakeError, NonceGen, NonceLedger, TenantKeys};
use crate::conn::{
    tcp_acceptor, uds_acceptor, ConnHandle, NetAcceptor, NetStream, PatientReader, PushOutcome,
    TryPushOutcome, SHUTDOWN_MARKER,
};
use crate::fleet::BrokerFleet;
use crate::stats::{NetStats, NetStatsSnapshot};
use crate::wire::{ClientFrame, RejectReason, ServerFrame};
use heimdall_obs::{BusConfig, DeliverOutcome, EventBus, EventSink, ObsEvent};
use heimdall_service::proto::{read_frame, write_frame, FrameError, Request, Response};
use heimdall_service::FleetMetrics;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for one [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Requests queued per shard before readers bounce `Backpressure`.
    pub shard_queue_depth: usize,
    /// Replies queued per connection before the slow consumer is evicted.
    pub write_queue_depth: usize,
    /// Max requests one executor wake-up handles back-to-back.
    pub max_batch: usize,
    /// Socket read timeout; bounds how fast readers notice shutdown.
    pub read_timeout: Duration,
    /// Socket write timeout; bounds how long a writer can stall.
    pub write_timeout: Duration,
    /// Whole-handshake deadline for a fresh connection.
    pub handshake_timeout: Duration,
    /// Client nonces remembered for replay detection.
    pub nonce_history: usize,
    /// Monitor-thread tick: how often each shard is scraped, fleet
    /// metrics re-aggregated, thresholds checked, and the event bus
    /// pumped.
    pub scrape_interval: Duration,
    /// Per-subscriber event queue depth on the push bus.
    pub event_queue_depth: usize,
    /// Lifetime dropped-event budget per subscriber before slow-consumer
    /// eviction.
    pub event_max_dropped: u64,
    /// `(counter name, threshold)` pairs checked against the fleet-wide
    /// net counters each tick; the first crossing publishes one
    /// [`heimdall_obs::ObsEvent::NetThreshold`] (counters are monotone,
    /// so the latch never re-fires).
    pub net_thresholds: Vec<(String, u64)>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            shard_queue_depth: 1024,
            write_queue_depth: 256,
            max_batch: 32,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(2),
            nonce_history: 4096,
            scrape_interval: Duration::from_millis(25),
            event_queue_depth: 64,
            event_max_dropped: 256,
            net_thresholds: Vec::new(),
        }
    }
}

/// A listener ready to hand to [`NetServer::start`], plus any filesystem
/// cleanup it owes (UDS socket files).
pub struct BoundAcceptor {
    acceptor: Box<dyn NetAcceptor>,
    cleanup: Option<PathBuf>,
}

impl BoundAcceptor {
    /// Binds a TCP listener; returns the acceptor and the actual bound
    /// address (useful with port 0).
    pub fn tcp(addr: &str) -> io::Result<(BoundAcceptor, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok((
            BoundAcceptor {
                acceptor: tcp_acceptor(listener)?,
                cleanup: None,
            },
            local,
        ))
    }

    /// Binds a Unix-domain socket, replacing any stale socket file.
    pub fn uds(path: &Path) -> io::Result<BoundAcceptor> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        Ok(BoundAcceptor {
            acceptor: uds_acceptor(listener)?,
            cleanup: Some(path.to_path_buf()),
        })
    }
}

/// One unit of work: a request, the channel it rode in on, and the
/// connection its reply must go back to.
struct Work {
    conn: Arc<ConnHandle>,
    channel: u64,
    request: Request,
}

/// Everything the server's threads share.
struct Shared {
    fleet: Arc<BrokerFleet>,
    keys: TenantKeys,
    ledger: NonceLedger,
    nonces: NonceGen,
    stats: Arc<NetStats>,
    config: NetConfig,
    /// Flipped first: acceptors stop accepting, readers stop reading.
    shutdown: Arc<AtomicBool>,
    /// Flipped after readers are joined: executors may exit once their
    /// queue is empty (nothing can enqueue anymore).
    drained: AtomicBool,
    conn_ids: AtomicU64,
    /// `(shard, session id)` → owning connection id. Keyed per shard
    /// because each shard numbers its sessions independently.
    owners: Mutex<HashMap<(usize, u64), u64>>,
    shard_txs: Vec<SyncSender<Work>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    /// The push bus every shard broker and the monitor publish into.
    bus: Arc<EventBus>,
    /// connection id → (channel → bus subscriber id), so disconnects and
    /// `Unsubscribe` frames can tear down exactly their subscriptions.
    subs: Mutex<HashMap<u64, HashMap<u64, u64>>>,
    /// Latest fleet-wide aggregate, rebuilt each monitor tick and served
    /// on `MetricsQuery` without re-walking the shards.
    metrics: Mutex<FleetMetrics>,
}

/// What [`NetServer::shutdown`] observed.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Every shard journal reached stable storage (vacuously true for
    /// journal-less shards).
    pub journals_synced: bool,
    /// Connections accepted over the server's lifetime.
    pub connections_served: u64,
    /// Requests executed over the server's lifetime (all shards).
    pub frames_handled: u64,
}

/// A running front-end over a [`BrokerFleet`].
pub struct NetServer {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    cleanup: Vec<PathBuf>,
}

impl NetServer {
    /// Spawns acceptor and executor threads and starts serving.
    pub fn start(
        fleet: Arc<BrokerFleet>,
        keys: TenantKeys,
        config: NetConfig,
        acceptors: Vec<BoundAcceptor>,
    ) -> NetServer {
        let mut shard_txs = Vec::with_capacity(fleet.shard_count());
        let mut shard_rxs = Vec::with_capacity(fleet.shard_count());
        for _ in 0..fleet.shard_count() {
            let (tx, rx) = std::sync::mpsc::sync_channel(config.shard_queue_depth.max(1));
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let bus = Arc::new(EventBus::new(BusConfig {
            queue_depth: config.event_queue_depth,
            max_dropped: config.event_max_dropped,
        }));
        let stats = Arc::new(NetStats::new());
        // Wire the push side up before any thread runs: every shard
        // broker publishes into the shared bus, and this front-end's
        // counters join the fleet's exchange surface.
        for (i, shard) in fleet.shards().iter().enumerate() {
            shard.attach_event_bus(Arc::clone(&bus), i);
        }
        fleet.attach_net_stats(Arc::clone(&stats));
        let shared = Arc::new(Shared {
            ledger: NonceLedger::new(config.nonce_history),
            nonces: NonceGen::new("heimdall-net-server"),
            shutdown: Arc::new(AtomicBool::new(false)),
            drained: AtomicBool::new(false),
            conn_ids: AtomicU64::new(1),
            owners: Mutex::new(HashMap::new()),
            shard_txs,
            readers: Mutex::new(Vec::new()),
            writers: Mutex::new(Vec::new()),
            bus,
            subs: Mutex::new(HashMap::new()),
            metrics: Mutex::new(FleetMetrics::default()),
            fleet,
            keys,
            config,
            stats,
        });
        let monitor = {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || monitor_loop(&shared)))
        };
        let executors = shard_rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared, i, rx))
            })
            .collect();
        let mut cleanup = Vec::new();
        let acceptors = acceptors
            .into_iter()
            .map(|bound| {
                if let Some(path) = bound.cleanup {
                    cleanup.push(path);
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || acceptor_loop(&shared, bound.acceptor))
            })
            .collect();
        NetServer {
            shared,
            acceptors,
            executors,
            monitor,
            cleanup,
        }
    }

    /// Net-layer counters (handshakes, rejects, evictions, batches).
    pub fn net_stats(&self) -> NetStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The fleet this server fronts.
    pub fn fleet(&self) -> &Arc<BrokerFleet> {
        &self.shared.fleet
    }

    /// The push bus connecting shard brokers to subscribed connections.
    /// Exposed so harnesses (benches, drills) can publish synthetic
    /// events through the same delivery path real producers use.
    pub fn event_bus(&self) -> Arc<EventBus> {
        Arc::clone(&self.shared.bus)
    }

    /// The latest fleet-wide metrics aggregate (what `MetricsQuery`
    /// answers with), as of the last monitor tick.
    pub fn fleet_metrics(&self) -> FleetMetrics {
        self.shared.metrics.lock().clone()
    }

    /// Graceful stop: quiesce intake, drain every queued request, flush
    /// replies, sync every journal, unlink UDS socket files.
    pub fn shutdown(self) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.monitor {
            let _ = h.join();
        }
        for h in self.acceptors {
            let _ = h.join();
        }
        // Acceptors are done, so the reader set is final now.
        let readers = std::mem::take(&mut *self.shared.readers.lock());
        for h in readers {
            let _ = h.join();
        }
        // Nothing can enqueue anymore: let executors drain and exit.
        self.shared.drained.store(true, Ordering::Release);
        for h in self.executors {
            let _ = h.join();
        }
        // Executors dropped their ConnHandles; writers flush and exit.
        let writers = std::mem::take(&mut *self.shared.writers.lock());
        for h in writers {
            let _ = h.join();
        }
        let journals_synced = self.shared.fleet.sync_journals();
        for path in &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
        let stats = self.shared.stats.snapshot();
        ShutdownReport {
            journals_synced,
            connections_served: stats.connections_opened,
            frames_handled: stats.batched_frames,
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, acceptor: Box<dyn NetAcceptor>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match acceptor.poll_accept() {
            Ok(Some(stream)) => {
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || run_connection(&shared2, stream));
                shared.readers.lock().push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One connection, handshake to hangup. Runs on the reader thread.
fn run_connection(shared: &Arc<Shared>, mut stream: Box<dyn NetStream>) {
    NetStats::bump(&shared.stats.connections_opened);
    let _ = stream.set_stream_read_timeout(Some(shared.config.handshake_timeout));
    let tenant = match server_handshake(&mut stream, &shared.keys, &shared.ledger, &shared.nonces) {
        Ok(tenant) => tenant,
        Err(HandshakeError::Rejected(reason, _)) => {
            shared.stats.count_reject(reason);
            NetStats::bump(&shared.stats.connections_closed);
            return;
        }
        Err(HandshakeError::Transport(_)) => {
            NetStats::bump(&shared.stats.protocol_errors);
            NetStats::bump(&shared.stats.connections_closed);
            return;
        }
    };
    let shard = shared.fleet.route(&tenant);
    let conn_id = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
    let (control, write_half) = match (stream.try_clone_stream(), stream.try_clone_stream()) {
        (Ok(c), Ok(w)) => (c, w),
        _ => {
            NetStats::bump(&shared.stats.connections_closed);
            return;
        }
    };
    let _ = write_half.set_stream_write_timeout(Some(shared.config.write_timeout));
    let (conn, reply_rx) = ConnHandle::new(
        conn_id,
        tenant.clone(),
        shard,
        shared.config.write_queue_depth,
        control,
    );
    {
        let stats = Arc::clone(&shared.stats);
        let writer = std::thread::spawn(move || writer_loop(write_half, reply_rx, &stats));
        shared.writers.lock().push(writer);
    }
    conn.push(ServerFrame::Welcome {
        tenant: tenant.clone(),
        shard,
    });
    NetStats::bump(&shared.stats.handshakes_ok);

    let _ = stream.set_stream_read_timeout(Some(shared.config.read_timeout));
    let shard_tx = shared.shard_txs[shard].clone();
    let mut reader = PatientReader::new(stream, Arc::clone(&shared.shutdown));
    loop {
        if conn.is_evicted() {
            break;
        }
        match read_frame::<_, ClientFrame>(&mut reader) {
            Ok(ClientFrame::Mux { channel, request }) => {
                NetStats::bump(&shared.stats.frames_in);
                let work = Work {
                    conn: Arc::clone(&conn),
                    channel,
                    request,
                };
                match shard_tx.try_send(work) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        shared.stats.count_reject(RejectReason::Backpressure);
                        conn.push(ServerFrame::Reject {
                            channel: Some(channel),
                            reason: RejectReason::Backpressure,
                            message: format!("shard {shard} queue is full, retry"),
                        });
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Ok(ClientFrame::Subscribe { channel, topics }) => {
                NetStats::bump(&shared.stats.frames_in);
                handle_subscribe(shared, shard, &conn, channel, topics);
            }
            Ok(ClientFrame::Unsubscribe { channel }) => {
                NetStats::bump(&shared.stats.frames_in);
                let sub = shared
                    .subs
                    .lock()
                    .get_mut(&conn_id)
                    .and_then(|m| m.remove(&channel));
                match sub {
                    Some(id) => {
                        shared.bus.unsubscribe(id);
                        NetStats::bump(&shared.stats.subscriptions_closed);
                        conn.push(ServerFrame::Unsubscribed { channel });
                    }
                    None => {
                        shared.stats.count_reject(RejectReason::BadFrame);
                        conn.push(ServerFrame::Reject {
                            channel: Some(channel),
                            reason: RejectReason::BadFrame,
                            message: format!("no subscription on channel {channel}"),
                        });
                    }
                }
            }
            Ok(ClientFrame::Bye) => break,
            Ok(ClientFrame::Hello { .. }) | Ok(ClientFrame::Proof { .. }) => {
                shared.stats.count_reject(RejectReason::BadFrame);
                conn.push(ServerFrame::Reject {
                    channel: None,
                    reason: RejectReason::BadFrame,
                    message: "connection is already authenticated".into(),
                });
            }
            Err(FrameError::Io(e)) if e.kind() == SHUTDOWN_MARKER => {
                conn.push(ServerFrame::ShuttingDown);
                break;
            }
            Err(FrameError::Codec(m)) => {
                NetStats::bump(&shared.stats.protocol_errors);
                conn.push(ServerFrame::Reject {
                    channel: None,
                    reason: RejectReason::BadFrame,
                    message: m,
                });
            }
            Err(FrameError::Closed) => break,
            Err(_) => {
                // Truncated / TooLarge / transport error: cannot resync.
                NetStats::bump(&shared.stats.protocol_errors);
                break;
            }
        }
    }
    // This connection's session claims die with it; the sessions
    // themselves live on in the broker until finished or idle-evicted.
    shared.owners.lock().retain(|_, owner| *owner != conn_id);
    // Its push subscriptions die too — the bus must not keep delivering
    // into a dead connection's write queue.
    if let Some(channels) = shared.subs.lock().remove(&conn_id) {
        for (_, sub_id) in channels {
            shared.bus.unsubscribe(sub_id);
        }
    }
    NetStats::bump(&shared.stats.connections_closed);
}

/// One `Subscribe` frame: channel-collision check, home-shard
/// authorization (reference-monitor mediated for fleet-scoped topics),
/// then bus registration with the connection's write queue as the sink.
/// Runs on the reader thread — authorization is a short mediation pass,
/// not broker work, so it never queues behind the shard executor.
fn handle_subscribe(
    shared: &Arc<Shared>,
    shard: usize,
    conn: &Arc<ConnHandle>,
    channel: u64,
    topics: Vec<heimdall_obs::Topic>,
) {
    if topics.is_empty() {
        shared.stats.count_reject(RejectReason::BadFrame);
        conn.push(ServerFrame::Reject {
            channel: Some(channel),
            reason: RejectReason::BadFrame,
            message: "subscribe needs at least one topic".into(),
        });
        return;
    }
    if shared
        .subs
        .lock()
        .get(&conn.id)
        .is_some_and(|m| m.contains_key(&channel))
    {
        shared.stats.count_reject(RejectReason::BadFrame);
        conn.push(ServerFrame::Reject {
            channel: Some(channel),
            reason: RejectReason::BadFrame,
            message: format!("channel {channel} already has a subscription"),
        });
        return;
    }
    match shared
        .fleet
        .shard(shard)
        .authorize_subscription(&conn.tenant, &topics)
    {
        Ok(()) => {
            let sink = Box::new(ConnEventSink {
                conn: Arc::clone(conn),
                channel,
                stats: Arc::clone(&shared.stats),
            });
            let sub_id = shared.bus.subscribe(&conn.tenant, &topics, sink);
            shared
                .subs
                .lock()
                .entry(conn.id)
                .or_default()
                .insert(channel, sub_id);
            NetStats::bump(&shared.stats.subscriptions_opened);
            conn.push(ServerFrame::Subscribed { channel, topics });
        }
        Err(e) => {
            // The denial is already recorded broker-side (audit entry +
            // denial counter); the subscriber learns why, but no events
            // ever flow.
            shared.stats.count_reject(RejectReason::SubscriptionDenied);
            conn.push(ServerFrame::Reject {
                channel: Some(channel),
                reason: RejectReason::SubscriptionDenied,
                message: e.message(),
            });
        }
    }
}

/// [`EventSink`] over one connection's bounded write queue. Delivery
/// never blocks and never evicts by itself — a momentarily full queue is
/// `Busy` (the bus buffers and gap-marks); only the bus's drop budget
/// decides eviction, which lands here as [`EventSink::evict`] and reuses
/// the slow-consumer path.
struct ConnEventSink {
    conn: Arc<ConnHandle>,
    channel: u64,
    stats: Arc<NetStats>,
}

impl EventSink for ConnEventSink {
    fn deliver(&self, event: &ObsEvent) -> DeliverOutcome {
        let frame = ServerFrame::Event {
            channel: self.channel,
            event: event.clone(),
        };
        match self.conn.try_push(frame) {
            TryPushOutcome::Sent => {
                NetStats::bump(&self.stats.events_pushed);
                DeliverOutcome::Delivered
            }
            TryPushOutcome::Full => DeliverOutcome::Busy,
            TryPushOutcome::Gone => DeliverOutcome::Gone,
        }
    }

    fn evict(&self) {
        self.stats.count_reject(RejectReason::SlowConsumer);
        self.conn.evict();
    }
}

fn writer_loop(
    mut stream: Box<dyn NetStream>,
    replies: Receiver<ServerFrame>,
    stats: &Arc<NetStats>,
) {
    while let Ok(frame) = replies.recv() {
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
        NetStats::bump(&stats.frames_out);
    }
    stream.shutdown_stream();
}

/// The monitor thread: the only place the fleet's observability stores
/// advance in network mode. Each tick it (1) drives `scrape_once` on
/// every shard — feeding SLO evaluation, flight-recorder checks, and the
/// time-series store, and publishing trips/re-arms/dumps to the bus;
/// (2) rebuilds the fleet-wide metrics aggregate and publishes a
/// `MetricsDelta` when it materially changed; (3) checks net counters
/// against configured thresholds (once-latched — the counters are
/// monotone); (4) pumps the bus so `Busy` subscribers drain.
fn monitor_loop(shared: &Arc<Shared>) {
    let mut tripped: HashSet<String> = HashSet::new();
    let mut last: Option<FleetMetrics> = None;
    while !shared.shutdown.load(Ordering::Acquire) {
        for broker in shared.fleet.shards() {
            broker.scrape_once();
        }
        let metrics = aggregate_fleet_metrics(shared);
        let now_ns = shared.fleet.shard(0).telemetry().now_ns();
        if let Some(prev) = &last {
            if let Some(changed) = describe_delta(prev, &metrics) {
                shared.bus.publish(&ObsEvent::MetricsDelta {
                    shards: metrics.shards,
                    changed,
                    at_ns: now_ns,
                });
            }
        }
        last = Some(metrics.clone());
        *shared.metrics.lock() = metrics;
        if !shared.config.net_thresholds.is_empty() {
            let snapshot = shared.stats.snapshot();
            for (name, threshold) in &shared.config.net_thresholds {
                let value = snapshot
                    .counters()
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                if value >= *threshold && tripped.insert(name.clone()) {
                    shared.bus.publish(&ObsEvent::NetThreshold {
                        counter: name.clone(),
                        value,
                        threshold: *threshold,
                        at_ns: now_ns,
                    });
                }
            }
        }
        shared.bus.pump();
        // Sleep in small slices so shutdown is noticed promptly even
        // with a long scrape interval.
        let mut remaining = shared.config.scrape_interval;
        while !remaining.is_zero() && !shared.shutdown.load(Ordering::Acquire) {
            let slice = remaining.min(Duration::from_millis(10));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
    // One final pump so events published during the last tick still
    // reach subscriber queues before writers flush.
    shared.bus.pump();
}

/// Fleet-wide metrics: per-shard service snapshots merged, scrape and
/// alert totals summed, net counters from the exchange aggregate, bus
/// figures taken once (the bus is shared, not per-shard — summing it
/// per shard would multiply-count every event).
fn aggregate_fleet_metrics(shared: &Arc<Shared>) -> FleetMetrics {
    let mut service = heimdall_service::StatsSnapshot::default();
    let mut scrapes_total = 0;
    let mut alerts_total = 0;
    for broker in shared.fleet.shards() {
        let fm = broker.fleet_metrics();
        service.merge(&fm.service);
        scrapes_total += fm.scrapes_total;
        alerts_total += fm.alerts_total;
    }
    let net = shared
        .fleet
        .aggregate_net_stats()
        .counters()
        .into_iter()
        .map(|(name, value)| (name.to_string(), value))
        .collect();
    let bus = shared.bus.stats();
    FleetMetrics {
        shards: shared.fleet.shard_count(),
        service,
        net,
        scrapes_total,
        alerts_total,
        events_published: bus.published,
        events_delivered: bus.delivered,
        events_dropped: bus.dropped,
        subscribers: bus.subscribers,
    }
}

/// Which sections of the fleet aggregate changed, or `None` when only
/// self-referential churn happened. `scrapes_total` ticks every pass,
/// the bus figures move on every publish, and `events_pushed` /
/// `frames_out` tick when a pushed `MetricsDelta` is *delivered* — all
/// are excluded, because comparing any of them would make the delta
/// stream feed itself.
fn describe_delta(prev: &FleetMetrics, next: &FleetMetrics) -> Option<String> {
    fn quiet_net(net: &[(String, u64)]) -> Vec<&(String, u64)> {
        net.iter()
            .filter(|(name, _)| name != "events_pushed" && name != "frames_out")
            .collect()
    }
    let mut parts = Vec::new();
    if prev.service != next.service {
        parts.push("service");
    }
    if quiet_net(&prev.net) != quiet_net(&next.net) {
        parts.push("net");
    }
    if prev.alerts_total != next.alerts_total {
        parts.push("alerts");
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("+"))
    }
}

fn executor_loop(shared: &Arc<Shared>, shard: usize, rx: Receiver<Work>) {
    let broker = Arc::clone(shared.fleet.shard(shard));
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(first) => {
                let mut batch = Vec::with_capacity(shared.config.max_batch.max(1));
                batch.push(first);
                while batch.len() < shared.config.max_batch.max(1) {
                    match rx.try_recv() {
                        Ok(work) => batch.push(work),
                        Err(_) => break,
                    }
                }
                NetStats::bump(&shared.stats.batches);
                shared
                    .stats
                    .batched_frames
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                for work in batch {
                    handle_work(shared, shard, &broker, work);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.drained.load(Ordering::Acquire) {
                    // Final sweep: producers are gone, empty means done.
                    while let Ok(work) = rx.try_recv() {
                        NetStats::bump(&shared.stats.batches);
                        shared.stats.batched_frames.fetch_add(1, Ordering::Relaxed);
                        handle_work(shared, shard, &broker, work);
                    }
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The session id a request addresses, when it addresses one.
fn session_of(request: &Request) -> Option<u64> {
    match request {
        Request::Exec { session, .. }
        | Request::TopologyView { session }
        | Request::Finish { session } => Some(session.0),
        Request::AnalyzeQuery {
            session: Some(id), ..
        } => Some(id.0),
        _ => None,
    }
}

/// Net-layer guards, then one broker round-trip, then the reply push.
/// Runs on the shard's executor thread.
fn handle_work(
    shared: &Arc<Shared>,
    shard: usize,
    broker: &Arc<heimdall_service::Broker>,
    work: Work,
) {
    let Work {
        conn,
        channel,
        mut request,
    } = work;
    let reject = |reason: RejectReason, message: String| {
        shared.stats.count_reject(reason);
        conn.push(ServerFrame::Reject {
            channel: Some(channel),
            reason,
            message,
        });
    };
    // Attribution guard: a session is opened *as* the authenticated
    // tenant. An empty technician inherits the connection identity;
    // naming anyone else is a typed mismatch.
    if let Request::OpenSession { technician, .. } = &mut request {
        if technician.is_empty() {
            *technician = conn.tenant.clone();
        } else if *technician != conn.tenant {
            reject(
                RejectReason::IdentityMismatch,
                format!(
                    "connection is authenticated as {:?}, not {technician:?}",
                    conn.tenant
                ),
            );
            return;
        }
    }
    // Ownership guard: session handles are connection-scoped capabilities
    // at the net layer. A claimed session owned by another connection is
    // refused without touching the broker (no oracle about its state).
    if let Some(sid) = session_of(&request) {
        let owners = shared.owners.lock();
        if let Some(owner) = owners.get(&(shard, sid)) {
            if *owner != conn.id {
                drop(owners);
                reject(
                    RejectReason::ForeignSession,
                    format!("session s{sid} belongs to another connection"),
                );
                return;
            }
        }
    }
    let is_finish = matches!(request, Request::Finish { .. });
    let claimed = session_of(&request);
    let response = match request {
        // Stats goes through the exchange API: the caller sees the whole
        // fleet, not just their home shard.
        Request::Stats => Response::Stats {
            snapshot: shared.fleet.aggregate_stats(),
        },
        // MetricsQuery answers with the monitor thread's fleet-wide
        // aggregate — service, net, and push-bus figures in one shape.
        Request::MetricsQuery => Response::Metrics {
            metrics: shared.metrics.lock().clone(),
        },
        // Telemetry gains the net layer's own counters: the shard's
        // Prometheus exposition plus `heimdall_net_*` series.
        Request::Telemetry => {
            let mut text = broker.telemetry_text();
            shared.stats.snapshot().render_prometheus_into(&mut text);
            Response::Telemetry { text }
        }
        other => broker.handle(other),
    };
    match &response {
        Response::SessionOpened { session, .. } => {
            shared.owners.lock().insert((shard, session.0), conn.id);
        }
        Response::Finished { .. } if is_finish => {
            if let Some(sid) = claimed {
                shared.owners.lock().remove(&(shard, sid));
            }
        }
        Response::Error {
            kind: heimdall_service::proto::ErrorKind::SessionNotFound,
            ..
        } => {
            // The broker no longer knows the session (finished elsewhere
            // or idle-evicted): drop any stale claim.
            if let Some(sid) = claimed {
                shared.owners.lock().remove(&(shard, sid));
            }
        }
        _ => {}
    }
    if conn.push(ServerFrame::Mux { channel, response }) == PushOutcome::Evicted {
        shared.stats.count_reject(RejectReason::SlowConsumer);
    }
}
