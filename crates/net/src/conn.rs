//! Transport abstraction and per-connection plumbing.
//!
//! [`NetStream`] unifies `TcpStream` and `UnixStream` behind one
//! object-safe trait (clone, timeouts, shutdown), so the whole server —
//! handshake, reader, writer, eviction — is written once for both
//! transports. [`NetAcceptor`] does the same for the listeners, polled
//! non-blockingly so acceptor threads can notice shutdown.
//!
//! [`ConnHandle`] is the server's view of one authenticated connection:
//! the bounded reply queue (slow consumers are evicted, never awaited)
//! and a control clone of the socket used to slam it shut from any
//! thread. [`PatientReader`] adapts a timeout-equipped blocking socket
//! for `read_frame`: timeouts are absorbed (so a frame split across
//! timeout windows reassembles instead of desyncing the length prefix)
//! until the server-wide shutdown flag flips, at which point it
//! surfaces a marker error the reader loop treats as "stop now".

use crate::wire::ServerFrame;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// One bidirectional byte stream the server can serve.
pub trait NetStream: Read + Write + Send + Sync {
    /// Another handle onto the same underlying socket (shared fd).
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>>;
    /// Bounds how long a `read` may block (`None` = forever).
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Bounds how long a `write` may block (`None` = forever).
    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Half-closes both directions; blocked reads and writes on *any*
    /// clone of this socket fail promptly.
    fn shutdown_stream(&self);
}

impl NetStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        self.try_clone().map(|s| Box::new(s) as Box<dyn NetStream>)
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(timeout)
    }

    fn shutdown_stream(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

impl NetStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        self.try_clone().map(|s| Box::new(s) as Box<dyn NetStream>)
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(timeout)
    }

    fn shutdown_stream(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

/// A listener the server can poll without blocking forever.
pub trait NetAcceptor: Send {
    /// One accepted connection, `None` when nothing is pending.
    fn poll_accept(&self) -> io::Result<Option<Box<dyn NetStream>>>;
    /// Human-readable bind address, for logs.
    fn describe(&self) -> String;
}

/// Wraps a `TcpListener` as a pollable acceptor (sets non-blocking).
pub fn tcp_acceptor(listener: TcpListener) -> io::Result<Box<dyn NetAcceptor>> {
    listener.set_nonblocking(true)?;
    Ok(Box::new(TcpAcceptor { listener }))
}

/// Wraps a `UnixListener` as a pollable acceptor (sets non-blocking).
pub fn uds_acceptor(listener: UnixListener) -> io::Result<Box<dyn NetAcceptor>> {
    listener.set_nonblocking(true)?;
    Ok(Box::new(UdsAcceptor { listener }))
}

struct TcpAcceptor {
    listener: TcpListener,
}

impl NetAcceptor for TcpAcceptor {
    fn poll_accept(&self) -> io::Result<Option<Box<dyn NetStream>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets go back to blocking mode: the
                // per-connection threads use timeouts, not polling.
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true).ok();
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn describe(&self) -> String {
        match self.listener.local_addr() {
            Ok(a) => format!("tcp://{a}"),
            Err(_) => "tcp://?".into(),
        }
    }
}

struct UdsAcceptor {
    listener: UnixListener,
}

impl NetAcceptor for UdsAcceptor {
    fn poll_accept(&self) -> io::Result<Option<Box<dyn NetStream>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn describe(&self) -> String {
        match self.listener.local_addr() {
            Ok(a) => format!(
                "uds://{:?}",
                a.as_pathname().unwrap_or(std::path::Path::new("?"))
            ),
            Err(_) => "uds://?".into(),
        }
    }
}

/// What [`ConnHandle::push`] did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Queued for the writer thread.
    Sent,
    /// The bounded queue was full: the connection was marked evicted and
    /// its socket slammed shut. This frame (and the connection) is gone.
    Evicted,
    /// The writer already exited; the connection is dead.
    Gone,
}

/// What [`ConnHandle::try_push`] did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPushOutcome {
    /// Queued for the writer thread.
    Sent,
    /// The bounded queue is momentarily full. Unlike [`ConnHandle::push`],
    /// nothing was evicted — the caller owns the retry/drop policy (the
    /// event bus buffers and gap-marks instead of killing the connection
    /// outright).
    Full,
    /// The connection is evicted or its writer exited.
    Gone,
}

/// The server's shared handle to one authenticated connection.
pub struct ConnHandle {
    /// Server-assigned connection id (never reused within a process).
    pub id: u64,
    /// The tenant the handshake bound to this connection.
    pub tenant: String,
    /// The broker shard this tenant homes on.
    pub shard: usize,
    tx: SyncSender<ServerFrame>,
    evicted: AtomicBool,
    control: Box<dyn NetStream>,
}

impl ConnHandle {
    /// Builds the handle plus the receiving end for the writer thread.
    pub fn new(
        id: u64,
        tenant: String,
        shard: usize,
        queue_depth: usize,
        control: Box<dyn NetStream>,
    ) -> (Arc<ConnHandle>, Receiver<ServerFrame>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(queue_depth.max(1));
        (
            Arc::new(ConnHandle {
                id,
                tenant,
                shard,
                tx,
                evicted: AtomicBool::new(false),
                control,
            }),
            rx,
        )
    }

    /// Queues a frame for the writer without ever blocking. A full queue
    /// means the peer stopped reading: the connection is evicted on the
    /// spot — the reference monitor must not let one stalled client pin
    /// server memory or threads.
    pub fn push(&self, frame: ServerFrame) -> PushOutcome {
        if self.evicted.load(Ordering::Acquire) {
            return PushOutcome::Gone;
        }
        match self.tx.try_send(frame) {
            Ok(()) => PushOutcome::Sent,
            Err(TrySendError::Full(_)) => {
                self.evict();
                PushOutcome::Evicted
            }
            Err(TrySendError::Disconnected(_)) => PushOutcome::Gone,
        }
    }

    /// Queues a frame without blocking *and without evicting on a full
    /// queue* — the push-event path's building block: the event bus
    /// treats `Full` as backpressure (buffer + gap-mark) and applies its
    /// own drop budget before deciding to evict.
    pub fn try_push(&self, frame: ServerFrame) -> TryPushOutcome {
        if self.evicted.load(Ordering::Acquire) {
            return TryPushOutcome::Gone;
        }
        match self.tx.try_send(frame) {
            Ok(()) => TryPushOutcome::Sent,
            Err(TrySendError::Full(_)) => TryPushOutcome::Full,
            Err(TrySendError::Disconnected(_)) => TryPushOutcome::Gone,
        }
    }

    /// Marks the connection evicted and shuts the socket down, waking
    /// any thread blocked on it.
    pub fn evict(&self) {
        self.evicted.store(true, Ordering::Release);
        self.control.shutdown_stream();
    }

    pub fn is_evicted(&self) -> bool {
        self.evicted.load(Ordering::Acquire)
    }
}

/// Marker `ErrorKind` [`PatientReader`] uses to signal "shutdown flag
/// observed" to the reader loop. Deliberately *not* `Interrupted` —
/// `read_frame` retries `Interrupted` internally and would spin.
pub const SHUTDOWN_MARKER: io::ErrorKind = io::ErrorKind::ConnectionAborted;

/// Adapts a blocking socket with a read timeout for `read_frame`.
///
/// Timeouts (`WouldBlock`/`TimedOut`) are absorbed and the read retried,
/// so a frame that trickles in across several timeout windows
/// reassembles correctly — the length prefix never desyncs. When `stop`
/// flips, the next timeout surfaces as [`SHUTDOWN_MARKER`] and the
/// reader loop exits cleanly between frames.
pub struct PatientReader<S> {
    inner: S,
    stop: Arc<AtomicBool>,
}

impl<S: Read> PatientReader<S> {
    pub fn new(inner: S, stop: Arc<AtomicBool>) -> PatientReader<S> {
        PatientReader { inner, stop }
    }
}

impl<S: Read> Read for PatientReader<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Acquire) {
                return Err(io::Error::new(SHUTDOWN_MARKER, "server shutting down"));
            }
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::RejectReason;

    fn loopback_pair() -> (UnixStream, UnixStream) {
        UnixStream::pair().expect("socketpair")
    }

    #[test]
    fn push_evicts_on_full_queue() {
        let (a, _b) = loopback_pair();
        let (handle, rx) = ConnHandle::new(1, "t".into(), 0, 2, Box::new(a));
        assert_eq!(handle.push(ServerFrame::ShuttingDown), PushOutcome::Sent);
        assert_eq!(handle.push(ServerFrame::ShuttingDown), PushOutcome::Sent);
        // Third frame overflows the depth-2 queue: typed eviction.
        assert_eq!(
            handle.push(ServerFrame::Reject {
                channel: None,
                reason: RejectReason::SlowConsumer,
                message: String::new(),
            }),
            PushOutcome::Evicted
        );
        assert!(handle.is_evicted());
        // Once evicted, everything is Gone — no resurrection.
        assert_eq!(handle.push(ServerFrame::ShuttingDown), PushOutcome::Gone);
        drop(rx);
    }

    #[test]
    fn push_reports_gone_after_writer_exit() {
        let (a, _b) = loopback_pair();
        let (handle, rx) = ConnHandle::new(2, "t".into(), 0, 4, Box::new(a));
        drop(rx); // Writer thread finished.
        assert_eq!(handle.push(ServerFrame::ShuttingDown), PushOutcome::Gone);
        assert!(!handle.is_evicted(), "gone is not evicted");
    }

    #[test]
    fn patient_reader_absorbs_timeouts_until_stopped() {
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"))
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut r = PatientReader::new(AlwaysTimeout, Arc::clone(&stop));
        let flag = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            flag.store(true, Ordering::Release);
        });
        let mut buf = [0u8; 4];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), SHUTDOWN_MARKER);
        t.join().unwrap();
    }
}
