//! Per-connection authenticated handshake.
//!
//! Three frames bind a tenant identity to a connection:
//!
//! 1. client → `Hello { tenant, client_nonce }`
//! 2. server → `Challenge { server_nonce }`
//! 3. client → `Proof { mac }` where
//!    `mac = hex(HMAC-SHA256(key, "heimdall-net-v1|tenant|client_nonce|server_nonce"))`
//!
//! The HMAC is the enforcer's in-repo RFC 2104 implementation
//! ([`heimdall_enforcer::crypto`]) — no new crypto enters the tree. Both
//! nonces are bound into the proof, so neither side can replay the
//! other's half of an old exchange; additionally the server keeps a
//! bounded ledger of recently seen `(tenant, client_nonce)` pairs and
//! refuses exact handshake replays outright with a typed
//! [`RejectReason::ReplayedNonce`].
//!
//! After the handshake, every frame on the connection is attributed to
//! the authenticated tenant — credentials never ride along with
//! individual requests.
//!
//! Server nonces come from [`NonceGen`]: SHA-256 over a process seed, a
//! monotonic counter, and the wall clock. Like the enforcer's own
//! primitives this is prototype-grade — a production deployment would
//! draw from the OS entropy pool.

use crate::wire::{ClientFrame, RejectReason, ServerFrame};
use heimdall_enforcer::crypto::{hex, hmac_sha256, sha256};
use heimdall_service::proto::{read_frame, write_frame, FrameError};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Domain-separation prefix for handshake MACs, versioned so a future
/// protocol revision cannot be confused with this one.
pub const HANDSHAKE_DOMAIN: &str = "heimdall-net-v1";

/// The tenant → shared-key table the server authenticates against.
#[derive(Default)]
pub struct TenantKeys {
    keys: HashMap<String, Vec<u8>>,
}

impl TenantKeys {
    pub fn new() -> TenantKeys {
        TenantKeys::default()
    }

    /// Registers (or rotates) a tenant's shared key.
    pub fn insert(&mut self, tenant: &str, key: &[u8]) {
        self.keys.insert(tenant.to_string(), key.to_vec());
    }

    pub fn key_for(&self, tenant: &str) -> Option<&[u8]> {
        self.keys.get(tenant).map(|k| k.as_slice())
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The expected proof MAC for a handshake transcript.
pub fn handshake_mac(key: &[u8], tenant: &str, client_nonce: &str, server_nonce: &str) -> String {
    let transcript = format!("{HANDSHAKE_DOMAIN}|{tenant}|{client_nonce}|{server_nonce}");
    hex(&hmac_sha256(key, transcript.as_bytes()))
}

/// Bounded ledger of `(tenant, client_nonce)` pairs already spent on a
/// successful or attempted handshake. Oldest entries fall off once
/// `capacity` is reached, bounding memory against a nonce-spray.
pub struct NonceLedger {
    capacity: usize,
    inner: Mutex<LedgerInner>,
}

struct LedgerInner {
    seen: HashSet<String>,
    order: VecDeque<String>,
}

impl NonceLedger {
    pub fn new(capacity: usize) -> NonceLedger {
        NonceLedger {
            capacity: capacity.max(1),
            inner: Mutex::new(LedgerInner {
                seen: HashSet::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Records the pair; returns `false` when it was already present
    /// (i.e. the handshake is a replay).
    pub fn record(&self, tenant: &str, nonce: &str) -> bool {
        let key = format!("{tenant}:{nonce}");
        let mut inner = self.inner.lock();
        if !inner.seen.insert(key.clone()) {
            return false;
        }
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.seen.remove(&old);
            }
        }
        true
    }
}

/// Server-nonce generator: `hex(sha256(seed ‖ counter ‖ now_ns))`.
/// Unique per call within a process; see the module docs for the
/// prototype-grade caveat.
pub struct NonceGen {
    seed: [u8; 32],
    counter: AtomicU64,
}

impl NonceGen {
    pub fn new(seed_label: &str) -> NonceGen {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        NonceGen {
            seed: sha256(format!("{seed_label}|{now}|{}", std::process::id()).as_bytes()),
            counter: AtomicU64::new(0),
        }
    }

    pub fn next(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut buf = Vec::with_capacity(48);
        buf.extend_from_slice(&self.seed);
        buf.extend_from_slice(&n.to_be_bytes());
        buf.extend_from_slice(&now.to_be_bytes());
        hex(&sha256(&buf))
    }
}

/// How a handshake failed, with the matching wire-level reject.
#[derive(Debug)]
pub enum HandshakeError {
    /// Transport died mid-handshake; nothing to send back.
    Transport(FrameError),
    /// A typed refusal that was (best-effort) reported to the peer.
    Rejected(RejectReason, String),
}

/// Runs the server side of the handshake on a fresh connection.
///
/// On success the connection is authenticated: returns the tenant plus
/// the client nonce that was spent. On refusal a typed
/// [`ServerFrame::Reject`] is written before the error returns, so the
/// peer learns *why* (an unauthenticated peer learns the reason category
/// only — never whether a given tenant exists with which key).
pub fn server_handshake<S: Read + Write>(
    stream: &mut S,
    keys: &TenantKeys,
    ledger: &NonceLedger,
    nonces: &NonceGen,
) -> Result<String, HandshakeError> {
    let reject = |stream: &mut S, reason: RejectReason, message: String| {
        let _ = write_frame(
            stream,
            &ServerFrame::Reject {
                channel: None,
                reason,
                message: message.clone(),
            },
        );
        Err(HandshakeError::Rejected(reason, message))
    };

    let hello: ClientFrame = read_frame(stream).map_err(HandshakeError::Transport)?;
    let (tenant, client_nonce) = match hello {
        ClientFrame::Hello { tenant, nonce } => (tenant, nonce),
        _ => {
            return reject(
                stream,
                RejectReason::NotAuthenticated,
                "handshake must start with Hello".into(),
            )
        }
    };
    let key = match keys.key_for(&tenant) {
        Some(k) => k.to_vec(),
        None => {
            return reject(
                stream,
                RejectReason::UnknownTenant,
                format!("tenant {tenant:?} is not registered"),
            )
        }
    };
    // Spend the client nonce *before* challenging: a replayed Hello is
    // refused even if the attacker never intends to answer the
    // challenge, and a failed proof still burns the nonce.
    if !ledger.record(&tenant, &client_nonce) {
        return reject(
            stream,
            RejectReason::ReplayedNonce,
            "client nonce was already spent".into(),
        );
    }
    let server_nonce = nonces.next();
    write_frame(
        stream,
        &ServerFrame::Challenge {
            nonce: server_nonce.clone(),
        },
    )
    .map_err(HandshakeError::Transport)?;
    let proof: ClientFrame = read_frame(stream).map_err(HandshakeError::Transport)?;
    let mac = match proof {
        ClientFrame::Proof { mac } => mac,
        _ => {
            return reject(
                stream,
                RejectReason::BadFrame,
                "expected Proof after Challenge".into(),
            )
        }
    };
    let expected = handshake_mac(&key, &tenant, &client_nonce, &server_nonce);
    // Constant-time-ish comparison: fold the byte-wise difference so the
    // comparison cost does not depend on the first mismatching byte.
    let ok = mac.len() == expected.len()
        && mac
            .bytes()
            .zip(expected.bytes())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0;
    if !ok {
        return reject(stream, RejectReason::BadMac, "proof does not verify".into());
    }
    Ok(tenant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_deterministic_and_binds_every_field() {
        let base = handshake_mac(b"k", "t", "cn", "sn");
        assert_eq!(base, handshake_mac(b"k", "t", "cn", "sn"));
        assert_ne!(base, handshake_mac(b"x", "t", "cn", "sn"), "key bound");
        assert_ne!(base, handshake_mac(b"k", "u", "cn", "sn"), "tenant bound");
        assert_ne!(
            base,
            handshake_mac(b"k", "t", "cx", "sn"),
            "client nonce bound"
        );
        assert_ne!(
            base,
            handshake_mac(b"k", "t", "cn", "sx"),
            "server nonce bound"
        );
    }

    #[test]
    fn ledger_detects_replay_and_stays_bounded() {
        let ledger = NonceLedger::new(4);
        assert!(ledger.record("t", "n1"));
        assert!(!ledger.record("t", "n1"), "exact replay refused");
        assert!(ledger.record("u", "n1"), "same nonce, other tenant is fine");
        for i in 0..10 {
            assert!(ledger.record("t", &format!("fill{i}")));
        }
        // n1 has been evicted by now — a replay succeeds, which is the
        // accepted cost of the bounded ledger (the challenge nonce still
        // blocks full-exchange replays).
        assert!(ledger.record("t", "n1"));
        assert!(ledger.inner.lock().seen.len() <= 4);
    }

    #[test]
    fn nonce_gen_never_repeats_in_sequence() {
        let g = NonceGen::new("test");
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(g.next()), "nonce repeated");
        }
    }
}
