//! The sharded broker fleet: N independent [`Broker`]s behind a
//! consistent-hash router.
//!
//! Each shard is a full broker — its own `CommitGuard`, locks, journal
//! handle, privilege memo, audit chain — over its own production
//! replica, modelling the per-customer-cluster layout of a real MSP:
//! tenants are partitioned across shards, and nothing a shard does ever
//! takes another shard's locks. On one core the win is the same as at
//! fleet scale, just for a different resource: optimistic-commit verify
//! and retry work is quadratic in the number of tenants racing one
//! `CommitGuard`, so splitting T tenants across S shards divides the
//! wasted re-verification roughly by S.
//!
//! Cross-shard reads go through the *exchange API* — explicit,
//! lock-free-across-shards calls ([`BrokerFleet::aggregate_stats`],
//! [`BrokerFleet::compose_exchange`]) that each shard answers from its
//! own state. There is deliberately no fleet-wide lock to take.
//!
//! Routing is a 64-vnode consistent-hash ring over SHA-256: adding a
//! shard moves ~1/N of tenants, and the mapping is stable across
//! processes (no process-seeded hasher).

use crate::stats::{NetStats, NetStatsSnapshot};
use heimdall_analyze::{analyze_pair, AnalysisReport};
use heimdall_enforcer::crypto::sha256;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::Task;
use heimdall_service::{Broker, BrokerConfig, StatsSnapshot};
use heimdall_verify::policy::PolicySet;
use parking_lot::Mutex;
use std::sync::Arc;

/// Virtual nodes per shard on the hash ring.
const VNODES: usize = 64;

/// N independent broker shards plus the ring that routes tenants.
pub struct BrokerFleet {
    shards: Vec<Arc<Broker>>,
    /// `(ring position, shard index)`, sorted by position.
    ring: Vec<(u64, usize)>,
    /// Net-layer counter sources registered by front-ends serving this
    /// fleet, folded into the exchange API alongside service stats.
    net_sources: Mutex<Vec<Arc<NetStats>>>,
}

fn ring_point(label: &str) -> u64 {
    let d = sha256(label.as_bytes());
    u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
}

impl BrokerFleet {
    /// Assembles a fleet from already-built shards (e.g. durable brokers
    /// recovered from their own journals).
    pub fn new(shards: Vec<Arc<Broker>>) -> BrokerFleet {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        let mut ring = Vec::with_capacity(shards.len() * VNODES);
        for (i, _) in shards.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((ring_point(&format!("shard-{i}-vnode-{v}")), i));
            }
        }
        ring.sort_unstable();
        BrokerFleet {
            shards,
            ring,
            net_sources: Mutex::new(Vec::new()),
        }
    }

    /// Builds `n` in-memory shards, each its own replica of `production`
    /// under the same policies and config.
    pub fn from_template(
        production: &Network,
        policies: &PolicySet,
        config: &BrokerConfig,
        n: usize,
    ) -> BrokerFleet {
        let shards = (0..n.max(1))
            .map(|_| {
                Arc::new(Broker::new(
                    production.clone(),
                    policies.clone(),
                    config.clone(),
                ))
            })
            .collect();
        BrokerFleet::new(shards)
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, i: usize) -> &Arc<Broker> {
        &self.shards[i]
    }

    pub fn shards(&self) -> &[Arc<Broker>] {
        &self.shards
    }

    /// The shard index `tenant` homes on: first ring point at or after
    /// the tenant's hash, wrapping at the top.
    pub fn route(&self, tenant: &str) -> usize {
        let h = ring_point(tenant);
        match self.ring.binary_search_by(|(p, _)| p.cmp(&h)) {
            Ok(i) => self.ring[i].1,
            Err(i) if i < self.ring.len() => self.ring[i].1,
            Err(_) => self.ring[0].1,
        }
    }

    /// The broker `tenant` homes on.
    pub fn broker_for(&self, tenant: &str) -> &Arc<Broker> {
        &self.shards[self.route(tenant)]
    }

    /// Exchange API: fleet-wide stats, one snapshot per shard, merged.
    /// Counters sum; latency quantiles take the per-shard max.
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        let mut it = self.shards.iter();
        let mut total = it.next().expect("non-empty fleet").stats();
        for shard in it {
            total.merge(&shard.stats());
        }
        total
    }

    /// Registers a front-end's [`NetStats`] with the exchange so
    /// [`BrokerFleet::aggregate_net_stats`] sees it. Multiple front-ends
    /// (e.g. a TCP and a UDS server over the same fleet) each register
    /// their own counters; snapshots are summed counter-by-counter.
    pub fn attach_net_stats(&self, stats: Arc<NetStats>) {
        self.net_sources.lock().push(stats);
    }

    /// Exchange API: fleet-wide net-layer counters, one snapshot per
    /// registered front-end, merged by summing. Empty (all-zero) when no
    /// front-end is attached — the fleet itself never speaks the wire.
    pub fn aggregate_net_stats(&self) -> NetStatsSnapshot {
        let sources = self.net_sources.lock();
        let mut total = NetStatsSnapshot::default();
        for s in sources.iter() {
            total.merge(&s.snapshot());
        }
        total
    }

    /// Exchange API: would `tenant_a`'s task compose safely with
    /// `tenant_b`'s if they ran concurrently? Each home shard derives
    /// its own tenant's privilege spec (hitting that shard's memo);
    /// the pair is then analyzed against shard A's production replica.
    /// No shard takes another shard's locks — the exchange moves derived
    /// specs, not lock guards.
    pub fn compose_exchange(
        &self,
        tenant_a: &str,
        task_a: &Task,
        tenant_b: &str,
        task_b: &Task,
    ) -> AnalysisReport {
        let shard_a = self.broker_for(tenant_a);
        let shard_b = self.broker_for(tenant_b);
        let (spec_a, _) = shard_a.derive_for(task_a);
        let (spec_b, _) = shard_b.derive_for(task_b);
        analyze_pair(&shard_a.production(), &spec_a, &spec_b)
    }

    /// Sync barrier across every shard's journal. `true` only when every
    /// journal (that exists) reached stable storage.
    pub fn sync_journals(&self) -> bool {
        self.shards.iter().all(|s| s.sync_journal())
    }

    /// Idle-TTL eviction across the fleet; total sessions evicted.
    pub fn evict_idle_all(&self) -> usize {
        self.shards.iter().map(|s| s.evict_idle()).sum()
    }

    /// Audit-chain verification across the fleet.
    pub fn verify_audit_all(&self) -> bool {
        self.shards.iter().all(|s| s.verify_audit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::TaskKind;
    use heimdall_routing::converge;
    use heimdall_verify::mine::{mine_policies, MinerInput};

    fn fleet(n: usize) -> BrokerFleet {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        BrokerFleet::from_template(&g.net, &policies, &BrokerConfig::default(), n)
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let f = fleet(4);
        let mut hit = vec![false; 4];
        for i in 0..200 {
            let tenant = format!("tech{i:02}");
            let s = f.route(&tenant);
            assert_eq!(s, f.route(&tenant), "stable route");
            hit[s] = true;
        }
        assert!(
            hit.iter().all(|h| *h),
            "200 tenants should touch all 4 shards: {hit:?}"
        );
    }

    #[test]
    fn ring_rebalance_moves_a_minority_of_tenants() {
        let f4 = fleet(4);
        let f5 = fleet(5);
        let tenants: Vec<String> = (0..500).map(|i| format!("tech{i:03}")).collect();
        let moved = tenants
            .iter()
            .filter(|t| {
                let (a, b) = (f4.route(t), f5.route(t));
                a != b && b != 4 // moved somewhere other than the new shard
            })
            .count();
        let onto_new = tenants.iter().filter(|t| f5.route(t) == 4).count();
        assert!(
            moved < tenants.len() / 10,
            "consistent hashing should not reshuffle existing shards: {moved}"
        );
        assert!(onto_new > 0, "the new shard must take some tenants");
    }

    #[test]
    fn aggregate_stats_sums_across_shards() {
        let f = fleet(2);
        let t = Task {
            kind: TaskKind::Connectivity,
            affected: vec!["h1".into(), "h4".into()],
        };
        // Open one session on each shard directly.
        f.shard(0).open_session("a", t.clone()).unwrap();
        f.shard(1).open_session("b", t).unwrap();
        let total = f.aggregate_stats();
        assert_eq!(total.sessions_opened, 2, "summed across shards");
        assert_eq!(f.shard(0).stats().sessions_opened, 1);
    }

    #[test]
    fn compose_exchange_analyzes_cross_shard_pairs() {
        let f = fleet(2);
        let overlapping = Task {
            kind: TaskKind::Connectivity,
            affected: vec!["h1".into(), "h4".into()],
        };
        let report = f.compose_exchange("tech00", &overlapping, "tech17", &overlapping);
        // Identical tasks derive identical specs: the pair must overlap.
        assert!(
            report.has_code(heimdall_analyze::codes::CONCURRENT_OVERLAP),
            "identical tasks should flag concurrent overlap: {}",
            report.summary()
        );
    }

    #[test]
    fn aggregate_net_stats_sums_attached_frontends() {
        let f = fleet(2);
        assert_eq!(f.aggregate_net_stats(), NetStatsSnapshot::default());
        let a = Arc::new(NetStats::new());
        let b = Arc::new(NetStats::new());
        NetStats::bump(&a.handshakes_ok);
        NetStats::bump(&b.handshakes_ok);
        NetStats::bump(&b.events_pushed);
        f.attach_net_stats(Arc::clone(&a));
        f.attach_net_stats(Arc::clone(&b));
        let total = f.aggregate_net_stats();
        assert_eq!(total.handshakes_ok, 2, "summed across front-ends");
        assert_eq!(total.events_pushed, 1);
    }

    #[test]
    fn sync_and_verify_cover_every_shard() {
        let f = fleet(3);
        assert!(f.sync_journals(), "no journals attached: vacuous sync");
        assert!(f.verify_audit_all());
        assert_eq!(f.evict_idle_all(), 0);
    }
}
