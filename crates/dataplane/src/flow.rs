//! Flows: the 5-tuple abstraction traced through the network.

use heimdall_netmodel::acl::Proto;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A concrete flow (5-tuple). Policy probes default to TCP/80 — the paper's
/// canonical ticket is "a web service running on server H cannot receive
/// packets".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flow {
    pub proto: Proto,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
}

impl Flow {
    /// The canonical verification probe: TCP from an ephemeral port to :80.
    pub fn probe(src: Ipv4Addr, dst: Ipv4Addr) -> Flow {
        Flow {
            proto: Proto::Tcp,
            src,
            dst,
            src_port: 49152,
            dst_port: 80,
        }
    }

    /// An ICMP echo flow (what `ping` traces).
    pub fn icmp(src: Ipv4Addr, dst: Ipv4Addr) -> Flow {
        Flow {
            proto: Proto::Icmp,
            src,
            dst,
            src_port: 0,
            dst_port: 0,
        }
    }

    /// A TCP flow to a specific destination port.
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, dst_port: u16) -> Flow {
        Flow {
            proto: Proto::Tcp,
            src,
            dst,
            src_port: 49152,
            dst_port,
        }
    }

    /// The reverse flow (swapped endpoints and ports).
    pub fn reversed(&self) -> Flow {
        Flow {
            proto: self.proto,
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.proto {
            Proto::Icmp => write!(f, "icmp {} -> {}", self.src, self.dst),
            p => write!(
                f,
                "{} {}:{} -> {}:{}",
                p.keyword(),
                self.src,
                self.src_port,
                self.dst,
                self.dst_port
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_tcp_80() {
        let f = Flow::probe("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap());
        assert_eq!(f.proto, Proto::Tcp);
        assert_eq!(f.dst_port, 80);
    }

    #[test]
    fn reversed_swaps() {
        let f = Flow::tcp("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap(), 443);
        let r = f.reversed();
        assert_eq!(r.src, f.dst);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn display_forms() {
        let f = Flow::icmp("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap());
        assert_eq!(f.to_string(), "icmp 1.1.1.1 -> 2.2.2.2");
        let f = Flow::probe("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap());
        assert_eq!(f.to_string(), "tcp 1.1.1.1:49152 -> 2.2.2.2:80");
    }
}
