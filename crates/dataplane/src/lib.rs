//! # heimdall-dataplane
//!
//! Data-plane simulation over a converged control plane: hop-by-hop flow
//! tracing with Batfish-style dispositions.
//!
//! Given a [`heimdall_routing::ControlPlane`], [`DataPlane::trace`] walks a
//! flow from its source device: FIB longest-prefix match, egress ACL,
//! L2-domain delivery to the next hop (which is where VLAN mismatches and
//! down links bite), ingress ACL, repeat — until the flow is `Delivered`,
//! `ExitsNetwork`, or dies with a diagnosable disposition. Multipath
//! ([`DataPlane::trace_all`]) explores every ECMP branch; *reachability* is
//! defined as "every branch delivers", which is the strong form policy
//! verification wants.
//!
//! ```
//! use heimdall_dataplane::{DataPlane, Flow};
//!
//! let g = heimdall_netmodel::gen::enterprise_network();
//! let cp = heimdall_routing::converge(&g.net);
//! let dp = DataPlane::new(&g.net, &cp);
//!
//! let flow = Flow::probe("10.1.1.10".parse().unwrap(), "10.2.1.10".parse().unwrap());
//! let trace = dp.trace(g.net.idx_of("h1"), &flow);
//! assert!(trace.disposition.is_success());
//! // The path crosses the firewall guarding the DMZ.
//! assert!(trace.hops.iter().any(|h| h.device == "fw1"));
//! ```

pub mod flow;
pub mod reach;
pub mod trace;

pub use flow::Flow;
pub use reach::{reach_matrix, ReachMatrix};
pub use trace::{DataPlane, Disposition, Hop, Trace};
