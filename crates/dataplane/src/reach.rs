//! Reachability matrices: all-pairs host reachability, the raw material the
//! policy miner (config2spec analog) and the attack-surface metric consume.

use crate::flow::Flow;
use crate::trace::DataPlane;
use heimdall_netmodel::topology::DeviceIdx;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Directed reachability between named endpoints.
#[derive(Debug, Clone, Default)]
pub struct ReachMatrix {
    /// `(src, dst) -> reachable` for every probed ordered pair.
    pub pairs: BTreeMap<(String, String), bool>,
}

impl ReachMatrix {
    /// Whether `src` can reach `dst` (false if the pair was not probed).
    pub fn reachable(&self, src: &str, dst: &str) -> bool {
        self.pairs
            .get(&(src.to_string(), dst.to_string()))
            .copied()
            .unwrap_or(false)
    }

    /// Number of reachable ordered pairs.
    pub fn reachable_count(&self) -> usize {
        self.pairs.values().filter(|v| **v).count()
    }

    /// Total probed pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing was probed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pairs that differ between two matrices (same probe set assumed):
    /// `(src, dst, before, after)`.
    pub fn diff(&self, other: &ReachMatrix) -> Vec<(String, String, bool, bool)> {
        let mut out = Vec::new();
        for (k, v) in &self.pairs {
            let w = other.pairs.get(k).copied().unwrap_or(false);
            if *v != w {
                out.push((k.0.clone(), k.1.clone(), *v, w));
            }
        }
        out
    }
}

/// Probes every ordered pair of `endpoints` (device index, primary address,
/// name triples) with the canonical TCP/80 probe. Same-device pairs are
/// skipped.
pub fn reach_matrix(
    dp: &DataPlane<'_>,
    endpoints: &[(DeviceIdx, Ipv4Addr, String)],
) -> ReachMatrix {
    let mut m = ReachMatrix::default();
    for (si, sip, sname) in endpoints {
        for (di, dip, dname) in endpoints {
            if si == di {
                continue;
            }
            let flow = Flow::probe(*sip, *dip);
            m.pairs
                .insert((sname.clone(), dname.clone()), dp.reachable(*si, &flow));
        }
    }
    m
}

/// Convenience: endpoint triples for every host in the network.
pub fn host_endpoints(
    net: &heimdall_netmodel::topology::Network,
) -> Vec<(DeviceIdx, Ipv4Addr, String)> {
    net.devices()
        .filter(|(_, d)| d.kind == heimdall_netmodel::device::DeviceKind::Host)
        .filter_map(|(i, d)| d.primary_address().map(|a| (i, a, d.name.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_routing::converge;

    #[test]
    fn enterprise_matrix_shape() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let eps = host_endpoints(&g.net);
        assert_eq!(eps.len(), 9);
        let m = reach_matrix(&dp, &eps);
        assert_eq!(m.len(), 72); // 9 * 8 ordered pairs
                                 // Intra-LAN always works; cross-LAN tcp is locked down; DMZ open.
        assert!(m.reachable("h1", "h2"));
        assert!(m.reachable("h2", "h1"));
        assert!(!m.reachable("h1", "h4"));
        assert!(m.reachable("h1", "srv1"));
        assert!(m.reachable("h4", "srv1"));
        assert!(m.reachable("h7", "srv1"));
        assert!(m.reachable("h8", "srv1"));
        assert!(!m.reachable("srv1", "h1"));
    }

    #[test]
    fn expected_reachable_count_for_enterprise() {
        // Design target (see DESIGN.md): intra-LAN pairs (6+6+2) + all 8
        // clients -> srv1 = 22 reachable ordered pairs.
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let m = reach_matrix(&dp, &host_endpoints(&g.net));
        assert_eq!(m.reachable_count(), 22, "matrix: {:#?}", m.pairs);
    }

    #[test]
    fn diff_detects_changes() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let eps = host_endpoints(&g.net);
        let before = reach_matrix(&dp, &eps);

        let mut net2 = g.net.clone();
        // Break the fw1 DMZ permit for LAN2.
        let fw1 = net2.device_by_name_mut("fw1").unwrap();
        let acl = fw1.config.acls.get_mut("100").unwrap();
        acl.entries.remove(1);
        let cp2 = converge(&net2);
        let dp2 = DataPlane::new(&net2, &cp2);
        let after = reach_matrix(&dp2, &eps);

        let d = before.diff(&after);
        assert_eq!(d.len(), 3, "h4,h5,h6 -> srv1 flip: {d:?}");
        assert!(d
            .iter()
            .all(|(_, dst, was, now)| dst == "srv1" && *was && !*now));
    }
}
