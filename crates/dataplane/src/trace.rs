//! Hop-by-hop flow tracing: the engine behind `ping`/`traceroute` in the
//! twin consoles and behind every policy verification.

use crate::flow::Flow;
use heimdall_netmodel::acl::AclAction;
use heimdall_netmodel::ip::Prefix;
use heimdall_netmodel::topology::{DeviceIdx, Network};
use heimdall_routing::fib::NULL_IFACE;
use heimdall_routing::ControlPlane;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::Ipv4Addr;

/// How a traced flow ended.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Disposition {
    /// Reached a device owning the destination address.
    Delivered { device: String },
    /// Forwarded out an edge toward a destination outside the modeled
    /// address space (assumed carried onward by the provider).
    ExitsNetwork { device: String, iface: String },
    /// Dropped by an inbound ACL.
    DeniedIn {
        device: String,
        acl: String,
        line: usize,
    },
    /// Dropped by an outbound ACL.
    DeniedOut {
        device: String,
        acl: String,
        line: usize,
    },
    /// No FIB entry matched.
    NoRoute { device: String },
    /// Matched a discard (Null0) route.
    NullRouted { device: String },
    /// The next hop (or the destination itself) is on a connected subnet
    /// but no live endpoint answers there — down link, missing host, or
    /// VLAN mismatch.
    NeighborUnreachable { device: String, iface: String },
    /// Forwarding revisited a device (routing loop).
    Loop { device: String },
}

impl Disposition {
    /// Whether the flow got where it was going.
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            Disposition::Delivered { .. } | Disposition::ExitsNetwork { .. }
        )
    }

    /// `(device, acl, line)` when the flow was dropped by an ACL — the
    /// hook monitoring counters use to attribute ACL hits per device.
    pub fn acl_hit(&self) -> Option<(&str, &str, usize)> {
        match self {
            Disposition::DeniedIn { device, acl, line }
            | Disposition::DeniedOut { device, acl, line } => Some((device, acl, *line)),
            _ => None,
        }
    }

    /// The device where the flow ended.
    pub fn device(&self) -> &str {
        match self {
            Disposition::Delivered { device }
            | Disposition::ExitsNetwork { device, .. }
            | Disposition::DeniedIn { device, .. }
            | Disposition::DeniedOut { device, .. }
            | Disposition::NoRoute { device }
            | Disposition::NullRouted { device }
            | Disposition::NeighborUnreachable { device, .. }
            | Disposition::Loop { device } => device,
        }
    }
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disposition::Delivered { device } => write!(f, "delivered at {device}"),
            Disposition::ExitsNetwork { device, iface } => {
                write!(f, "exits network at {device} via {iface}")
            }
            Disposition::DeniedIn { device, acl, line } => {
                write!(f, "denied inbound at {device} by acl {acl} line {line}")
            }
            Disposition::DeniedOut { device, acl, line } => {
                write!(f, "denied outbound at {device} by acl {acl} line {line}")
            }
            Disposition::NoRoute { device } => write!(f, "no route at {device}"),
            Disposition::NullRouted { device } => write!(f, "null-routed at {device}"),
            Disposition::NeighborUnreachable { device, iface } => {
                write!(f, "neighbor unreachable at {device} via {iface}")
            }
            Disposition::Loop { device } => write!(f, "forwarding loop at {device}"),
        }
    }
}

/// One hop in a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    pub device: String,
    pub in_iface: Option<String>,
    pub out_iface: Option<String>,
}

/// A complete path taken by (one ECMP branch of) a flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    pub flow: Flow,
    pub hops: Vec<Hop>,
    pub disposition: Disposition,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flow {}", self.flow)?;
        for (i, h) in self.hops.iter().enumerate() {
            let inn = h.in_iface.as_deref().unwrap_or("-");
            let out = h.out_iface.as_deref().unwrap_or("-");
            writeln!(f, "  {:>2}. {} (in {inn}, out {out})", i + 1, h.device)?;
        }
        write!(f, "  => {}", self.disposition)
    }
}

/// The data plane: a network plus its converged control plane.
pub struct DataPlane<'a> {
    pub net: &'a Network,
    pub cp: &'a ControlPlane,
    /// Union of every interface subnet: the modeled address space, used to
    /// distinguish `ExitsNetwork` from `NeighborUnreachable`.
    internal: Vec<Prefix>,
    /// L3 endpoints per broadcast domain (precomputed: next-hop delivery is
    /// the hot path of every trace).
    domain_endpoints: HashMap<usize, Vec<(DeviceIdx, String)>>,
    /// Addresses owned per device.
    device_addrs: HashMap<DeviceIdx, HashSet<Ipv4Addr>>,
}

/// One pending branch during multipath exploration: the device the packet
/// is at, the interface it arrived on, the hops so far, and the devices
/// already visited on this branch.
type Branch = (DeviceIdx, Option<String>, Vec<Hop>, HashSet<DeviceIdx>);

/// Maximum hops before declaring a loop (defense in depth beyond the
/// visited-set check).
const MAX_HOPS: usize = 64;
/// Cap on explored ECMP branches per flow.
const MAX_BRANCHES: usize = 64;

impl<'a> DataPlane<'a> {
    /// Wraps a network and its converged control plane.
    pub fn new(net: &'a Network, cp: &'a ControlPlane) -> Self {
        let mut internal: Vec<Prefix> = net
            .devices()
            .flat_map(|(_, d)| d.config.interfaces.iter().filter_map(|i| i.subnet()))
            .collect();
        internal.sort();
        internal.dedup();
        let mut domain_endpoints: HashMap<usize, Vec<(DeviceIdx, String)>> = HashMap::new();
        let mut device_addrs: HashMap<DeviceIdx, HashSet<Ipv4Addr>> = HashMap::new();
        for (di, dev) in net.devices() {
            for iface in &dev.config.interfaces {
                let Some(a) = iface.address else { continue };
                if !iface.is_up() {
                    continue;
                }
                device_addrs.entry(di).or_default().insert(a.ip);
                if let Some(dom) = cp.l2.domain(di, &iface.name) {
                    domain_endpoints
                        .entry(dom)
                        .or_default()
                        .push((di, iface.name.clone()));
                }
            }
        }
        DataPlane {
            net,
            cp,
            internal,
            domain_endpoints,
            device_addrs,
        }
    }

    /// The L3 endpoint on `(cur, out_iface)`'s broadcast domain whose device
    /// owns `target`, if any.
    fn deliver_to(
        &self,
        cur: DeviceIdx,
        out_iface: &str,
        target: Ipv4Addr,
    ) -> Option<(DeviceIdx, String)> {
        let dom = self.cp.l2.domain(cur, out_iface)?;
        self.domain_endpoints
            .get(&dom)?
            .iter()
            .find(|(pd, pif)| {
                !(*pd == cur && pif == out_iface)
                    && self
                        .device_addrs
                        .get(pd)
                        .map(|s| s.contains(&target))
                        .unwrap_or(false)
            })
            .cloned()
    }

    fn is_internal(&self, ip: Ipv4Addr) -> bool {
        self.internal.iter().any(|p| p.contains(ip))
    }

    /// Traces the flow from `src`, following the lowest-ranked next hop at
    /// each ECMP point (the path a `traceroute` would display).
    pub fn trace(&self, src: DeviceIdx, flow: &Flow) -> Trace {
        self.trace_branches(src, flow, false)
            .into_iter()
            .next()
            .expect("at least one branch")
    }

    /// Traces every ECMP branch. A flow is *reachable* iff every branch
    /// succeeds (see [`DataPlane::reachable`]).
    pub fn trace_all(&self, src: DeviceIdx, flow: &Flow) -> Vec<Trace> {
        self.trace_branches(src, flow, true)
    }

    /// Strong reachability: at least one branch, and all branches succeed.
    pub fn reachable(&self, src: DeviceIdx, flow: &Flow) -> bool {
        let ts = self.trace_all(src, flow);
        !ts.is_empty() && ts.iter().all(|t| t.disposition.is_success())
    }

    fn trace_branches(&self, src: DeviceIdx, flow: &Flow, multipath: bool) -> Vec<Trace> {
        let mut done = Vec::new();
        let mut stack: Vec<Branch> = vec![(src, None, Vec::new(), HashSet::new())];
        while let Some((cur, in_iface, hops, visited)) = stack.pop() {
            if done.len() >= MAX_BRANCHES {
                break;
            }
            self.step(
                cur, in_iface, hops, visited, flow, multipath, &mut stack, &mut done,
            );
        }
        done
    }

    /// Executes one device's worth of forwarding for a branch.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        cur: DeviceIdx,
        in_iface: Option<String>,
        mut hops: Vec<Hop>,
        mut visited: HashSet<DeviceIdx>,
        flow: &Flow,
        multipath: bool,
        stack: &mut Vec<Branch>,
        done: &mut Vec<Trace>,
    ) {
        let dev = self.net.device(cur);
        let name = dev.name.clone();
        let mut finish = |hops: Vec<Hop>, d: Disposition| {
            done.push(Trace {
                flow: *flow,
                hops,
                disposition: d,
            });
        };

        // Loop detection.
        if !visited.insert(cur) || hops.len() >= MAX_HOPS {
            finish(hops, Disposition::Loop { device: name });
            return;
        }

        // Ingress ACL (not applied at the originating device).
        if let Some(inn) = &in_iface {
            if let Some(acl_name) = dev.config.interface(inn).and_then(|i| i.acl_in.clone()) {
                if let Some(acl) = dev.config.acls.get(&acl_name) {
                    let hit = acl.first_match(
                        flow.proto,
                        flow.src,
                        flow.dst,
                        flow.src_port,
                        flow.dst_port,
                    );
                    let denied = match hit {
                        Some(i) => acl.entries[i].action == AclAction::Deny,
                        None => true, // implicit deny
                    };
                    if denied {
                        hops.push(Hop {
                            device: name.clone(),
                            in_iface: in_iface.clone(),
                            out_iface: None,
                        });
                        finish(
                            hops,
                            Disposition::DeniedIn {
                                device: name,
                                acl: acl_name,
                                line: hit.map(|i| i + 1).unwrap_or(acl.entries.len() + 1),
                            },
                        );
                        return;
                    }
                }
            }
        }

        // Local delivery?
        if dev.addresses().contains(&flow.dst) {
            hops.push(Hop {
                device: name.clone(),
                in_iface,
                out_iface: None,
            });
            finish(hops, Disposition::Delivered { device: name });
            return;
        }

        // FIB lookup.
        let fib = self.cp.fib(cur);
        let Some((_, entries)) = fib.lookup(flow.dst) else {
            hops.push(Hop {
                device: name.clone(),
                in_iface,
                out_iface: None,
            });
            finish(hops, Disposition::NoRoute { device: name });
            return;
        };
        let chosen: Vec<_> = if multipath {
            entries.iter().collect()
        } else {
            entries.iter().take(1).collect()
        };

        for entry in chosen {
            let mut hops = hops.clone();
            let visited = visited.clone();
            let out_iface = entry.iface.clone();

            if out_iface == NULL_IFACE {
                hops.push(Hop {
                    device: name.clone(),
                    in_iface: in_iface.clone(),
                    out_iface: Some(out_iface),
                });
                finish(
                    hops,
                    Disposition::NullRouted {
                        device: name.clone(),
                    },
                );
                continue;
            }

            // Egress ACL.
            if let Some(acl_name) = dev
                .config
                .interface(&out_iface)
                .and_then(|i| i.acl_out.clone())
            {
                if let Some(acl) = dev.config.acls.get(&acl_name) {
                    let hit = acl.first_match(
                        flow.proto,
                        flow.src,
                        flow.dst,
                        flow.src_port,
                        flow.dst_port,
                    );
                    let denied = match hit {
                        Some(i) => acl.entries[i].action == AclAction::Deny,
                        None => true,
                    };
                    if denied {
                        hops.push(Hop {
                            device: name.clone(),
                            in_iface: in_iface.clone(),
                            out_iface: Some(out_iface.clone()),
                        });
                        finish(
                            hops,
                            Disposition::DeniedOut {
                                device: name.clone(),
                                acl: acl_name,
                                line: hit.map(|i| i + 1).unwrap_or(acl.entries.len() + 1),
                            },
                        );
                        continue;
                    }
                }
            }

            // Deliver across the broadcast domain to the gateway (or to the
            // destination itself for connected routes).
            let target = entry.gateway.unwrap_or(flow.dst);
            let peer = self.deliver_to(cur, &out_iface, target);

            hops.push(Hop {
                device: name.clone(),
                in_iface: in_iface.clone(),
                out_iface: Some(out_iface.clone()),
            });
            match peer {
                Some((pd, pif)) => {
                    stack.push((pd, Some(pif), hops, visited));
                }
                None => {
                    if entry.gateway.is_some() && !self.is_internal(flow.dst) {
                        finish(
                            hops,
                            Disposition::ExitsNetwork {
                                device: name.clone(),
                                iface: out_iface,
                            },
                        );
                    } else {
                        finish(
                            hops,
                            Disposition::NeighborUnreachable {
                                device: name.clone(),
                                iface: out_iface,
                            },
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_routing::converge;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn client_reaches_dmz_server() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let flow = Flow::probe(ip("10.1.1.10"), ip("10.2.1.10"));
        let t = dp.trace(g.net.idx_of("h1"), &flow);
        assert!(
            matches!(&t.disposition, Disposition::Delivered { device } if device == "srv1"),
            "got {}",
            t
        );
        assert!(dp.reachable(g.net.idx_of("h1"), &flow));
        // The path crosses the firewall.
        assert!(t.hops.iter().any(|h| h.device == "fw1"));
    }

    #[test]
    fn dmz_cannot_initiate_into_client_lan() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let flow = Flow::probe(ip("10.2.1.10"), ip("10.1.1.10"));
        let ts = dp.trace_all(g.net.idx_of("srv1"), &flow);
        assert!(ts.iter().all(
            |t| matches!(&t.disposition, Disposition::DeniedOut { device, acl, .. }
                if device == "acc1" && acl == "120")
        ));
    }

    #[test]
    fn icmp_pierces_the_lockdown() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let flow = Flow::icmp(ip("10.1.2.10"), ip("10.1.1.10"));
        assert!(dp.reachable(g.net.idx_of("h4"), &flow), "ping is allowed");
        let tcp = Flow::probe(ip("10.1.2.10"), ip("10.1.1.10"));
        assert!(!dp.reachable(g.net.idx_of("h4"), &tcp), "tcp is not");
    }

    #[test]
    fn external_traffic_exits_at_border() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let flow = Flow::probe(ip("10.1.1.10"), ip("93.184.216.34"));
        let t = dp.trace(g.net.idx_of("h1"), &flow);
        assert!(
            matches!(&t.disposition, Disposition::ExitsNetwork { device, iface }
                if device == "bdr1" && iface == "Gi0/9"),
            "got {}",
            t
        );
    }

    #[test]
    fn vlan_mismatch_strands_host() {
        let g = enterprise_network();
        let mut net = g.net.clone();
        // Move h7's access port into the quarantine VLAN (the paper's VLAN
        // issue).
        net.device_by_name_mut("acc3")
            .unwrap()
            .config
            .interface_mut("Gi0/2")
            .unwrap()
            .switchport = Some(heimdall_netmodel::vlan::SwitchPortMode::Access { vlan: 31 });
        let cp = converge(&net);
        let dp = DataPlane::new(&net, &cp);
        let flow = Flow::probe(ip("10.1.3.10"), ip("10.2.1.10"));
        let t = dp.trace(net.idx_of("h7"), &flow);
        assert!(
            matches!(&t.disposition, Disposition::NeighborUnreachable { device, .. } if device == "h7"),
            "got {}",
            t
        );
        // h8 keeps working.
        let flow8 = Flow::probe(ip("10.1.3.11"), ip("10.2.1.10"));
        assert!(dp.reachable(net.idx_of("h8"), &flow8));
    }

    #[test]
    fn missing_route_reports_no_route() {
        let g = enterprise_network();
        let mut net = g.net.clone();
        // Strip h4's default route: the very first lookup fails.
        net.device_by_name_mut("h4")
            .unwrap()
            .config
            .static_routes
            .clear();
        let cp = converge(&net);
        let dp = DataPlane::new(&net, &cp);
        let t = dp.trace(
            net.idx_of("h4"),
            &Flow::probe(ip("10.1.2.10"), ip("10.2.1.10")),
        );
        assert!(matches!(&t.disposition, Disposition::NoRoute { device } if device == "h4"));
    }

    #[test]
    fn null_route_discards() {
        let g = enterprise_network();
        let mut net = g.net.clone();
        net.device_by_name_mut("bdr1")
            .unwrap()
            .config
            .static_routes
            .push(heimdall_netmodel::proto::StaticRoute::discard(
                "203.0.113.0/24".parse().unwrap(),
            ));
        let cp = converge(&net);
        let dp = DataPlane::new(&net, &cp);
        let t = dp.trace(
            net.idx_of("bdr1"),
            &Flow::probe(ip("10.0.0.1"), ip("203.0.113.5")),
        );
        assert!(matches!(&t.disposition, Disposition::NullRouted { device } if device == "bdr1"));
    }

    #[test]
    fn forwarding_loop_detected() {
        // Two routers statically pointing a prefix at each other.
        let mut b = heimdall_netmodel::builder::NetBuilder::new();
        b.router("r1").router("r2");
        let (_, r1_ip, _, r2_ip, _) = b.connect("r1", "r2");
        b.device_mut("r1")
            .config
            .static_routes
            .push(heimdall_netmodel::proto::StaticRoute::new(
                "9.9.9.0/24".parse().unwrap(),
                r2_ip,
            ));
        b.device_mut("r2")
            .config
            .static_routes
            .push(heimdall_netmodel::proto::StaticRoute::new(
                "9.9.9.0/24".parse().unwrap(),
                r1_ip,
            ));
        let net = b.build();
        let cp = converge(&net);
        let dp = DataPlane::new(&net, &cp);
        let t = dp.trace(net.idx_of("r1"), &Flow::probe(r1_ip, ip("9.9.9.9")));
        assert!(
            matches!(t.disposition, Disposition::Loop { .. }),
            "got {}",
            t
        );
    }

    #[test]
    fn denied_in_reports_acl_and_line() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        // Spoofed RFC1918 source arriving at the border from upstream can't
        // be traced from outside (no external device), but the same ACL
        // logic triggers on DeniedOut paths; exercise DeniedIn on a custom
        // net instead.
        let mut b = heimdall_netmodel::builder::NetBuilder::new();
        b.router("r1").router("r2");
        b.connect("r1", "r2");
        b.lan("r1", "10.1.0.0/24".parse().unwrap(), &["a"]);
        b.lan("r2", "10.2.0.0/24".parse().unwrap(), &["z"]);
        b.enable_ospf_all(0);
        {
            let r2 = b.device_mut("r2");
            r2.config
                .upsert_acl(heimdall_netmodel::acl::Acl::new("50").entry(
                    heimdall_netmodel::acl::AclEntry::simple(
                        heimdall_netmodel::acl::AclAction::Deny,
                        heimdall_netmodel::acl::Proto::Any,
                        "10.1.0.0/24".parse().unwrap(),
                        heimdall_netmodel::ip::Prefix::DEFAULT,
                    ),
                ));
            r2.config.interface_mut("Gi0/0").unwrap().acl_in = Some("50".to_string());
        }
        let net = b.build();
        let cp2 = converge(&net);
        let dp2 = DataPlane::new(&net, &cp2);
        let t = dp2.trace(
            net.idx_of("a"),
            &Flow::probe(ip("10.1.0.10"), ip("10.2.0.10")),
        );
        match &t.disposition {
            Disposition::DeniedIn { device, acl, line } => {
                assert_eq!(device, "r2");
                assert_eq!(acl, "50");
                assert_eq!(*line, 1);
            }
            other => panic!("expected DeniedIn, got {other}"),
        }
        drop(dp);
    }

    #[test]
    fn multipath_explores_parallel_fabric() {
        let g = heimdall_netmodel::gen::university_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let flow = Flow::probe(ip("172.16.1.10"), ip("172.16.10.10"));
        let ts = dp.trace_all(g.net.idx_of("cs-h1"), &flow);
        assert!(ts.len() > 1, "ECMP fabric must branch, got {}", ts.len());
        assert!(ts.iter().all(|t| t.disposition.is_success()));
        assert!(dp.reachable(g.net.idx_of("cs-h1"), &flow));
    }

    #[test]
    fn trace_display_is_readable() {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let t = dp.trace(
            g.net.idx_of("h1"),
            &Flow::probe(ip("10.1.1.10"), ip("10.2.1.10")),
        );
        let s = t.to_string();
        assert!(s.contains("flow tcp 10.1.1.10:49152 -> 10.2.1.10:80"));
        assert!(s.contains("delivered at srv1"));
    }
}
