//! The session broker: ticket intake → twin slicing → hosted session →
//! guarded commit into shared production.
//!
//! One [`Broker`] owns the production network (behind the enforcer's
//! [`CommitGuard`]), one enforcer pipeline (shared audit chain), and the
//! session registry. Many technicians work concurrently; each gets a
//! privilege-scoped twin sliced from a production snapshot, and their
//! change-sets race back in under optimistic base-fingerprint checks —
//! stale commits are rejected and retried against fresh state, so no
//! accepted change is ever lost or double-applied.
//!
//! Privilege derivation is memoized per task *shape* (kind + affected
//! endpoints): tickets arrive in bursts of near-identical shapes, and
//! `derive_privileges` walks shortest paths, which is the expensive part
//! of intake. The cache is invalidated whenever a commit changes
//! production, since path sets may shift.

use crate::journal::{BrokerSnapshot, JournalEvent, PersistedCounters};
use crate::pool::{RateLimiter, SubmitError, WorkerPool};
use crate::proto::{
    read_frame, write_frame, AuditEntryView, ErrorKind, FrameError, Request, Response, SessionId,
};
use crate::registry::{SessionEntry, SessionRegistry};
use crate::stats::{FleetMetrics, ServiceStats, StatsSnapshot};
use heimdall_analyze::{analyze, AnalysisReport, Severity};
use heimdall_enforcer::audit::{AuditKind, AuditLog};
use heimdall_enforcer::concurrency::CommitGuard;
use heimdall_enforcer::enclave::Platform;
use heimdall_enforcer::pipeline::{EnforcerOutcome, EnforcerPipeline};
use heimdall_enforcer::verifier::Verdict;
use heimdall_netmodel::topology::Network;
use heimdall_obs::{
    harvest_exemplar, is_canonical_series, EventBus, ObsConfig, ObsEvent, SloEngine,
    TimeSeriesStore, Topic,
};
use heimdall_privilege::derive::{derive_privileges, Task, TaskKind};
use heimdall_privilege::model::{Effect, PrivilegeMsp, ResourcePattern};
use heimdall_store::{CompactReport, Durability, Storage, Wal, WalConfig};
use heimdall_telemetry::{
    SpanContext, SpanStatus, Stage, Telemetry, TelemetryConfig, TraceId, STAGE_DURATION_METRIC,
};
use heimdall_twin::console::Command;
use heimdall_twin::monitor::ReferenceMonitor;
use heimdall_twin::session::{SessionError, TwinSession};
use heimdall_twin::slice::slice_for_task;
use heimdall_verify::policy::PolicySet;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for one broker instance.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Session-registry shards.
    pub shards: usize,
    /// Token-bucket burst per technician.
    pub rate_capacity: u32,
    /// Sustained tokens/second per technician.
    pub rate_refill_per_sec: f64,
    /// How many times a stale commit is retried against fresh state.
    pub max_commit_retries: u32,
    /// Sessions idle longer than this are evictable.
    pub idle_ttl: Duration,
    /// Span ring and flight-recorder tunables.
    pub telemetry: TelemetryConfig,
    /// Time-series capacities and SLO rules for the scrape loop.
    pub obs: ObsConfig,
    /// Journal sync policy (only meaningful for brokers opened through
    /// [`Broker::open_durable`]): `GroupCommitSync` batches fsyncs and
    /// blocks `finish` acknowledgements on the barrier, `Async` journals
    /// without waiting, `Off` recovers but journals nothing new.
    pub durability: Durability,
    /// Journal segment rotation threshold, in bytes.
    pub wal_segment_bytes: usize,
    /// Session opens whose derived spec carries a finding at or above
    /// this severity are refused (`None` disables the gate). Derived
    /// specs never reach `Error` on their own, so the default gate only
    /// trips if derivation itself regresses — tighten to
    /// `Some(Severity::Warning)` for a stricter intake policy.
    pub analysis_deny_at: Option<Severity>,
    /// Findings at or above this severity are tagged into the audit
    /// trail when a session opens anyway.
    pub analysis_warn_at: Severity,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            shards: 16,
            rate_capacity: 256,
            rate_refill_per_sec: 512.0,
            max_commit_retries: 3,
            idle_ttl: Duration::from_secs(15 * 60),
            telemetry: TelemetryConfig::default(),
            obs: ObsConfig::default(),
            durability: Durability::GroupCommitSync,
            wal_segment_bytes: 1 << 20,
            analysis_deny_at: Some(Severity::Error),
            analysis_warn_at: Severity::Warning,
        }
    }
}

/// Errors the broker maps onto protocol error replies.
#[derive(Debug)]
pub enum BrokerError {
    SessionNotFound(SessionId),
    PermissionDenied(String),
    BadCommand(String),
    RateLimited(String),
    BadRequest(String),
}

impl BrokerError {
    pub fn kind(&self) -> ErrorKind {
        match self {
            BrokerError::SessionNotFound(_) => ErrorKind::SessionNotFound,
            BrokerError::PermissionDenied(_) => ErrorKind::PermissionDenied,
            BrokerError::BadCommand(_) => ErrorKind::BadCommand,
            BrokerError::RateLimited(_) => ErrorKind::RateLimited,
            BrokerError::BadRequest(_) => ErrorKind::BadRequest,
        }
    }

    pub fn message(&self) -> String {
        match self {
            BrokerError::SessionNotFound(id) => format!("no such session: {id}"),
            BrokerError::PermissionDenied(m)
            | BrokerError::BadCommand(m)
            | BrokerError::BadRequest(m) => m.clone(),
            BrokerError::RateLimited(t) => format!("technician {t} is over their rate limit"),
        }
    }
}

/// What [`Broker::finish`] reports back.
#[derive(Debug, Clone)]
pub struct FinishReport {
    pub verdict: Verdict,
    pub applied: bool,
    /// 1 = landed first try; each stale conflict adds one.
    pub attempts: u32,
    pub changes: usize,
}

/// Hard cap on predicates in an `AnalyzeQuery` spec: the shadow pass is
/// quadratic in predicates, and a hostile client must not buy O(n²)
/// evaluation sweeps with one cheap frame.
pub const MAX_ANALYZE_PREDICATES: usize = 512;

type PrivKey = (TaskKind, Vec<String>);

/// Where this broker publishes push events, once a front-end attaches a
/// bus: the shared [`EventBus`] plus this broker's shard index (so a
/// subscriber can tell which shard an alert came from).
type EventHub = Arc<RwLock<Option<(Arc<EventBus>, usize)>>>;

/// Memoized privilege derivations, valid for exactly one production
/// epoch. Entries derived from an epoch-`N` snapshot must never be served
/// once a commit moves production to `N+1` — paths may have shifted — so
/// the whole map is tagged with the epoch it was derived at. Each entry
/// carries the static-analysis report for its spec: analysis is a pure
/// function of (network, task, spec), so it is exactly as cacheable as
/// the derivation itself.
struct PrivCache {
    epoch: u64,
    entries: HashMap<PrivKey, (PrivilegeMsp, Arc<AnalysisReport>)>,
}

/// A concurrent multi-tenant session broker over one production network.
pub struct Broker {
    guard: CommitGuard,
    pipeline: Mutex<EnforcerPipeline>,
    registry: SessionRegistry,
    policies: PolicySet,
    limiter: RateLimiter,
    priv_cache: Mutex<PrivCache>,
    stats: Arc<ServiceStats>,
    telemetry: Arc<Telemetry>,
    obs_store: Arc<TimeSeriesStore>,
    slo: Mutex<SloEngine>,
    /// The write-ahead journal, when this broker was opened durably.
    journal: Option<Arc<Wal>>,
    /// Live sessions as the *journal* sees them: updated in the same
    /// critical section as the corresponding journal append, so a
    /// checkpoint (which holds both the pipeline lock and this one)
    /// captures a session list exactly consistent with its journal cut.
    /// The registry itself cannot serve that role — it is touched
    /// outside the journaling locks on the intake path.
    mirror: Mutex<HashMap<u64, String>>,
    /// Push hub; `None` until a front-end calls
    /// [`Broker::attach_event_bus`]. The audit sink holds a clone, so the
    /// slot lives behind its own lock rather than in `config`.
    events: EventHub,
    /// Scrape passes driven against this broker (any driver).
    scrapes: AtomicU64,
    /// Flight-recorder dumps already announced on the bus (the recorder
    /// stops capturing at its cap, so an index suffices).
    dumps_announced: AtomicU64,
    config: BrokerConfig,
}

impl Broker {
    pub fn new(production: Network, policies: PolicySet, config: BrokerConfig) -> Broker {
        let platform = Platform::new("heimdall-broker-host");
        let pipeline = EnforcerPipeline::launch(&platform);
        Broker::assemble(
            production,
            0,
            pipeline,
            policies,
            config,
            Arc::new(ServiceStats::new()),
            None,
        )
    }

    /// Final assembly shared by [`Broker::new`] and
    /// [`Broker::open_durable`]: installs the enforcer sinks and wires
    /// the guard at the given epoch.
    fn assemble(
        production: Network,
        epoch: u64,
        mut pipeline: EnforcerPipeline,
        policies: PolicySet,
        config: BrokerConfig,
        stats: Arc<ServiceStats>,
        journal: Option<Arc<Wal>>,
    ) -> Broker {
        let telemetry = Arc::new(Telemetry::new(config.telemetry.clone()));
        let events: EventHub = Arc::new(RwLock::new(None));
        // The commit sink runs inside the guard's production lock, so
        // the applied counter and the journaled commit move together —
        // a checkpoint can never capture one without the other.
        {
            let stats = Arc::clone(&stats);
            let journal = journal.clone();
            pipeline.set_commit_sink(Box::new(move |technician, diff, epoch| {
                ServiceStats::bump(&stats.commits_applied);
                if let Some(wal) = &journal {
                    let ev = JournalEvent::Commit {
                        technician: technician.to_string(),
                        diff: diff.clone(),
                        epoch,
                    };
                    if wal.append(ev.kind_byte(), &ev.encode()).is_err() {
                        ServiceStats::bump(&stats.journal_errors);
                    }
                }
            }));
        }
        // The audit sink is installed unconditionally now: every append
        // both journals (when a WAL exists) and streams to audit
        // subscribers, so the pushed feed is ordered exactly like the
        // tamper-evident chain.
        {
            let stats = Arc::clone(&stats);
            let journal = journal.clone();
            let events = Arc::clone(&events);
            let telemetry = Arc::clone(&telemetry);
            pipeline.set_audit_sink(Box::new(move |entry| {
                if let Some(wal) = &journal {
                    let ev = JournalEvent::Audit {
                        entry: entry.clone(),
                    };
                    if wal.append(ev.kind_byte(), &ev.encode()).is_err() {
                        ServiceStats::bump(&stats.journal_errors);
                    }
                }
                if let Some((bus, shard)) = events.read().clone() {
                    bus.publish(&ObsEvent::AuditAppend {
                        shard,
                        seq: entry.seq,
                        kind: format!("{:?}", entry.kind),
                        actor: entry.actor.clone(),
                        trace: entry.trace.clone(),
                        at_ns: telemetry.now_ns(),
                    });
                }
            }));
        }
        Broker {
            guard: CommitGuard::new_at_epoch(production, epoch),
            pipeline: Mutex::new(pipeline),
            registry: SessionRegistry::new(config.shards),
            policies,
            limiter: RateLimiter::new(config.rate_capacity, config.rate_refill_per_sec),
            priv_cache: Mutex::new(PrivCache {
                epoch,
                entries: HashMap::new(),
            }),
            stats,
            telemetry,
            obs_store: Arc::new(TimeSeriesStore::new(config.obs.series.clone())),
            slo: Mutex::new(SloEngine::new(
                config.obs.rules.clone(),
                config.obs.max_alerts,
            )),
            journal,
            mirror: Mutex::new(HashMap::new()),
            events,
            scrapes: AtomicU64::new(0),
            dumps_announced: AtomicU64::new(0),
            config,
        }
    }

    /// Opens a broker backed by a write-ahead journal on `storage`,
    /// recovering whatever state the journal holds.
    ///
    /// `production` is the genesis network: it seeds recovery only when
    /// the journal holds no snapshot (an empty or snapshot-less log must
    /// replay onto the same network the journal started from — that is
    /// the caller's contract). When a snapshot exists, its production
    /// wins.
    ///
    /// Recovery is deterministic: newest decodable snapshot, then every
    /// verified journal record after its cut, in sequence order. Commits
    /// re-apply their diffs (journal order is epoch order, enforced by
    /// appending inside the production lock), audit entries rebuild the
    /// chain (which must pass `verify_chain`, and the snapshot's sealed
    /// head must unseal to the snapshot chain's head), counters and obs
    /// lifetime totals are restored, and sessions that were live at the
    /// crash — whose in-memory twins are unrecoverable — are evicted
    /// with an audit trail. Torn tails and corrupt suffixes were already
    /// discarded by the WAL layer; their byte counts surface in
    /// [`StatsSnapshot`].
    pub fn open_durable(
        production: Network,
        policies: PolicySet,
        config: BrokerConfig,
        storage: Box<dyn Storage>,
    ) -> Result<Broker, String> {
        let wal_cfg = WalConfig {
            durability: config.durability,
            segment_max_bytes: config.wal_segment_bytes,
            group_commit: true,
        };
        let (wal, recovered) =
            Wal::open(storage, wal_cfg).map_err(|e| format!("journal open failed: {e}"))?;

        let snapshot: Option<BrokerSnapshot> = match &recovered.snapshot {
            Some(payload) => {
                let text = std::str::from_utf8(payload)
                    .map_err(|e| format!("snapshot payload is not UTF-8: {e}"))?;
                Some(
                    serde_json::from_str(text)
                        .map_err(|e| format!("snapshot payload undecodable: {e}"))?,
                )
            }
            None => None,
        };
        let mut counters = PersistedCounters::default();
        let mut obs_totals: Vec<(String, u64, f64)> = Vec::new();
        let mut live: HashMap<u64, String> = HashMap::new();
        let mut next_session_id = 1u64;
        let (mut production, mut epoch, mut audit, sealed, verify_total, verify_failures) =
            match snapshot {
                Some(s) => {
                    counters = s.counters;
                    obs_totals = s.obs_totals;
                    live = s.live_sessions.into_iter().collect();
                    next_session_id = s.next_session_id;
                    (
                        s.production,
                        s.epoch,
                        s.audit,
                        Some(s.sealed_head),
                        s.verify_total,
                        s.verify_failures,
                    )
                }
                None => (production, 0, AuditLog::new(), None, 0, 0),
            };

        let platform = Platform::new("heimdall-broker-host");
        let mut pipeline = EnforcerPipeline::launch(&platform);

        // Cross-check the sealed head against the snapshot's chain
        // *before* replaying post-cut entries: the seal attests the
        // chain as of the cut, so a swapped-in snapshot with a
        // consistent-but-forged chain fails here even though
        // `verify_chain` alone would pass it.
        if let Some(blob) = &sealed {
            let head = pipeline
                .enclave()
                .unseal(blob)
                .map_err(|e| format!("recovered sealed audit head rejected: {e}"))?;
            if head != audit.head().as_bytes() {
                return Err("sealed head does not match snapshot audit chain".into());
            }
        }

        for rec in &recovered.records {
            let event = JournalEvent::decode(rec.kind, &rec.payload)
                .map_err(|e| format!("journal record {}: {e}", rec.seq))?;
            match event {
                JournalEvent::Audit { entry } => audit.entries.push(entry),
                JournalEvent::Commit { diff, epoch: e, .. } => {
                    if e != epoch + 1 {
                        return Err(format!(
                            "journal commit epoch gap: production at {epoch}, record {} carries {e}",
                            rec.seq
                        ));
                    }
                    diff.apply_to_network(&mut production)
                        .map_err(|err| format!("replaying commit to epoch {e} failed: {err}"))?;
                    epoch = e;
                    counters.commits_applied += 1;
                }
                JournalEvent::SessionOpen {
                    session,
                    technician,
                    ..
                } => {
                    next_session_id = next_session_id.max(session + 1);
                    live.insert(session, technician);
                    counters.sessions_opened += 1;
                }
                JournalEvent::SessionFinish { session, .. } => {
                    if live.remove(&session).is_some() {
                        counters.sessions_finished += 1;
                    }
                }
                JournalEvent::SessionEvict { session } => {
                    if live.remove(&session).is_some() {
                        counters.sessions_evicted += 1;
                    }
                }
                JournalEvent::PrivilegeDerive { .. } => {}
            }
        }

        // The reconstructed chain must verify end to end; restore
        // re-seals the head under this broker's enclave identity.
        pipeline
            .restore_audit(audit, None)
            .map_err(|e| format!("audit restore failed: {e}"))?;
        pipeline.restore_verify_counters(verify_total, verify_failures);

        let stats = Arc::new(ServiceStats::new());
        counters.store_into(&stats);
        let report = &recovered.report;
        stats
            .records_replayed
            .store(report.records_replayed, Ordering::Relaxed);
        stats
            .torn_bytes_discarded
            .store(report.torn_bytes_discarded, Ordering::Relaxed);
        stats
            .recovered_sessions_evicted
            .store(live.len() as u64, Ordering::Relaxed);

        let journal = (!matches!(config.durability, Durability::Off)).then(|| Arc::new(wal));
        let broker = Broker::assemble(
            production, epoch, pipeline, policies, config, stats, journal,
        );
        broker.registry.ensure_next_id(next_session_id);
        for (name, count, sum) in &obs_totals {
            broker.obs_store.restore_totals(name, *count, *sum);
        }

        // Sessions live at the crash: their twins died with the old
        // process, so they are evicted — audited (and re-journaled, so a
        // second crash does not resurrect them as live a second time).
        if !live.is_empty() {
            let mut orphans: Vec<(u64, String)> = live.into_iter().collect();
            orphans.sort();
            let mut pipeline = broker.pipeline.lock();
            let _mirror = broker.mirror.lock();
            for (id, technician) in orphans {
                ServiceStats::bump(&broker.stats.sessions_evicted);
                broker.journal_event(&JournalEvent::SessionEvict { session: id });
                pipeline.log_traced(
                    AuditKind::Session,
                    &technician,
                    &format!("session {id} evicted during crash recovery"),
                    "",
                );
            }
        }
        Ok(broker)
    }

    /// Appends one event to the journal, if one is attached. Append
    /// failures are counted, never propagated: the WAL's sticky error
    /// already fails every later durability claim, and the broker keeps
    /// serving from memory.
    fn journal_event(&self, event: &JournalEvent) {
        if let Some(wal) = &self.journal {
            if wal.append(event.kind_byte(), &event.encode()).is_err() {
                ServiceStats::bump(&self.stats.journal_errors);
            }
        }
    }

    /// Writes a [`BrokerSnapshot`] of all durable state at the current
    /// journal cut, then drops segments the snapshot covers. Holding the
    /// pipeline lock and the mirror lock together freezes every journal
    /// append (commits and audit entries ride the pipeline lock, session
    /// events the mirror lock), so the captured state and the cut agree
    /// exactly.
    pub fn checkpoint(&self) -> Result<CompactReport, String> {
        let journal = self
            .journal
            .as_ref()
            .ok_or("broker has no journal (not opened durably, or durability off)")?;
        let pipeline = self.pipeline.lock();
        let mirror = self.mirror.lock();
        let (production, epoch) = self.guard.snapshot_with_epoch();
        let snapshot = BrokerSnapshot {
            production,
            epoch,
            verify_total: pipeline.verify_total(),
            verify_failures: pipeline.verify_failures(),
            audit: pipeline.audit().clone(),
            sealed_head: pipeline.sealed_head().clone(),
            counters: PersistedCounters::capture(&self.stats),
            obs_totals: self.obs_store.totals_all(),
            live_sessions: mirror.iter().map(|(id, t)| (*id, t.clone())).collect(),
            next_session_id: self.registry.next_id_hint(),
        };
        let payload =
            serde_json::to_string(&snapshot).map_err(|e| format!("snapshot serialization: {e}"))?;
        journal
            .write_snapshot(payload.as_bytes())
            .map_err(|e| format!("snapshot write failed: {e}"))?;
        drop(mirror);
        drop(pipeline);
        let report = journal
            .compact()
            .map_err(|e| format!("compaction failed: {e}"))?;
        self.stats
            .segments_compacted
            .fetch_add(report.segments_removed, Ordering::Relaxed);
        Ok(report)
    }

    /// How many journal records are on stable storage (`None` when the
    /// broker has no journal).
    pub fn journal_durable(&self) -> Option<u64> {
        self.journal.as_ref().map(|w| w.durable())
    }

    /// Derives the privilege spec (and its static-analysis report) for a
    /// task shape against current production, without opening a session.
    ///
    /// This is the cross-shard exchange primitive: a fleet router asks
    /// each home shard for its tenant's derived spec, then composes the
    /// pair with `analyze_pair` — no shard ever takes another shard's
    /// locks. Hits the same epoch-guarded memo as session intake.
    pub fn derive_for(&self, task: &Task) -> (PrivilegeMsp, Arc<AnalysisReport>) {
        let (production, epoch) = self.guard.snapshot_with_epoch();
        self.privileges_for(&production, epoch, task)
    }

    /// Flushes the journal to stable storage via a sync barrier. Returns
    /// `true` when durable (or when the broker has no journal, where the
    /// barrier is vacuous); on failure bumps `journal_errors` and returns
    /// `false`, matching the broker's count-don't-propagate WAL policy.
    pub fn sync_journal(&self) -> bool {
        let Some(wal) = &self.journal else {
            return true;
        };
        if wal.sync_barrier().is_err() {
            ServiceStats::bump(&self.stats.journal_errors);
            return false;
        }
        true
    }

    /// Privileges for a task shape — plus the static-analysis report on
    /// them — derived once per shape per production epoch.
    ///
    /// `epoch` must be the epoch `production` was snapshotted at (from
    /// [`CommitGuard::snapshot_with_epoch`]). Lookups hit only entries
    /// derived at that same epoch, and a derivation is inserted only if
    /// production has not moved since the snapshot — checked under the
    /// cache lock, so a concurrent `finish()` either already bumped the
    /// guard epoch (we skip the insert) or is still waiting on this lock
    /// to clear the cache (our entry is wiped with the rest). A stale
    /// derivation can therefore never outlive the commit that staled it.
    fn privileges_for(
        &self,
        production: &Network,
        epoch: u64,
        task: &Task,
    ) -> (PrivilegeMsp, Arc<AnalysisReport>) {
        let mut key_devices = task.affected.clone();
        key_devices.sort();
        let key = (task.kind, key_devices);
        {
            let cache = self.priv_cache.lock();
            if cache.epoch == epoch {
                if let Some((spec, report)) = cache.entries.get(&key) {
                    return (spec.clone(), Arc::clone(report));
                }
            }
        }
        let derived = derive_privileges(production, task);
        let report = Arc::new(analyze(production, task, &derived));
        self.stats
            .analysis_findings
            .fetch_add(report.findings.len() as u64, Ordering::Relaxed);
        // Informational journal record (no replayable state, so no lock
        // discipline needed): reconstructs what was derivable at which
        // epoch from the log alone.
        self.journal_event(&JournalEvent::PrivilegeDerive {
            kind: task.kind,
            affected: task.affected.clone(),
            epoch,
        });
        let mut cache = self.priv_cache.lock();
        if self.guard.epoch() == epoch {
            if cache.epoch != epoch {
                cache.entries.clear();
                cache.epoch = epoch;
            }
            cache
                .entries
                .insert(key, (derived.clone(), Arc::clone(&report)));
        }
        (derived, report)
    }

    /// Ticket intake: slice a twin, derive privileges, host the session.
    pub fn open_session(
        &self,
        technician: &str,
        ticket: Task,
    ) -> Result<(SessionId, Vec<String>), BrokerError> {
        if !self.limiter.try_acquire(technician) {
            ServiceStats::bump(&self.stats.rate_limited);
            return Err(BrokerError::RateLimited(technician.to_string()));
        }
        // Root a fresh trace: the open_session span anchors the tree, and
        // everything the session later does — console lines, execs, the
        // commit — parents under it.
        let trace = self.telemetry.new_trace();
        let root = SpanContext::root(Arc::clone(&self.telemetry), trace, technician);
        let mut open_span = root.span(Stage::OpenSession);
        let session_ctx = match &open_span {
            Some(s) => root.under(s),
            None => SpanContext::disabled(),
        };
        let (production, epoch) = self.guard.snapshot_with_epoch();
        let (privilege, analysis) = {
            let _derive = session_ctx.span(Stage::DerivePrivilege);
            self.privileges_for(&production, epoch, &ticket)
        };
        // Static-analysis gate: a derived spec that trips the configured
        // deny threshold never becomes a hosted session. The refusal is
        // audited with the worst finding so the admin can see *why*.
        if let Some(gate) = self.config.analysis_deny_at {
            if analysis.max_severity() >= Some(gate) {
                ServiceStats::bump(&self.stats.analysis_denials);
                let detail = format!(
                    "session refused by static analysis ({}): {}",
                    analysis.summary(),
                    analysis
                        .findings
                        .first()
                        .map(|f| f.to_string())
                        .unwrap_or_default()
                );
                if let Some(s) = open_span.as_mut() {
                    s.set_status(SpanStatus::Rejected);
                    s.set_detail("analysis gate");
                }
                self.pipeline.lock().log_traced(
                    AuditKind::Verification,
                    technician,
                    &detail,
                    &root.trace_tag(),
                );
                self.publish_findings(technician, &analysis, gate);
                return Err(BrokerError::PermissionDenied(detail));
            }
        }
        // Findings below the gate but at/above the warn threshold ride
        // into the audit trail alongside the session-open record.
        let warn_count = analysis.count_at_least(self.config.analysis_warn_at);
        let warn_detail = (warn_count > 0).then(|| {
            format!(
                "static analysis flagged the derived spec ({}): {}",
                analysis.summary(),
                analysis
                    .findings
                    .iter()
                    .filter(|f| f.severity >= self.config.analysis_warn_at)
                    .map(|f| format!("{}({})", f.code, f.device))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        });
        let twin = slice_for_task(&production, &ticket);
        let devices = twin.included.clone();
        let mut session = TwinSession::open(technician, twin, privilege.clone());
        session.set_tracing(session_ctx.clone());
        let baseline = production;
        let now = Instant::now();
        let (ticket_kind, ticket_affected) = (ticket.kind, ticket.affected.clone());
        let id = self.registry.insert(SessionEntry {
            technician: technician.to_string(),
            task: ticket,
            session,
            baseline,
            privilege,
            ctx: session_ctx,
            opened_at: now,
            last_used: now,
        });
        if let Some(s) = open_span.as_mut() {
            s.set_detail(format!("session {id} on {} devices", devices.len()));
        }
        let mut pipeline = self.pipeline.lock();
        {
            // Counter, journal record, and mirror move together under
            // the locks a checkpoint holds — its snapshot can never
            // capture one without the others.
            let mut mirror = self.mirror.lock();
            ServiceStats::bump(&self.stats.sessions_opened);
            self.journal_event(&JournalEvent::SessionOpen {
                session: id.0,
                technician: technician.to_string(),
                kind: ticket_kind,
                affected: ticket_affected,
            });
            mirror.insert(id.0, technician.to_string());
        }
        pipeline.log_traced(
            AuditKind::Session,
            technician,
            &format!("session {id} opened on twin of {devices:?}"),
            &root.trace_tag(),
        );
        if let Some(detail) = warn_detail {
            pipeline.log_traced(
                AuditKind::Verification,
                technician,
                &detail,
                &root.trace_tag(),
            );
        }
        drop(pipeline);
        if warn_count > 0 {
            self.publish_findings(technician, &analysis, self.config.analysis_warn_at);
        }
        Ok((id, devices))
    }

    /// Streams every analyzer finding at or above `min` to the tenant's
    /// analyzer subscribers (tenant-scoped: only `technician` sees them).
    fn publish_findings(&self, technician: &str, analysis: &AnalysisReport, min: Severity) {
        let Some((bus, shard)) = self.events.read().clone() else {
            return;
        };
        let now = self.telemetry.now_ns();
        for finding in analysis.findings.iter().filter(|f| f.severity >= min) {
            bus.publish(&ObsEvent::AnalyzerFinding {
                shard,
                technician: technician.to_string(),
                code: finding.code.clone(),
                severity: format!("{:?}", finding.severity),
                device: finding.device.clone(),
                at_ns: now,
            });
        }
    }

    /// One mediated console line inside a hosted session.
    pub fn exec(&self, id: SessionId, device: &str, line: &str) -> Result<String, BrokerError> {
        let started = Instant::now();
        let result = self
            .registry
            .with_session_mut(id, |entry| {
                let mut span = entry.ctx.span(Stage::Exec);
                if let Some(s) = span.as_mut() {
                    s.set_device(device);
                }
                if !self.limiter.try_acquire(&entry.technician) {
                    ServiceStats::bump(&self.stats.rate_limited);
                    if let Some(s) = span.as_mut() {
                        s.set_status(SpanStatus::Rejected);
                        s.set_detail("rate limited");
                    }
                    return Err(BrokerError::RateLimited(entry.technician.clone()));
                }
                entry.session.exec(device, line).map_err(|e| match e {
                    SessionError::PermissionDenied { .. } => {
                        ServiceStats::bump(&self.stats.denials);
                        if let Some(s) = span.as_mut() {
                            s.set_status(SpanStatus::Denied);
                        }
                        BrokerError::PermissionDenied(e.to_string())
                    }
                    SessionError::Command(_) => {
                        if let Some(s) = span.as_mut() {
                            s.set_status(SpanStatus::Error);
                        }
                        BrokerError::BadCommand(e.to_string())
                    }
                })
            })
            .ok_or(BrokerError::SessionNotFound(id))?;
        self.stats.exec_latency.record(started.elapsed());
        if result.is_ok() {
            ServiceStats::bump(&self.stats.commands_mediated);
        } else if matches!(result, Err(BrokerError::PermissionDenied(_))) {
            // A denial burst is a probing signature — let the flight
            // recorder decide whether this one tips the window.
            self.telemetry.note_denial();
        }
        // The exec span (dropped inside the closure) has already landed in
        // the stage histogram; check the latency ceiling against it.
        self.telemetry.check_exec_p99();
        result
    }

    /// The privilege-scoped topology for a session, as protocol tuples.
    #[allow(clippy::type_complexity)]
    pub fn topology(
        &self,
        id: SessionId,
    ) -> Result<(Vec<(String, String)>, Vec<(String, String, String, String)>), BrokerError> {
        self.registry
            .with_session_mut(id, |entry| {
                let view = entry.session.view();
                (view.devices, view.links)
            })
            .ok_or(BrokerError::SessionNotFound(id))
    }

    /// Closes the session and pushes its change-set through the guarded
    /// enforcer, retrying stale rejections against refreshed state.
    pub fn finish(&self, id: SessionId) -> Result<FinishReport, BrokerError> {
        let started = Instant::now();
        let entry = self
            .registry
            .remove(id)
            .ok_or(BrokerError::SessionNotFound(id))?;
        let SessionEntry {
            technician,
            session,
            baseline,
            privilege,
            ctx,
            ..
        } = entry;
        let mut finish_span = ctx.span(Stage::Finish);
        let finish_ctx = match &finish_span {
            Some(s) => ctx.under(s),
            None => SpanContext::disabled(),
        };
        let (diff, _monitor) = session.finish();
        let changes = diff.len();
        // The base the twin was opened against: the baseline slice holds
        // exactly the production configs of the touched devices as of
        // open time.
        let mut base = heimdall_enforcer::concurrency::base_fingerprint(&baseline, &diff);

        let mut attempts = 0u32;
        let outcome: EnforcerOutcome = loop {
            attempts += 1;
            let outcome = self.pipeline.lock().process_guarded_traced(
                &technician,
                &self.guard,
                &diff,
                &base,
                &self.policies,
                &privilege,
                &finish_ctx,
            );
            if outcome.report.verdict == Verdict::RejectedStale {
                ServiceStats::bump(&self.stats.commit_conflicts);
                self.telemetry.note_commit_conflict();
                if attempts <= self.config.max_commit_retries {
                    // A stale base means *something* changed on the
                    // touched devices — but re-basing is only safe when
                    // the intervening commits left the exact objects this
                    // diff writes untouched (say, another ACL on the same
                    // firewall). If they collide, re-applying would
                    // silently overwrite the other technician's change, so
                    // the stale verdict stands and the technician must
                    // re-open a twin from current state. The compose check
                    // and the fresh base come from one lock acquisition so
                    // the base cannot move between them; anything landing
                    // after is caught by the guard's own re-check.
                    let rebased = self.guard.with_production(|prod| {
                        heimdall_enforcer::concurrency::diff_composes(&baseline, prod, &diff)
                            .then(|| heimdall_enforcer::concurrency::base_fingerprint(prod, &diff))
                    });
                    if let Some(fresh) = rebased {
                        base = fresh;
                        continue;
                    }
                }
            }
            break outcome;
        };

        let applied = outcome.applied();
        if applied {
            // (commits_applied is bumped by the commit sink, inside the
            // production lock, atomically with the journaled commit.)
            // Production moved: cached privilege derivations may be
            // stale. The guard epoch was already bumped (inside the
            // commit), so clearing here also invalidates any entry a
            // racing `privileges_for` slipped in after the bump.
            let mut cache = self.priv_cache.lock();
            cache.entries.clear();
            cache.epoch = self.guard.epoch();
        } else {
            ServiceStats::bump(&self.stats.commits_rejected);
        }
        {
            let mut mirror = self.mirror.lock();
            ServiceStats::bump(&self.stats.sessions_finished);
            self.journal_event(&JournalEvent::SessionFinish {
                session: id.0,
                applied,
            });
            mirror.remove(&id.0);
        }
        if applied && matches!(self.config.durability, Durability::GroupCommitSync) {
            // Acknowledgement point: a success reply must imply the
            // commit is on stable storage. The commit record was
            // appended inside the production lock (so it is ordered
            // before this barrier), and the barrier returns only once
            // every prior append is synced — batched with whatever
            // other technicians are landing concurrently.
            if let Some(wal) = &self.journal {
                if wal.sync_barrier().is_err() {
                    ServiceStats::bump(&self.stats.journal_errors);
                }
            }
        }
        self.stats.finish_latency.record(started.elapsed());
        if let Some(s) = finish_span.as_mut() {
            s.set_detail(format!(
                "verdict={:?} attempts={attempts} changes={changes}",
                outcome.report.verdict
            ));
            if !applied {
                s.set_status(SpanStatus::Rejected);
            }
        }
        Ok(FinishReport {
            verdict: outcome.report.verdict,
            applied,
            attempts,
            changes,
        })
    }

    /// Drops sessions idle past the configured TTL, leaving an audit
    /// trail for each.
    pub fn evict_idle(&self) -> usize {
        let victims = self.registry.evict_idle(self.config.idle_ttl);
        let count = victims.len();
        if count > 0 {
            let mut pipeline = self.pipeline.lock();
            let mut mirror = self.mirror.lock();
            for (id, entry) in victims {
                ServiceStats::bump(&self.stats.sessions_evicted);
                self.journal_event(&JournalEvent::SessionEvict { session: id.0 });
                mirror.remove(&id.0);
                pipeline.log_traced(
                    AuditKind::Session,
                    &entry.technician,
                    &format!("session {id} evicted after idle TTL"),
                    &entry.ctx.trace_tag(),
                );
            }
        }
        count
    }

    /// Runs the static analyzer for an `AnalyzeQuery`: either over a live
    /// session's spec and baseline, or over a DSL `spec` + `ticket` pair
    /// against current production. See [`Request::AnalyzeQuery`] for the
    /// exactly-one-form contract; violations are [`BrokerError::BadRequest`].
    pub fn analyze_query(
        &self,
        session: Option<SessionId>,
        spec: Option<String>,
        ticket: Option<Task>,
    ) -> Result<AnalysisReport, BrokerError> {
        let report = match (session, spec) {
            (Some(_), Some(_)) => {
                return Err(BrokerError::BadRequest(
                    "analyze takes a session or a spec, not both".into(),
                ))
            }
            (None, None) => {
                return Err(BrokerError::BadRequest(
                    "analyze needs a session, or a spec with a ticket".into(),
                ))
            }
            (Some(id), None) => {
                if ticket.is_some() {
                    return Err(BrokerError::BadRequest(
                        "a session analysis takes its ticket from the session".into(),
                    ));
                }
                self.registry
                    .with_session_mut(id, |entry| {
                        analyze(&entry.baseline, &entry.task, &entry.privilege)
                    })
                    .ok_or(BrokerError::SessionNotFound(id))?
            }
            (None, Some(text)) => {
                let ticket = ticket.ok_or_else(|| {
                    BrokerError::BadRequest("a spec analysis needs a ticket for context".into())
                })?;
                let parsed = heimdall_privilege::dsl::parse(&text)
                    .map_err(|e| BrokerError::BadRequest(format!("spec does not parse: {e}")))?;
                if parsed.predicates.len() > MAX_ANALYZE_PREDICATES {
                    return Err(BrokerError::BadRequest(format!(
                        "spec carries {} predicates, cap is {MAX_ANALYZE_PREDICATES}",
                        parsed.predicates.len()
                    )));
                }
                let production = self.guard.snapshot();
                analyze(&production, &ticket, &parsed)
            }
        };
        self.stats
            .analysis_findings
            .fetch_add(report.findings.len() as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Audit entries, optionally filtered.
    pub fn audit_query(&self, kind: Option<AuditKind>, actor: Option<&str>) -> Vec<AuditEntryView> {
        let pipeline = self.pipeline.lock();
        pipeline
            .audit()
            .entries
            .iter()
            .filter(|e| kind.is_none_or(|k| e.kind == k))
            .filter(|e| actor.is_none_or(|a| e.actor == a))
            .map(|e| AuditEntryView {
                seq: e.seq,
                kind: e.kind,
                actor: e.actor.clone(),
                detail: e.detail.clone(),
                trace: e.trace.clone(),
            })
            .collect()
    }

    /// Chain + seal verification of the shared audit log.
    pub fn verify_audit(&self) -> bool {
        self.pipeline.lock().verify_audit_integrity()
    }

    /// A copy of the full audit log, e.g. for JSON archival through
    /// [`heimdall_enforcer::audit::AuditLog::to_json`].
    pub fn export_audit(&self) -> AuditLog {
        self.pipeline.lock().audit().clone()
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Attaches the push bus this broker publishes to, tagged with this
    /// broker's shard index. The net front-end calls this once per shard
    /// at startup; publishing is a no-op until then.
    pub fn attach_event_bus(&self, bus: Arc<EventBus>, shard: usize) {
        *self.events.write() = Some((bus, shard));
    }

    /// The attached push bus, if any.
    pub fn event_bus(&self) -> Option<Arc<EventBus>> {
        self.events.read().as_ref().map(|(bus, _)| Arc::clone(bus))
    }

    /// Authorizes a `Subscribe` request for `tenant` over `topics`.
    ///
    /// Tenant-scoped topics (audit, analyzer) only ever show a tenant its
    /// own records, so they are granted on identity alone. Fleet-scoped
    /// topics (SLO, recorder, net, metrics) reveal shared-infrastructure
    /// state, so they are mediated through a [`ReferenceMonitor`] built
    /// over the union of the tenant's live-session privilege specs — the
    /// same monitor that gates counter polls: a tenant with no live
    /// session, or none with a view grant, gets a *recorded* denial that
    /// leaks no events, matching the denied-poll semantics.
    pub fn authorize_subscription(
        &self,
        tenant: &str,
        topics: &[Topic],
    ) -> Result<(), BrokerError> {
        let named = topics
            .iter()
            .map(|t| t.as_str())
            .collect::<Vec<_>>()
            .join(",");
        let fleet: Vec<Topic> = topics
            .iter()
            .copied()
            .filter(|t| t.fleet_scoped())
            .collect();
        if !fleet.is_empty() {
            // Union of the tenant's live-session specs: subscribing to
            // fleet telemetry requires at least one standing view grant.
            let mut predicates = Vec::new();
            self.registry.for_each_session(|_, entry| {
                if entry.technician == tenant {
                    predicates.extend(entry.privilege.predicates.iter().cloned());
                }
            });
            // Mediate as a counter read against a device the union spec
            // names in a view-allow grant; with no such grant the probe
            // runs against the fleet pseudo-device, which nothing allows,
            // so the monitor records a denial.
            let device = predicates
                .iter()
                .find_map(|p| match (&p.effect, &p.resource) {
                    (Effect::Allow, ResourcePattern::Device(d)) => Some(d.clone()),
                    (Effect::Allow, ResourcePattern::Any) => Some("fleet".to_string()),
                    (Effect::Allow, ResourcePattern::Interface { device, .. })
                    | (Effect::Allow, ResourcePattern::Acl { device, .. }) => Some(device.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| "fleet".to_string());
            let raw = format!("subscribe {named}");
            let mut monitor = ReferenceMonitor::new(tenant, PrivilegeMsp { predicates });
            let decision = monitor.mediate(&device, &raw, &Command::ShowCounters);
            if !decision.is_allowed() {
                ServiceStats::bump(&self.stats.denials);
                self.telemetry.note_denial();
                let detail = format!(
                    "subscription to fleet topics [{named}] denied: no view privilege for {tenant}"
                );
                self.pipeline
                    .lock()
                    .log_traced(AuditKind::Verification, tenant, &detail, "");
                return Err(BrokerError::PermissionDenied(detail));
            }
        }
        self.pipeline.lock().log_traced(
            AuditKind::Session,
            tenant,
            &format!("subscription granted: topics [{named}]"),
            "",
        );
        Ok(())
    }

    /// Lifetime scrape passes driven against this broker.
    pub fn scrapes_total(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// This broker's own contribution to the fleet metrics surface. The
    /// net front-end merges one of these per shard and fills in the net
    /// counters; an in-process broker answers `MetricsQuery` with this
    /// single-shard view directly.
    pub fn fleet_metrics(&self) -> FleetMetrics {
        let bus = self.event_bus().map(|b| b.stats()).unwrap_or_default();
        FleetMetrics {
            shards: 1,
            service: self.stats.snapshot(),
            net: Vec::new(),
            scrapes_total: self.scrapes_total(),
            alerts_total: self.slo.lock().total_fired(),
            events_published: bus.published,
            events_delivered: bus.delivered,
            events_dropped: bus.dropped,
            subscribers: bus.subscribers,
        }
    }

    /// The telemetry hub (span ring, metrics registry, flight recorder).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Prometheus text exposition: every per-stage/per-device series from
    /// the registry, plus the broker's own service counters.
    pub fn telemetry_text(&self) -> String {
        let mut text = self.telemetry.render_prometheus();
        let s = self.stats.snapshot();
        for (name, value) in [
            ("heimdall_sessions_opened_total", s.sessions_opened),
            ("heimdall_sessions_finished_total", s.sessions_finished),
            ("heimdall_sessions_evicted_total", s.sessions_evicted),
            ("heimdall_commands_mediated_total", s.commands_mediated),
            ("heimdall_denials_total", s.denials),
            ("heimdall_commits_applied_total", s.commits_applied),
            ("heimdall_commits_rejected_total", s.commits_rejected),
            ("heimdall_commit_conflicts_total", s.commit_conflicts),
            ("heimdall_rate_limited_total", s.rate_limited),
        ] {
            heimdall_telemetry::render_counter(&mut text, name, value);
        }
        text
    }

    /// The retained spans of one trace (oldest first). `None` when the
    /// id is not canonical 16-hex.
    pub fn trace_query(&self, trace: &str) -> Option<Vec<heimdall_telemetry::Span>> {
        let id = TraceId::parse(trace)?;
        Some(self.telemetry.trace_spans(id))
    }

    /// One pass of the monitoring scrape loop: stage latency quantiles,
    /// service counters, enforcer verification outcomes, and mediated
    /// per-device twin counters all land in the time-series store, then
    /// the SLO engine evaluates its rules over the refreshed windows.
    /// Returns how many alerts fired this pass.
    pub fn scrape_once(&self) -> usize {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        let now = self.telemetry.now_ns();
        let store = &self.obs_store;
        // Stage latency quantiles from the telemetry histograms.
        for stage in Stage::ALL {
            let h = self
                .telemetry
                .registry()
                .histogram(STAGE_DURATION_METRIC, &[("stage", stage.as_str())]);
            if h.count() == 0 {
                continue;
            }
            let name = stage.as_str();
            store.push(
                &format!("stage.{name}.p50_ns"),
                now,
                h.quantile_ns(0.5) as f64,
            );
            store.push(
                &format!("stage.{name}.p99_ns"),
                now,
                h.quantile_ns(0.99) as f64,
            );
            store.push(&format!("stage.{name}.count"), now, h.count() as f64);
        }
        // Cumulative service counters; SLO rate rules watch the deltas.
        let s = self.stats.snapshot();
        for (name, value) in [
            ("service.sessions_opened_total", s.sessions_opened),
            ("service.sessions_finished_total", s.sessions_finished),
            ("service.sessions_evicted_total", s.sessions_evicted),
            ("service.commands_mediated_total", s.commands_mediated),
            ("service.denials_total", s.denials),
            ("service.commits_applied_total", s.commits_applied),
            ("service.commits_rejected_total", s.commits_rejected),
            ("service.commit_conflicts_total", s.commit_conflicts),
            ("service.rate_limited_total", s.rate_limited),
        ] {
            store.push(name, now, value as f64);
        }
        {
            let pipeline = self.pipeline.lock();
            store.push("enforcer.verify_total", now, pipeline.verify_total() as f64);
            store.push(
                "enforcer.verify_failures_total",
                now,
                pipeline.verify_failures() as f64,
            );
        }
        // Mediated device monitoring: every live session's twin devices
        // are polled *through* the session's reference monitor with view
        // privileges — an unviewable device yields a recorded denial,
        // never data. `for_each_session` deliberately skips the idle
        // clock so scrapes cannot keep abandoned sessions alive.
        let mut denied = 0u64;
        self.registry.for_each_session(|_, entry| {
            let devices: Vec<String> = entry
                .session
                .view()
                .devices
                .into_iter()
                .map(|(name, _)| name)
                .collect();
            for device in devices {
                match entry.session.poll_counters(&device) {
                    Ok(c) => {
                        store.push(&format!("device.{device}.if_up"), now, c.if_up as f64);
                        store.push(
                            &format!("device.{device}.fib_routes"),
                            now,
                            c.fib_routes as f64,
                        );
                        store.push(
                            &format!("device.{device}.acl_entries"),
                            now,
                            c.acl_entries as f64,
                        );
                        store.push(&format!("device.{device}.acl_hits"), now, c.acl_hits as f64);
                    }
                    Err(SessionError::PermissionDenied { .. }) => denied += 1,
                    Err(_) => {}
                }
            }
        });
        for _ in 0..denied {
            ServiceStats::bump(&self.stats.denials);
            self.telemetry.note_denial();
        }
        let outcome = self
            .slo
            .lock()
            .evaluate_detailed(store, now, |rule| harvest_exemplar(&self.telemetry, rule));
        // Push both latch edges plus any flight-recorder dumps that
        // appeared since the last pass. The hub read is a cheap clone;
        // publishing happens outside the SLO lock.
        if let Some((bus, shard)) = self.events.read().clone() {
            for alert in &outcome.fired {
                bus.publish(&ObsEvent::SloTrip {
                    shard,
                    alert: alert.clone(),
                });
            }
            for rule in &outcome.rearmed {
                bus.publish(&ObsEvent::SloRearm {
                    shard,
                    rule: rule.clone(),
                    at_ns: now,
                });
            }
            let dumps = self.telemetry.recorder().dumps();
            let seen = self
                .dumps_announced
                .swap(dumps.len() as u64, Ordering::Relaxed) as usize;
            for dump in dumps.iter().skip(seen) {
                bus.publish(&ObsEvent::RecorderDump {
                    shard,
                    kind: dump.kind.as_str().to_string(),
                    spans: dump.span_count,
                    at_ns: dump.at_ns,
                });
            }
        }
        outcome.fired.len()
    }

    /// One explicit mediated counter poll against a hosted session's twin
    /// device. A poll of a device outside the technician's view privilege
    /// is a recorded denial that leaks nothing — monitoring reads are
    /// mediated exactly like console commands.
    pub fn poll_device_counters(
        &self,
        id: SessionId,
        device: &str,
    ) -> Result<heimdall_twin::DeviceCounters, BrokerError> {
        let result = self
            .registry
            .with_session_mut(id, |entry| entry.session.poll_counters(device))
            .ok_or(BrokerError::SessionNotFound(id))?;
        result.map_err(|e| match e {
            SessionError::PermissionDenied { .. } => {
                ServiceStats::bump(&self.stats.denials);
                self.telemetry.note_denial();
                BrokerError::PermissionDenied(e.to_string())
            }
            SessionError::Command(_) => BrokerError::BadCommand(e.to_string()),
        })
    }

    /// The historical time-series store fed by [`Broker::scrape_once`].
    pub fn obs_store(&self) -> &Arc<TimeSeriesStore> {
        &self.obs_store
    }

    /// Alerts fired so far, oldest first (bounded per [`ObsConfig`]).
    pub fn alerts(&self) -> Vec<heimdall_obs::Alert> {
        self.slo.lock().alerts().to_vec()
    }

    /// Critical-path attribution for one trace's retained spans. `None`
    /// when `trace` is not canonical 16-hex; a canonical but unknown
    /// trace yields an empty report.
    pub fn critical_path(&self, trace: &str) -> Option<heimdall_obs::CriticalPathReport> {
        let id = TraceId::parse(trace)?;
        let spans = self.telemetry.trace_spans(id);
        Some(heimdall_obs::analyze(trace, &spans))
    }

    /// Point-in-time copy of production.
    pub fn production(&self) -> Network {
        self.guard.snapshot()
    }

    /// The policies every commit is verified against.
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    pub fn live_sessions(&self) -> usize {
        self.registry.len()
    }

    /// Maps one protocol request to one reply.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::OpenSession { technician, ticket } => {
                match self.open_session(&technician, ticket) {
                    Ok((session, devices)) => Response::SessionOpened { session, devices },
                    Err(e) => error_response(e),
                }
            }
            Request::Exec {
                session,
                device,
                line,
            } => match self.exec(session, &device, &line) {
                Ok(output) => Response::ExecOutput { output },
                Err(e) => error_response(e),
            },
            Request::TopologyView { session } => match self.topology(session) {
                Ok((devices, links)) => Response::Topology { devices, links },
                Err(e) => error_response(e),
            },
            Request::Finish { session } => match self.finish(session) {
                Ok(report) => Response::Finished {
                    verdict: report.verdict,
                    applied: report.applied,
                    attempts: report.attempts,
                    changes: report.changes,
                },
                Err(e) => error_response(e),
            },
            Request::AuditQuery { kind, actor } => Response::Audit {
                entries: self.audit_query(kind, actor.as_deref()),
            },
            Request::Stats => Response::Stats {
                snapshot: self.stats(),
            },
            Request::Telemetry => Response::Telemetry {
                text: self.telemetry_text(),
            },
            Request::TraceQuery { trace } => match self.trace_query(&trace) {
                Some(spans) => Response::Trace { trace, spans },
                None => Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("trace id {trace:?} is not canonical 16-hex"),
                },
            },
            Request::TimeQuery {
                series,
                start_ns,
                end_ns,
                resolution,
            } => {
                if !is_canonical_series(&series) {
                    Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: format!("series name {series:?} is not canonical"),
                    }
                } else if start_ns > end_ns {
                    Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: format!("inverted time range: {start_ns} > {end_ns}"),
                    }
                } else {
                    // Unknown-but-canonical series is an empty result,
                    // not an error: dashboards probe series that may not
                    // have scraped yet.
                    let points = self
                        .obs_store
                        .query(&series, start_ns, end_ns, resolution)
                        .unwrap_or_default();
                    Response::TimeSeries {
                        series,
                        resolution,
                        points,
                    }
                }
            }
            Request::AlertQuery => Response::Alerts {
                alerts: self.alerts(),
            },
            Request::CriticalPath { trace } => match self.critical_path(&trace) {
                Some(report) => Response::CriticalPath { report },
                None => Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("trace id {trace:?} is not canonical 16-hex"),
                },
            },
            Request::AnalyzeQuery {
                session,
                spec,
                ticket,
            } => match self.analyze_query(session, spec, ticket) {
                Ok(report) => Response::Analysis { report },
                Err(e) => error_response(e),
            },
            Request::MetricsQuery => Response::Metrics {
                metrics: self.fleet_metrics(),
            },
        }
    }

    /// Serves one framed connection until the peer hangs up.
    pub fn serve_connection<S: Read + Write>(&self, mut stream: S) {
        loop {
            match read_frame::<_, Request>(&mut stream) {
                Ok(request) => {
                    let response = self.handle(request);
                    if write_frame(&mut stream, &response).is_err() {
                        return;
                    }
                }
                Err(FrameError::Codec(m)) => {
                    // The frame was well-formed but the JSON wasn't a
                    // request — answer and keep the connection.
                    let resp = Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: m,
                    };
                    if write_frame(&mut stream, &resp).is_err() {
                        return;
                    }
                }
                Err(FrameError::TooLarge(n)) => {
                    // Cannot resync after an oversized frame: reply, drop.
                    let _ = write_frame(
                        &mut stream,
                        &Response::Error {
                            kind: ErrorKind::BadRequest,
                            message: format!("frame of {n} bytes rejected"),
                        },
                    );
                    return;
                }
                Err(_) => return, // Closed / Truncated / Io
            }
        }
    }
}

fn error_response(e: BrokerError) -> Response {
    Response::Error {
        kind: e.kind(),
        message: e.message(),
    }
}

/// A broker plus the worker pool that runs its connections.
pub struct SessionService {
    broker: Arc<Broker>,
    pool: WorkerPool,
}

impl SessionService {
    pub fn new(broker: Broker, workers: usize, queue_depth: usize) -> SessionService {
        SessionService {
            broker: Arc::new(broker),
            pool: WorkerPool::new(workers, queue_depth),
        }
    }

    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// Opens an in-process connection: the returned pipe end speaks the
    /// framed protocol; the server side runs on the worker pool.
    pub fn connect(&self) -> Result<crate::proto::PipeEnd, SubmitError> {
        let (client, server) = crate::proto::duplex();
        let broker = Arc::clone(&self.broker);
        self.pool.submit(move || broker.serve_connection(server))?;
        Ok(client)
    }

    /// Accepts TCP connections forever, each served on the pool. When
    /// the pool's queue is full the connection is answered with `Busy`
    /// and dropped — bounded intake, no thread-per-connection blowup.
    pub fn serve_tcp(&self, listener: std::net::TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let mut stream = stream?;
            let Ok(job_stream) = stream.try_clone() else {
                continue;
            };
            let broker = Arc::clone(&self.broker);
            if self
                .pool
                .submit(move || broker.serve_connection(job_stream))
                .is_err()
            {
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::Busy,
                        message: "worker queue full, retry later".into(),
                    },
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::acl::AclAction;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_routing::converge;
    use heimdall_verify::mine::{mine_policies, MinerInput};

    /// Enterprise production with the Figure-6 ACL misconfiguration, plus
    /// the policies mined from the healthy network.
    fn broken_enterprise() -> (Network, PolicySet) {
        let g = enterprise_network();
        let cp = converge(&g.net);
        let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
        let mut broken = g.net;
        broken
            .device_by_name_mut("fw1")
            .unwrap()
            .config
            .acls
            .get_mut("100")
            .unwrap()
            .entries[1]
            .action = AclAction::Deny;
        (broken, policies)
    }

    fn acl_ticket() -> Task {
        Task {
            kind: TaskKind::AccessControl,
            affected: vec!["h4".into(), "srv1".into()],
        }
    }

    fn broker() -> Broker {
        let (production, policies) = broken_enterprise();
        Broker::new(production, policies, BrokerConfig::default())
    }

    #[test]
    fn full_session_lifecycle_repairs_production() {
        let b = broker();
        let (id, devices) = b.open_session("alice", acl_ticket()).unwrap();
        assert!(devices.contains(&"fw1".to_string()), "{devices:?}");
        assert_eq!(b.live_sessions(), 1);

        // Diagnose, fix, re-probe — all mediated.
        b.exec(id, "fw1", "show access-lists").unwrap();
        b.exec(id, "fw1", "no access-list 100 line 2").unwrap();
        b.exec(
            id,
            "fw1",
            "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
        )
        .unwrap();
        let pong = b.exec(id, "h4", "ping 10.2.1.10").unwrap();
        assert!(pong.contains("success"), "{pong}");

        let report = b.finish(id).unwrap();
        assert_eq!(report.verdict, Verdict::Accepted);
        assert!(report.applied);
        assert_eq!(report.attempts, 1);
        assert!(report.changes > 0);
        assert_eq!(b.live_sessions(), 0);

        // Production healed.
        let healed = b.production();
        let cp = converge(&healed);
        assert!(heimdall_verify::checker::check_policies(&healed, &cp, &b.policies).all_hold());
        assert!(b.verify_audit());

        let snap = b.stats();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.commits_applied, 1);
        assert_eq!(snap.denials, 0);
        assert!(snap.exec_count >= 4);
    }

    #[test]
    fn out_of_privilege_commands_are_denied_and_counted() {
        let b = broker();
        let (id, _) = b.open_session("mallory", acl_ticket()).unwrap();
        let err = b.exec(id, "fw1", "write erase").unwrap_err();
        assert!(matches!(err, BrokerError::PermissionDenied(_)));
        // Out-of-slice devices are denied by the monitor too: inside the
        // twin they simply don't exist as grantable resources.
        assert!(b.exec(id, "bdr1", "show running-config").is_err());
        assert_eq!(b.stats().denials, 2);
    }

    #[test]
    fn unknown_session_is_reported() {
        let b = broker();
        assert!(matches!(
            b.exec(SessionId(99), "fw1", "show running-config"),
            Err(BrokerError::SessionNotFound(_))
        ));
        assert!(matches!(
            b.finish(SessionId(99)),
            Err(BrokerError::SessionNotFound(_))
        ));
    }

    #[test]
    fn privilege_memoization_hits_on_same_task_shape() {
        let b = broker();
        let (a, _) = b.open_session("alice", acl_ticket()).unwrap();
        let (c, _) = b.open_session("bob", acl_ticket()).unwrap();
        assert_eq!(b.priv_cache.lock().entries.len(), 1, "one shape, one entry");
        // Different shape adds a second entry.
        let other = Task {
            kind: TaskKind::Routing,
            affected: vec!["h1".into(), "srv1".into()],
        };
        let (d, _) = b.open_session("carol", other).unwrap();
        assert_eq!(b.priv_cache.lock().entries.len(), 2);
        for id in [a, c, d] {
            let _ = b.finish(id);
        }
        // A commit applied (or not) — the cache is cleared only on apply;
        // either way later opens still work.
        let _ = b.open_session("dave", acl_ticket()).unwrap();
    }

    #[test]
    fn rate_limited_technician_is_rejected() {
        let (production, policies) = broken_enterprise();
        let cfg = BrokerConfig {
            rate_capacity: 2,
            rate_refill_per_sec: 0.0,
            ..BrokerConfig::default()
        };
        let b = Broker::new(production, policies, cfg);
        let (id, _) = b.open_session("eve", acl_ticket()).unwrap(); // token 1
        b.exec(id, "fw1", "show access-lists").unwrap(); // token 2
        let err = b.exec(id, "fw1", "show access-lists").unwrap_err();
        assert!(matches!(err, BrokerError::RateLimited(_)));
        assert!(b.stats().rate_limited >= 1);
    }

    #[test]
    fn stale_commit_is_retried_and_lands_without_clobbering() {
        let b = broker();
        // Two technicians race on fw1: alice fixes the ACL, bob adds an
        // unrelated static route on the same device.
        let (alice, _) = b.open_session("alice", acl_ticket()).unwrap();
        let route_ticket = Task {
            kind: TaskKind::Routing,
            affected: vec!["h4".into(), "srv1".into()],
        };
        let (bob, _) = b.open_session("bob", route_ticket).unwrap();

        b.exec(alice, "fw1", "no access-list 100 line 2").unwrap();
        b.exec(
            alice,
            "fw1",
            "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
        )
        .unwrap();
        b.exec(bob, "fw1", "ip route 10.77.0.0 255.255.255.0 10.2.1.10")
            .unwrap();

        let a = b.finish(alice).unwrap();
        assert!(a.applied);
        assert_eq!(a.attempts, 1);

        // Bob's base is now stale on fw1; the broker retries against
        // fresh production and his granular route-add composes.
        let r = b.finish(bob).unwrap();
        assert!(r.applied, "{:?}", r.verdict);
        assert!(r.attempts > 1, "expected a stale retry, got {r:?}");
        assert!(b.stats().commit_conflicts >= 1);

        let healed = b.production();
        let fw1 = healed.device_by_name("fw1").unwrap();
        // Alice's ACL fix survived bob's commit...
        assert_eq!(fw1.config.acls["100"].entries[1].action, AclAction::Permit);
        // ...and bob's route landed exactly once.
        let hits = fw1
            .config
            .static_routes
            .iter()
            .filter(|rt| rt.prefix.to_string().starts_with("10.77.0.0"))
            .count();
        assert_eq!(hits, 1);
        assert!(b.verify_audit());
    }

    #[test]
    fn conflicting_edits_to_same_object_reject_instead_of_clobbering() {
        let b = broker();
        // Both technicians open twins of the *same* broken state and both
        // rewrite ACL 100 on fw1 — a true write-write conflict.
        let (alice, _) = b.open_session("alice", acl_ticket()).unwrap();
        let (bob, _) = b.open_session("bob", acl_ticket()).unwrap();

        b.exec(alice, "fw1", "no access-list 100 line 2").unwrap();
        b.exec(
            alice,
            "fw1",
            "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
        )
        .unwrap();
        b.exec(bob, "fw1", "no access-list 100 line 2").unwrap();
        b.exec(
            bob,
            "fw1",
            "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
        )
        .unwrap();

        let a = b.finish(alice).unwrap();
        assert!(a.applied);

        // Bob's diff writes the object alice just changed: auto-retrying
        // would overwrite her commit with a diff built against state that
        // no longer exists. It must come back stale, not applied.
        let r = b.finish(bob).unwrap();
        assert_eq!(r.verdict, Verdict::RejectedStale);
        assert!(!r.applied);
        assert!(b.stats().commit_conflicts >= 1);
        assert!(b.stats().commits_rejected >= 1);

        // Alice's fix survived.
        let prod = b.production();
        let fw1 = prod.device_by_name("fw1").unwrap();
        assert_eq!(fw1.config.acls["100"].entries[1].action, AclAction::Permit);
        assert!(b.verify_audit());
    }

    #[test]
    fn protocol_dispatch_covers_every_request() {
        let b = broker();
        let resp = b.handle(Request::OpenSession {
            technician: "alice".into(),
            ticket: acl_ticket(),
        });
        let Response::SessionOpened { session, .. } = resp else {
            panic!("expected SessionOpened, got {resp:?}");
        };
        assert!(matches!(
            b.handle(Request::Exec {
                session,
                device: "fw1".into(),
                line: "show access-lists".into(),
            }),
            Response::ExecOutput { .. }
        ));
        let Response::Topology { devices, .. } = b.handle(Request::TopologyView { session }) else {
            panic!("expected Topology");
        };
        assert!(devices.iter().any(|(name, _)| name == "fw1"));
        assert!(matches!(
            b.handle(Request::Finish { session }),
            Response::Finished { .. }
        ));
        let Response::Audit { entries } = b.handle(Request::AuditQuery {
            kind: Some(AuditKind::Session),
            actor: None,
        }) else {
            panic!("expected Audit");
        };
        assert!(!entries.is_empty());
        assert!(matches!(b.handle(Request::Stats), Response::Stats { .. }));
        assert!(matches!(
            b.handle(Request::Exec {
                session,
                device: "fw1".into(),
                line: "show access-lists".into(),
            }),
            Response::Error {
                kind: ErrorKind::SessionNotFound,
                ..
            }
        ));
    }

    #[test]
    fn service_serves_framed_connections_over_pipes() {
        let (production, policies) = broken_enterprise();
        let service = SessionService::new(
            Broker::new(production, policies, BrokerConfig::default()),
            4,
            16,
        );
        let mut conn = service.connect().unwrap();
        write_frame(
            &mut conn,
            &Request::OpenSession {
                technician: "alice".into(),
                ticket: acl_ticket(),
            },
        )
        .unwrap();
        let resp: Response = read_frame(&mut conn).unwrap();
        let Response::SessionOpened { session, .. } = resp else {
            panic!("expected SessionOpened, got {resp:?}");
        };
        write_frame(&mut conn, &Request::Finish { session }).unwrap();
        let resp: Response = read_frame(&mut conn).unwrap();
        assert!(matches!(resp, Response::Finished { .. }));
        drop(conn);
        assert!(service.broker().verify_audit());
    }

    #[test]
    fn analysis_gate_denies_below_threshold_and_audits() {
        let (production, policies) = broken_enterprise();
        // Deny at Info: even the derived spec's informational
        // escalation-widening finding refuses intake.
        let cfg = BrokerConfig {
            analysis_deny_at: Some(heimdall_analyze::Severity::Info),
            ..BrokerConfig::default()
        };
        let b = Broker::new(production, policies, cfg);
        let err = b.open_session("alice", acl_ticket()).unwrap_err();
        assert!(matches!(err, BrokerError::PermissionDenied(_)));
        assert!(
            err.message().contains("static analysis"),
            "{}",
            err.message()
        );
        assert_eq!(b.live_sessions(), 0, "no session may exist after a refusal");
        let snap = b.stats();
        assert_eq!(snap.analysis_denials, 1);
        assert!(snap.analysis_findings > 0);
        assert_eq!(snap.sessions_opened, 0);
        let audited = b.audit_query(Some(AuditKind::Verification), Some("alice"));
        assert!(
            audited
                .iter()
                .any(|e| e.detail.contains("refused by static analysis")),
            "{audited:?}"
        );
        assert!(b.verify_audit());
    }

    #[test]
    fn default_gate_admits_derived_specs_but_tags_warnings() {
        let b = broker();
        let (id, _) = b.open_session("alice", acl_ticket()).unwrap();
        let snap = b.stats();
        assert_eq!(snap.analysis_denials, 0);
        // The derived spec still carries sub-error findings (escalation
        // widening at least), counted and audit-tagged.
        assert!(snap.analysis_findings > 0);
        let _ = b.finish(id);
        assert!(b.verify_audit());
    }

    #[test]
    fn analyze_query_reports_seeded_defects_over_the_session_form() {
        let b = broker();
        let (id, _) = b.open_session("alice", acl_ticket()).unwrap();
        // Session form: the derived spec is clean of errors.
        let report = b.analyze_query(Some(id), None, None).unwrap();
        assert!(report.max_severity() < Some(heimdall_analyze::Severity::Error));
        // Spec form: a lazy wildcard trips over-grant and destructive
        // reachability against the same ticket.
        let report = b
            .analyze_query(
                None,
                Some("allow(*, fw1)\nallow(view, fw1)\n".into()),
                Some(acl_ticket()),
            )
            .unwrap();
        assert!(
            report.has_code(heimdall_analyze::codes::SHADOWED),
            "{report}"
        );
        assert!(
            report.has_code(heimdall_analyze::codes::OVER_GRANT),
            "{report}"
        );
        assert!(
            report.has_code(heimdall_analyze::codes::ESCALATION_DESTRUCTIVE),
            "{report}"
        );
        assert!(b.stats().analysis_findings >= report.findings.len() as u64);
    }

    #[test]
    fn analyze_query_rejects_malformed_forms() {
        let b = broker();
        let (id, _) = b.open_session("alice", acl_ticket()).unwrap();
        for (session, spec, ticket) in [
            (Some(id), Some("allow(view, fw1)\n".to_string()), None),
            (None, None, None),
            (None, None, Some(acl_ticket())),
            (Some(id), None, Some(acl_ticket())),
            (None, Some("allow(view, fw1)\n".to_string()), None),
            (
                None,
                Some("this is not DSL".to_string()),
                Some(acl_ticket()),
            ),
        ] {
            let err = b.analyze_query(session, spec.clone(), ticket).unwrap_err();
            assert!(
                matches!(err, BrokerError::BadRequest(_)),
                "({session:?}, {spec:?}) should be BadRequest, got {err:?}"
            );
        }
        // Over the predicate cap.
        let huge = "allow(view, fw1)\n".repeat(MAX_ANALYZE_PREDICATES + 1);
        let err = b
            .analyze_query(None, Some(huge), Some(acl_ticket()))
            .unwrap_err();
        assert!(err.message().contains("cap"), "{}", err.message());
        // Unknown session is its own error kind, not BadRequest.
        assert!(matches!(
            b.analyze_query(Some(SessionId(999)), None, None),
            Err(BrokerError::SessionNotFound(_))
        ));
    }

    #[test]
    fn idle_eviction_removes_sessions_and_audits() {
        let (production, policies) = broken_enterprise();
        let cfg = BrokerConfig {
            idle_ttl: Duration::from_millis(10),
            ..BrokerConfig::default()
        };
        let b = Broker::new(production, policies, cfg);
        let (_id, _) = b.open_session("alice", acl_ticket()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.evict_idle(), 1);
        assert_eq!(b.live_sessions(), 0);
        assert_eq!(b.stats().sessions_evicted, 1);
        let evictions = b.audit_query(Some(AuditKind::Session), Some("alice"));
        assert!(evictions.iter().any(|e| e.detail.contains("evicted")));
    }
}
