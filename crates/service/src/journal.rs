//! The broker's durable journal vocabulary.
//!
//! Every state transition the broker must survive a crash with is one
//! [`JournalEvent`], serialized as JSON into a `heimdall-store` WAL
//! record whose kind byte names the variant. Checkpoints write a
//! [`BrokerSnapshot`] — the full durable state at a journal cut — so
//! recovery is `snapshot + replay(events after the cut)`.
//!
//! Replay determinism rests on two ordering guarantees upheld by the
//! broker, not by this module:
//!
//! - [`JournalEvent::Commit`] records are appended *inside* the commit
//!   guard's production lock (via the enforcer's `CommitSink`), so
//!   journal order equals epoch order and re-applying diffs in journal
//!   order reconstructs production exactly;
//! - [`JournalEvent::Audit`] records are appended while the pipeline
//!   lock is held (via the `AuditSink`), so journal order equals audit
//!   chain order and the reconstructed log re-verifies with
//!   `verify_chain`.

use crate::stats::ServiceStats;
use heimdall_enforcer::audit::{AuditEntry, AuditLog};
use heimdall_enforcer::enclave::SealedBlob;
use heimdall_netmodel::diff::ConfigDiff;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::TaskKind;
use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;

/// WAL record kind byte for [`JournalEvent::SessionOpen`].
pub const KIND_SESSION_OPEN: u8 = 1;
/// WAL record kind byte for [`JournalEvent::PrivilegeDerive`].
pub const KIND_PRIVILEGE_DERIVE: u8 = 2;
/// WAL record kind byte for [`JournalEvent::Commit`].
pub const KIND_COMMIT: u8 = 3;
/// WAL record kind byte for [`JournalEvent::SessionFinish`].
pub const KIND_SESSION_FINISH: u8 = 4;
/// WAL record kind byte for [`JournalEvent::SessionEvict`].
pub const KIND_SESSION_EVICT: u8 = 5;
/// WAL record kind byte for [`JournalEvent::Audit`].
pub const KIND_AUDIT: u8 = 6;

/// One durable broker state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// A technician opened a hosted session.
    SessionOpen {
        session: u64,
        technician: String,
        kind: TaskKind,
        affected: Vec<String>,
    },
    /// A privilege set was freshly derived (cache miss). Informational:
    /// carries no replayable state, but lets an operator reconstruct
    /// what was derivable at which epoch from the log alone.
    PrivilegeDerive {
        kind: TaskKind,
        affected: Vec<String>,
        epoch: u64,
    },
    /// A guarded commit installed `diff`, moving production to `epoch`.
    /// Appended inside the production lock: journal order == epoch order.
    Commit {
        technician: String,
        diff: ConfigDiff,
        epoch: u64,
    },
    /// A session closed through [`crate::Broker::finish`].
    SessionFinish { session: u64, applied: bool },
    /// A session was reclaimed by idle-TTL (or crash-recovery) eviction.
    SessionEvict { session: u64 },
    /// One appended audit entry, verbatim — `prev`/`hash` included, so
    /// the restored log re-verifies without re-deriving the chain.
    Audit { entry: AuditEntry },
}

impl JournalEvent {
    /// The WAL record kind byte for this variant.
    pub fn kind_byte(&self) -> u8 {
        match self {
            JournalEvent::SessionOpen { .. } => KIND_SESSION_OPEN,
            JournalEvent::PrivilegeDerive { .. } => KIND_PRIVILEGE_DERIVE,
            JournalEvent::Commit { .. } => KIND_COMMIT,
            JournalEvent::SessionFinish { .. } => KIND_SESSION_FINISH,
            JournalEvent::SessionEvict { .. } => KIND_SESSION_EVICT,
            JournalEvent::Audit { .. } => KIND_AUDIT,
        }
    }

    /// The record payload for this event.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("journal events always serialize")
            .into_bytes()
    }

    /// Decodes a record payload, cross-checking the record's kind byte
    /// against the decoded variant — a mismatch means the log was
    /// written by code with a different kind mapping and must not be
    /// silently replayed.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<JournalEvent, String> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| format!("journal payload is not UTF-8: {e}"))?;
        let event: JournalEvent =
            serde_json::from_str(text).map_err(|e| format!("journal payload undecodable: {e}"))?;
        if event.kind_byte() != kind {
            return Err(format!(
                "record kind byte {kind} does not match payload variant (expected {})",
                event.kind_byte()
            ));
        }
        Ok(event)
    }
}

/// The monotonic service counters worth surviving a restart. Latency
/// histograms are deliberately absent — they describe one process
/// lifetime, not the service's history.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedCounters {
    pub sessions_opened: u64,
    pub sessions_finished: u64,
    pub sessions_evicted: u64,
    pub commands_mediated: u64,
    pub denials: u64,
    pub commits_applied: u64,
    pub commits_rejected: u64,
    pub commit_conflicts: u64,
    pub rate_limited: u64,
    pub analysis_findings: u64,
    pub analysis_denials: u64,
}

impl PersistedCounters {
    /// Reads the current counter values out of live stats.
    pub fn capture(stats: &ServiceStats) -> PersistedCounters {
        let get = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        PersistedCounters {
            sessions_opened: get(&stats.sessions_opened),
            sessions_finished: get(&stats.sessions_finished),
            sessions_evicted: get(&stats.sessions_evicted),
            commands_mediated: get(&stats.commands_mediated),
            denials: get(&stats.denials),
            commits_applied: get(&stats.commits_applied),
            commits_rejected: get(&stats.commits_rejected),
            commit_conflicts: get(&stats.commit_conflicts),
            rate_limited: get(&stats.rate_limited),
            analysis_findings: get(&stats.analysis_findings),
            analysis_denials: get(&stats.analysis_denials),
        }
    }

    /// Seeds live stats from recovered values (recovery path only; the
    /// target counters are expected to be zero).
    pub fn store_into(&self, stats: &ServiceStats) {
        stats
            .sessions_opened
            .store(self.sessions_opened, Ordering::Relaxed);
        stats
            .sessions_finished
            .store(self.sessions_finished, Ordering::Relaxed);
        stats
            .sessions_evicted
            .store(self.sessions_evicted, Ordering::Relaxed);
        stats
            .commands_mediated
            .store(self.commands_mediated, Ordering::Relaxed);
        stats.denials.store(self.denials, Ordering::Relaxed);
        stats
            .commits_applied
            .store(self.commits_applied, Ordering::Relaxed);
        stats
            .commits_rejected
            .store(self.commits_rejected, Ordering::Relaxed);
        stats
            .commit_conflicts
            .store(self.commit_conflicts, Ordering::Relaxed);
        stats
            .rate_limited
            .store(self.rate_limited, Ordering::Relaxed);
        stats
            .analysis_findings
            .store(self.analysis_findings, Ordering::Relaxed);
        stats
            .analysis_denials
            .store(self.analysis_denials, Ordering::Relaxed);
    }
}

/// Everything a recovering broker needs from before the journal cut:
/// the snapshot payload written at every checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerSnapshot {
    /// Production as of the cut.
    pub production: Network,
    /// The commit-guard epoch production was at.
    pub epoch: u64,
    /// Enforcer lifetime verification counters.
    pub verify_total: u64,
    pub verify_failures: u64,
    /// The full audit chain as of the cut.
    pub audit: AuditLog,
    /// The sealed audit head as of the cut — cross-checked against
    /// `audit`'s head on recovery before any post-cut entries are
    /// replayed, so a swapped-in snapshot with a consistent-but-forged
    /// chain is rejected by the enclave seal.
    pub sealed_head: SealedBlob,
    /// Monotonic service counters.
    pub counters: PersistedCounters,
    /// Lifetime `(series, count, sum)` totals from the obs store.
    pub obs_totals: Vec<(String, u64, f64)>,
    /// Sessions live at the cut, `(id, technician)`. Their in-memory
    /// twins cannot be reconstructed, so recovery evicts them with an
    /// audit trail.
    pub live_sessions: Vec<(u64, String)>,
    /// Lower bound for the session-ID allocator: recovery never reuses
    /// an ID that appears anywhere in the journal.
    pub next_session_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_enforcer::audit::AuditKind;

    fn sample_events() -> Vec<JournalEvent> {
        let mut log = AuditLog::new();
        let entry = log
            .append(AuditKind::Session, "alice", "session 1 opened")
            .clone();
        vec![
            JournalEvent::SessionOpen {
                session: 1,
                technician: "alice".into(),
                kind: TaskKind::AccessControl,
                affected: vec!["h4".into(), "srv1".into()],
            },
            JournalEvent::PrivilegeDerive {
                kind: TaskKind::Routing,
                affected: vec!["h1".into()],
                epoch: 3,
            },
            JournalEvent::Commit {
                technician: "alice".into(),
                diff: ConfigDiff::default(),
                epoch: 4,
            },
            JournalEvent::SessionFinish {
                session: 1,
                applied: true,
            },
            JournalEvent::SessionEvict { session: 2 },
            JournalEvent::Audit { entry },
        ]
    }

    #[test]
    fn every_variant_round_trips_under_its_kind_byte() {
        for (i, event) in sample_events().into_iter().enumerate() {
            assert_eq!(event.kind_byte(), (i + 1) as u8, "kind bytes are 1..=6");
            let back = JournalEvent::decode(event.kind_byte(), &event.encode()).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn kind_byte_mismatch_is_rejected() {
        let event = JournalEvent::SessionEvict { session: 9 };
        let err = JournalEvent::decode(KIND_COMMIT, &event.encode()).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
        assert!(JournalEvent::decode(KIND_AUDIT, b"not json").is_err());
    }

    #[test]
    fn persisted_counters_capture_and_restore() {
        let stats = ServiceStats::new();
        for _ in 0..3 {
            ServiceStats::bump(&stats.commits_applied);
        }
        ServiceStats::bump(&stats.denials);
        let snap = PersistedCounters::capture(&stats);
        assert_eq!(snap.commits_applied, 3);
        assert_eq!(snap.denials, 1);
        let fresh = ServiceStats::new();
        snap.store_into(&fresh);
        assert_eq!(PersistedCounters::capture(&fresh), snap);
    }
}
