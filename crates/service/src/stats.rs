//! Service-level counters and latency histograms.
//!
//! Everything here is lock-free (`AtomicU64`) so the hot exec path never
//! serializes on a stats mutex. Latencies go into log₂-bucketed
//! histograms — coarse, but enough to read p50/p99 off a running broker
//! without storing per-request samples.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Log₂-bucketed latency histogram over nanoseconds.
///
/// A sample of `n` nanoseconds lands in bucket `⌊log₂ n⌋`; quantiles are
/// answered with the geometric midpoint of the covering bucket, so the
/// error is bounded by ~√2 of the true value — fine for p50/p99 dashboards.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in 0..=1) in nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                let lo = 1u64 << i;
                return lo + (lo >> 1);
            }
        }
        1u64 << (BUCKETS - 1)
    }

    pub fn mean_ns(&self) -> u64 {
        self.sum_ns
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }
}

/// Counters for one broker instance.
#[derive(Default)]
pub struct ServiceStats {
    pub sessions_opened: AtomicU64,
    pub sessions_finished: AtomicU64,
    pub sessions_evicted: AtomicU64,
    pub commands_mediated: AtomicU64,
    pub denials: AtomicU64,
    pub commits_applied: AtomicU64,
    pub commits_rejected: AtomicU64,
    pub commit_conflicts: AtomicU64,
    pub rate_limited: AtomicU64,
    pub exec_latency: LatencyHistogram,
    pub finish_latency: LatencyHistogram,
}

impl ServiceStats {
    pub fn new() -> ServiceStats {
        ServiceStats::default()
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_finished: self.sessions_finished.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            commands_mediated: self.commands_mediated.load(Ordering::Relaxed),
            denials: self.denials.load(Ordering::Relaxed),
            commits_applied: self.commits_applied.load(Ordering::Relaxed),
            commits_rejected: self.commits_rejected.load(Ordering::Relaxed),
            commit_conflicts: self.commit_conflicts.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            exec_p50_ns: self.exec_latency.quantile_ns(0.50),
            exec_p99_ns: self.exec_latency.quantile_ns(0.99),
            exec_count: self.exec_latency.count(),
            finish_p50_ns: self.finish_latency.quantile_ns(0.50),
            finish_p99_ns: self.finish_latency.quantile_ns(0.99),
        }
    }
}

/// A point-in-time copy of the counters, cheap to print or ship.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    pub sessions_opened: u64,
    pub sessions_finished: u64,
    pub sessions_evicted: u64,
    pub commands_mediated: u64,
    pub denials: u64,
    pub commits_applied: u64,
    pub commits_rejected: u64,
    pub commit_conflicts: u64,
    pub rate_limited: u64,
    pub exec_p50_ns: u64,
    pub exec_p99_ns: u64,
    pub exec_count: u64,
    pub finish_p50_ns: u64,
    pub finish_p99_ns: u64,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sessions: {} opened / {} finished / {} evicted",
            self.sessions_opened, self.sessions_finished, self.sessions_evicted
        )?;
        writeln!(
            f,
            "commands: {} mediated, {} denied",
            self.commands_mediated, self.denials
        )?;
        writeln!(
            f,
            "commits:  {} applied, {} rejected, {} stale conflicts, {} rate-limited",
            self.commits_applied, self.commits_rejected, self.commit_conflicts, self.rate_limited
        )?;
        write!(
            f,
            "latency:  exec p50 {} p99 {} (n={}), finish p50 {} p99 {}",
            fmt_ns(self.exec_p50_ns),
            fmt_ns(self.exec_p99_ns),
            self.exec_count,
            fmt_ns(self.finish_p50_ns),
            fmt_ns(self.finish_p99_ns),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(5));
        }
        let p50 = h.quantile_ns(0.50);
        assert!(
            (4_000..32_000).contains(&p50),
            "p50 {p50} should bracket 10µs"
        );
        let p99 = h.quantile_ns(0.99);
        assert!(
            (2_000_000..16_000_000).contains(&p99),
            "p99 {p99} should bracket 5ms"
        );
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn snapshot_roundtrips_and_prints() {
        let s = ServiceStats::new();
        ServiceStats::bump(&s.sessions_opened);
        ServiceStats::bump(&s.commands_mediated);
        s.exec_latency.record(Duration::from_micros(3));
        let snap = s.snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.exec_count, 1);
        let text = snap.to_string();
        assert!(text.contains("1 opened"));
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
