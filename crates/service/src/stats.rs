//! Service-level counters and latency histograms.
//!
//! Everything here is lock-free (`AtomicU64`) so the hot exec path never
//! serializes on a stats mutex. Latencies go into the log₂-bucketed
//! [`LatencyHistogram`] (now hosted in `heimdall-telemetry` so the whole
//! pipeline shares one implementation) — coarse, but enough to read
//! p50/p99 off a running broker without storing per-request samples.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

pub use heimdall_telemetry::LatencyHistogram;

/// Counters for one broker instance.
#[derive(Default)]
pub struct ServiceStats {
    pub sessions_opened: AtomicU64,
    pub sessions_finished: AtomicU64,
    pub sessions_evicted: AtomicU64,
    pub commands_mediated: AtomicU64,
    pub denials: AtomicU64,
    pub commits_applied: AtomicU64,
    pub commits_rejected: AtomicU64,
    pub commit_conflicts: AtomicU64,
    pub rate_limited: AtomicU64,
    /// Static-analysis findings produced at privilege-derivation time and
    /// by `AnalyzeQuery` requests (every severity counts).
    pub analysis_findings: AtomicU64,
    /// Session opens refused because the derived spec tripped the
    /// configured analysis deny threshold.
    pub analysis_denials: AtomicU64,
    /// Journal appends or syncs that failed (the WAL error is sticky, so
    /// a non-zero value means durability is lost from that point on).
    pub journal_errors: AtomicU64,
    /// Set once at recovery: journal records replayed after the newest
    /// snapshot cut.
    pub records_replayed: AtomicU64,
    /// Set once at recovery: bytes discarded from torn tails and
    /// corrupt/orphaned journal suffixes.
    pub torn_bytes_discarded: AtomicU64,
    /// Segments removed by checkpoint compaction this process lifetime.
    pub segments_compacted: AtomicU64,
    /// Set once at recovery: sessions found live in the journal whose
    /// in-memory twins died with the previous process, evicted on boot.
    pub recovered_sessions_evicted: AtomicU64,
    pub exec_latency: LatencyHistogram,
    pub finish_latency: LatencyHistogram,
}

impl ServiceStats {
    pub fn new() -> ServiceStats {
        ServiceStats::default()
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_finished: self.sessions_finished.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            commands_mediated: self.commands_mediated.load(Ordering::Relaxed),
            denials: self.denials.load(Ordering::Relaxed),
            commits_applied: self.commits_applied.load(Ordering::Relaxed),
            commits_rejected: self.commits_rejected.load(Ordering::Relaxed),
            commit_conflicts: self.commit_conflicts.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            analysis_findings: self.analysis_findings.load(Ordering::Relaxed),
            analysis_denials: self.analysis_denials.load(Ordering::Relaxed),
            journal_errors: self.journal_errors.load(Ordering::Relaxed),
            records_replayed: self.records_replayed.load(Ordering::Relaxed),
            torn_bytes_discarded: self.torn_bytes_discarded.load(Ordering::Relaxed),
            segments_compacted: self.segments_compacted.load(Ordering::Relaxed),
            recovered_sessions_evicted: self.recovered_sessions_evicted.load(Ordering::Relaxed),
            exec_p50_ns: self.exec_latency.quantile_ns(0.50),
            exec_p99_ns: self.exec_latency.quantile_ns(0.99),
            exec_count: self.exec_latency.count(),
            finish_p50_ns: self.finish_latency.quantile_ns(0.50),
            finish_p99_ns: self.finish_latency.quantile_ns(0.99),
            finish_count: self.finish_latency.count(),
        }
    }
}

/// A point-in-time copy of the counters, cheap to print or ship.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    pub sessions_opened: u64,
    pub sessions_finished: u64,
    pub sessions_evicted: u64,
    pub commands_mediated: u64,
    pub denials: u64,
    pub commits_applied: u64,
    pub commits_rejected: u64,
    pub commit_conflicts: u64,
    pub rate_limited: u64,
    pub analysis_findings: u64,
    pub analysis_denials: u64,
    pub journal_errors: u64,
    pub records_replayed: u64,
    pub torn_bytes_discarded: u64,
    pub segments_compacted: u64,
    pub recovered_sessions_evicted: u64,
    pub exec_p50_ns: u64,
    pub exec_p99_ns: u64,
    pub exec_count: u64,
    pub finish_p50_ns: u64,
    pub finish_p99_ns: u64,
    pub finish_count: u64,
}

impl StatsSnapshot {
    /// Folds another shard's snapshot into this one for fleet-wide
    /// aggregation. Counters add; latency quantiles take the max across
    /// shards (a conservative ceiling — true fleet quantiles would need
    /// the underlying histograms, which don't travel in snapshots).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.sessions_opened += other.sessions_opened;
        self.sessions_finished += other.sessions_finished;
        self.sessions_evicted += other.sessions_evicted;
        self.commands_mediated += other.commands_mediated;
        self.denials += other.denials;
        self.commits_applied += other.commits_applied;
        self.commits_rejected += other.commits_rejected;
        self.commit_conflicts += other.commit_conflicts;
        self.rate_limited += other.rate_limited;
        self.analysis_findings += other.analysis_findings;
        self.analysis_denials += other.analysis_denials;
        self.journal_errors += other.journal_errors;
        self.records_replayed += other.records_replayed;
        self.torn_bytes_discarded += other.torn_bytes_discarded;
        self.segments_compacted += other.segments_compacted;
        self.recovered_sessions_evicted += other.recovered_sessions_evicted;
        self.exec_p50_ns = self.exec_p50_ns.max(other.exec_p50_ns);
        self.exec_p99_ns = self.exec_p99_ns.max(other.exec_p99_ns);
        self.exec_count += other.exec_count;
        self.finish_p50_ns = self.finish_p50_ns.max(other.finish_p50_ns);
        self.finish_p99_ns = self.finish_p99_ns.max(other.finish_p99_ns);
        self.finish_count += other.finish_count;
    }
}

/// The fleet-wide metrics surface served over `MetricsQuery`: merged
/// service counters across every shard, net front-end counters, and
/// event-bus health. In network mode the server's background scrape loop
/// refreshes this continuously; a lone in-process broker answers with
/// `shards == 1` and no net section.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FleetMetrics {
    /// Shards folded into this snapshot.
    pub shards: usize,
    /// Per-shard [`StatsSnapshot`]s merged via [`StatsSnapshot::merge`].
    pub service: StatsSnapshot,
    /// Net-layer counters as `(name, value)` pairs — filled by the net
    /// server, empty for an in-process broker (the service crate must
    /// not depend on the net crate).
    pub net: Vec<(String, u64)>,
    /// Scrape passes driven across all shards.
    pub scrapes_total: u64,
    /// SLO alerts fired, lifetime, across all shards.
    pub alerts_total: u64,
    /// Events offered to the push bus.
    pub events_published: u64,
    /// Events (incl. gap markers) delivered to subscriber sinks.
    pub events_delivered: u64,
    /// Events dropped at full subscriber queues.
    pub events_dropped: u64,
    /// Live event subscribers.
    pub subscribers: u64,
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} shard(s), {} scrapes, {} alerts fired",
            self.shards, self.scrapes_total, self.alerts_total
        )?;
        writeln!(
            f,
            "bus:   {} subscribers, {} published / {} delivered / {} dropped",
            self.subscribers, self.events_published, self.events_delivered, self.events_dropped
        )?;
        for (name, value) in &self.net {
            writeln!(f, "net:   {name} {value}")?;
        }
        write!(f, "{}", self.service)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sessions: {} opened / {} finished / {} evicted",
            self.sessions_opened, self.sessions_finished, self.sessions_evicted
        )?;
        writeln!(
            f,
            "commands: {} mediated, {} denied",
            self.commands_mediated, self.denials
        )?;
        writeln!(
            f,
            "commits:  {} applied, {} rejected, {} stale conflicts, {} rate-limited",
            self.commits_applied, self.commits_rejected, self.commit_conflicts, self.rate_limited
        )?;
        writeln!(
            f,
            "analysis: {} findings, {} denied opens",
            self.analysis_findings, self.analysis_denials
        )?;
        writeln!(
            f,
            "journal:  {} replayed, {} torn bytes dropped, {} segs compacted, {} orphans evicted, {} errors",
            self.records_replayed,
            self.torn_bytes_discarded,
            self.segments_compacted,
            self.recovered_sessions_evicted,
            self.journal_errors
        )?;
        write!(
            f,
            "latency:  exec p50 {} p99 {} (n={}), finish p50 {} p99 {} (n={})",
            fmt_ns(self.exec_p50_ns),
            fmt_ns(self.exec_p99_ns),
            self.exec_count,
            fmt_ns(self.finish_p50_ns),
            fmt_ns(self.finish_p99_ns),
            self.finish_count,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The histogram's own behavior is tested where it lives now, in
    // `heimdall-telemetry::metrics`.

    #[test]
    fn snapshot_roundtrips_and_prints() {
        let s = ServiceStats::new();
        ServiceStats::bump(&s.sessions_opened);
        ServiceStats::bump(&s.commands_mediated);
        s.exec_latency.record(Duration::from_micros(3));
        s.finish_latency.record(Duration::from_micros(7));
        let snap = s.snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.exec_count, 1);
        assert_eq!(snap.finish_count, 1, "finish samples are surfaced too");
        let text = snap.to_string();
        assert!(text.contains("1 opened"));
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_counters_and_takes_max_quantiles() {
        let a = ServiceStats::new();
        ServiceStats::bump(&a.sessions_opened);
        ServiceStats::bump(&a.commands_mediated);
        a.exec_latency.record(Duration::from_micros(2));
        let b = ServiceStats::new();
        ServiceStats::bump(&b.sessions_opened);
        ServiceStats::bump(&b.denials);
        b.exec_latency.record(Duration::from_millis(4));
        let mut merged = a.snapshot();
        let snap_b = b.snapshot();
        merged.merge(&snap_b);
        assert_eq!(merged.sessions_opened, 2);
        assert_eq!(merged.commands_mediated, 1);
        assert_eq!(merged.denials, 1);
        assert_eq!(merged.exec_count, 2);
        assert_eq!(merged.exec_p99_ns, snap_b.exec_p99_ns, "max wins");
    }
}
