//! Wire protocol: length-prefixed JSON frames over any `Read + Write`.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! JSON. The codec is transport-agnostic: production serves
//! `std::net::TcpStream`, tests and the demo use the in-process
//! [`duplex`] pipe, and both go through exactly the same
//! [`read_frame`]/[`write_frame`] path so the tests exercise the real
//! framing.
//!
//! Frames larger than [`MAX_FRAME`] are rejected before allocation — a
//! malicious or broken client cannot make the broker reserve gigabytes by
//! sending a huge prefix.

use heimdall_enforcer::audit::AuditKind;
use heimdall_enforcer::verifier::Verdict;
use heimdall_privilege::derive::Task;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Hard cap on a single frame's payload (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Opaque handle to a hosted twin session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open a twin session for `technician` scoped to `ticket`.
    OpenSession { technician: String, ticket: Task },
    /// Run one mediated console line inside a session.
    Exec {
        session: SessionId,
        device: String,
        line: String,
    },
    /// The (privilege-scoped) topology the technician may see.
    TopologyView { session: SessionId },
    /// Close the session and push its change-set through the enforcer.
    Finish { session: SessionId },
    /// Read the audit log, optionally filtered by kind and/or actor.
    AuditQuery {
        kind: Option<AuditKind>,
        actor: Option<String>,
    },
    /// A point-in-time stats snapshot.
    Stats,
    /// The metrics registry as Prometheus text exposition.
    Telemetry,
    /// The retained span tree of one trace (canonical 16-hex id, as
    /// carried by audit entries' `trace` field).
    TraceQuery { trace: String },
    /// Buckets of one time series over an inclusive range. `series` must
    /// be canonical ([`heimdall_obs::is_canonical_series`]) and
    /// `start_ns <= end_ns`; anything else is a `BadRequest`.
    TimeQuery {
        series: String,
        start_ns: u64,
        end_ns: u64,
        resolution: heimdall_obs::Resolution,
    },
    /// The SLO alerts fired so far (each carries an exemplar trace tag
    /// to feed back into [`Request::TraceQuery`]).
    AlertQuery,
    /// Per-stage latency attribution of one trace's span tree.
    CriticalPath { trace: String },
    /// Run the static least-privilege analyzer. Exactly one input form:
    ///
    /// - `session` — analyze a live session's privilege spec against the
    ///   baseline it was sliced from (ticket comes from the session;
    ///   `ticket` must be absent);
    /// - `spec` + `ticket` — parse `spec` as privilege DSL and analyze it
    ///   for `ticket` against current production.
    ///
    /// Anything else — both forms, neither, a spec without a ticket, a
    /// spec that does not parse, or one over the predicate cap — is a
    /// `BadRequest`.
    AnalyzeQuery {
        session: Option<SessionId>,
        spec: Option<String>,
        ticket: Option<Task>,
    },
    /// The fleet-wide metrics surface: merged service counters across
    /// shards plus net-layer counters and event-bus health. In network
    /// mode the front-end answers from its background scrape loop; an
    /// in-process broker answers for itself (`shards == 1`).
    MetricsQuery,
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Unknown or already-finished session.
    SessionNotFound,
    /// The reference monitor denied the command.
    PermissionDenied,
    /// The command did not parse or execute.
    BadCommand,
    /// The technician exceeded their token bucket.
    RateLimited,
    /// The broker's worker queue is full.
    Busy,
    /// The request could not be decoded or was malformed.
    BadRequest,
}

/// A serializable audit entry (mirror of the enforcer's, minus chain
/// internals the client has no use for).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntryView {
    pub seq: u64,
    pub kind: AuditKind,
    pub actor: String,
    pub detail: String,
    /// Canonical 16-hex trace id, or empty for untraced events. Feed it
    /// to [`Request::TraceQuery`] to join this record with its span tree.
    pub trace: String,
}

/// One broker reply. Replies pair with requests positionally: the broker
/// answers every frame it reads, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    SessionOpened {
        session: SessionId,
        /// Devices inside the technician's twin slice.
        devices: Vec<String>,
    },
    ExecOutput {
        output: String,
    },
    Topology {
        /// `(name, role)` pairs.
        devices: Vec<(String, String)>,
        /// `(device_a, iface_a, device_b, iface_b)` tuples.
        links: Vec<(String, String, String, String)>,
    },
    Finished {
        verdict: Verdict,
        applied: bool,
        /// Commit attempts (1 = landed first try; >1 = retried stale).
        attempts: u32,
        /// Change-set size handed to the enforcer.
        changes: usize,
    },
    Audit {
        entries: Vec<AuditEntryView>,
    },
    Stats {
        snapshot: crate::stats::StatsSnapshot,
    },
    /// Prometheus text exposition of every metric series.
    Telemetry {
        text: String,
    },
    /// The retained spans of one trace, ordered by start time. Empty when
    /// the trace is unknown or has rotated out of the span ring.
    Trace {
        trace: String,
        spans: Vec<heimdall_telemetry::Span>,
    },
    /// Buckets answering a [`Request::TimeQuery`]. Empty when the series
    /// exists but has no samples in range, or is simply unknown.
    TimeSeries {
        series: String,
        resolution: heimdall_obs::Resolution,
        points: Vec<heimdall_obs::Bucket>,
    },
    /// The broker's fired SLO alerts, oldest first.
    Alerts {
        alerts: Vec<heimdall_obs::Alert>,
    },
    /// Per-stage latency attribution of one trace (empty report when the
    /// trace has rotated out of the span ring).
    CriticalPath {
        report: heimdall_obs::CriticalPathReport,
    },
    /// The static analyzer's findings for an [`Request::AnalyzeQuery`],
    /// canonically sorted (severity desc, device, code, message).
    Analysis {
        report: heimdall_analyze::AnalysisReport,
    },
    /// The merged fleet metrics answering a [`Request::MetricsQuery`].
    Metrics {
        metrics: crate::stats::FleetMetrics,
    },
    Error {
        kind: ErrorKind,
        message: String,
    },
}

/// Frame-level failures.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error.
    Io(io::Error),
    /// Clean end-of-stream at a frame boundary.
    Closed,
    /// The stream ended mid-frame.
    Truncated,
    /// Declared length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload was not valid JSON for the expected type.
    Codec(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds cap of {MAX_FRAME}")
            }
            FrameError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one value as a length-prefixed JSON frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, value: &T) -> Result<(), FrameError> {
    let payload = serde_json::to_string(value).map_err(|e| FrameError::Codec(e.to_string()))?;
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(bytes.len()));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed JSON frame.
///
/// EOF before any prefix byte is [`FrameError::Closed`] (the peer hung up
/// cleanly); EOF anywhere after that is [`FrameError::Truncated`].
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_or(r, &mut prefix, true)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| FrameError::Codec("frame payload is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| FrameError::Codec(e.to_string()))
}

/// `read_exact` that distinguishes a clean close (EOF with zero bytes of
/// the prefix read, when `at_boundary`) from mid-frame truncation.
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------- duplex pipe

struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
}

struct PipeState {
    buf: Mutex<PipeBuf>,
    readable: Condvar,
}

impl PipeState {
    fn new() -> Arc<PipeState> {
        Arc::new(PipeState {
            buf: Mutex::new(PipeBuf {
                data: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
        })
    }

    fn close(&self) {
        self.buf.lock().closed = true;
        self.readable.notify_all();
    }
}

/// One end of an in-process bidirectional byte pipe.
///
/// Semantically a loopback `TcpStream`: blocking reads, writes visible to
/// the peer in order, and dropping an end gives the peer EOF on read and
/// `BrokenPipe` on write. Lets protocol tests and the demo run the full
/// framed path deterministically with no sockets.
pub struct PipeEnd {
    incoming: Arc<PipeState>,
    outgoing: Arc<PipeState>,
}

/// A connected pair of pipe ends.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a_to_b = PipeState::new();
    let b_to_a = PipeState::new();
    (
        PipeEnd {
            incoming: Arc::clone(&b_to_a),
            outgoing: Arc::clone(&a_to_b),
        },
        PipeEnd {
            incoming: a_to_b,
            outgoing: b_to_a,
        },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.incoming.buf.lock();
        while state.data.is_empty() {
            if state.closed {
                return Ok(0); // EOF
            }
            self.incoming.readable.wait(&mut state);
        }
        let n = buf.len().min(state.data.len());
        for slot in buf.iter_mut().take(n) {
            *slot = state.data.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.outgoing.buf.lock();
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer end dropped",
            ));
        }
        state.data.extend(buf.iter().copied());
        self.outgoing.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        // Peer reads drain then hit EOF; peer writes fail fast.
        self.outgoing.close();
        self.incoming.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_privilege::derive::TaskKind;

    fn ticket() -> Task {
        Task {
            kind: TaskKind::Connectivity,
            affected: vec!["h1".into(), "srv1".into()],
        }
    }

    #[test]
    fn frame_roundtrip_over_memory() {
        let mut buf: Vec<u8> = Vec::new();
        let req = Request::OpenSession {
            technician: "alice".into(),
            ticket: ticket(),
        };
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = &buf[..];
        let back: Request = read_frame(&mut cursor).unwrap();
        assert_eq!(back, req);
        // Stream exhausted: next read is a clean close.
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn truncation_mid_frame_detected() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            assert!(
                matches!(
                    read_frame::<_, Request>(&mut cursor),
                    Err(FrameError::Truncated)
                ),
                "cut at {cut} should be Truncated"
            );
        }
    }

    #[test]
    fn eof_mid_payload_is_truncated_not_closed() {
        // Regression: a peer that sends the full 4-byte prefix and part
        // of the payload, then hangs up, must surface as `Truncated` —
        // `Closed` is reserved for EOF at a frame boundary.
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        assert!(buf.len() > 6, "need some payload to cut into");
        let cut = 4 + (buf.len() - 4) / 2; // prefix intact, payload half-sent
        let mut cursor = &buf[..cut];
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::Truncated)
        ));
        // Prefix fully sent but zero payload bytes: still Truncated.
        let mut cursor = &buf[..4];
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn too_large_display_names_the_configured_cap() {
        let err = FrameError::TooLarge(MAX_FRAME + 1);
        let msg = err.to_string();
        assert!(
            msg.contains(&MAX_FRAME.to_string()),
            "operators must see the limit to know which side to raise: {msg}"
        );
        assert!(msg.contains(&(MAX_FRAME + 1).to_string()), "{msg}");
    }

    #[test]
    fn garbage_payload_is_codec_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_be_bytes());
        buf.extend_from_slice(b"not svc");
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::Codec(_))
        ));
    }

    #[test]
    fn duplex_pipe_carries_frames_both_ways() {
        let (mut client, mut server) = duplex();
        let t = std::thread::spawn(move || {
            let req: Request = read_frame(&mut server).unwrap();
            assert!(matches!(req, Request::Stats));
            write_frame(
                &mut server,
                &Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: "demo".into(),
                },
            )
            .unwrap();
        });
        write_frame(&mut client, &Request::Stats).unwrap();
        let resp: Response = read_frame(&mut client).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
        t.join().unwrap();
    }

    #[test]
    fn dropping_an_end_gives_peer_eof() {
        let (client, mut server) = duplex();
        drop(client);
        assert!(matches!(
            read_frame::<_, Request>(&mut server),
            Err(FrameError::Closed)
        ));
    }

    /// Delivers bytes one at a time, the worst-case fragmentation a real
    /// socket can produce. `read_frame` must reassemble across however
    /// many partial reads the kernel hands it.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0); // EOF
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let mut buf: Vec<u8> = Vec::new();
        let req = Request::OpenSession {
            technician: "alice".into(),
            ticket: ticket(),
        };
        write_frame(&mut buf, &req).unwrap();
        write_frame(&mut buf, &Request::Stats).unwrap();
        let mut stream = Trickle { data: buf, pos: 0 };
        let first: Request = read_frame(&mut stream).unwrap();
        assert_eq!(first, req);
        let second: Request = read_frame(&mut stream).unwrap();
        assert!(matches!(second, Request::Stats));
        assert!(matches!(
            read_frame::<_, Request>(&mut stream),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn byte_at_a_time_truncation_at_every_offset() {
        // A peer that trickles a frame byte-by-byte then dies mid-frame
        // must surface as the typed `Truncated` at every possible cut —
        // never a hang, never a spurious clean `Closed`.
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        for cut in 1..buf.len() {
            let mut stream = Trickle {
                data: buf[..cut].to_vec(),
                pos: 0,
            };
            assert!(
                matches!(
                    read_frame::<_, Request>(&mut stream),
                    Err(FrameError::Truncated)
                ),
                "trickled cut at {cut} should be Truncated"
            );
        }
    }
}
