//! Sharded session store.
//!
//! Hosted [`TwinSession`]s live here between requests. The map is split
//! across N shards, each behind its own `RwLock`, so technicians working
//! in different sessions never contend on one global lock — the broker's
//! throughput scales with shard count, not session count. IDs are
//! allocated from one atomic counter and hashed onto shards.
//!
//! Sessions a technician walks away from are reclaimed by idle-TTL
//! eviction ([`SessionRegistry::evict_idle`]); an MSP cannot accumulate
//! abandoned twins indefinitely.

use crate::proto::SessionId;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::Task;
use heimdall_privilege::model::PrivilegeMsp;
use heimdall_telemetry::SpanContext;
use heimdall_twin::session::TwinSession;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Everything the broker needs to resume and later commit a session.
pub struct SessionEntry {
    pub technician: String,
    pub task: Task,
    pub session: TwinSession,
    /// The production snapshot the twin was sliced from — used to
    /// fingerprint the base the change-set was built against when it
    /// reaches the enforcer. (Not the twin slice: slicing sanitizes
    /// configs, which would make every base look stale.)
    pub baseline: Network,
    /// Privileges the session was opened under (kept for the enforcer's
    /// out-of-scope check at commit time).
    pub privilege: PrivilegeMsp,
    /// The telemetry context rooted when the session opened (parented
    /// under the session's `open_session` span); exec/finish spans and
    /// audit trace tags all hang off it. Disabled ⇒ the broker runs
    /// untraced.
    pub ctx: SpanContext,
    pub opened_at: Instant,
    pub last_used: Instant,
}

struct Shard {
    sessions: RwLock<HashMap<u64, SessionEntry>>,
}

/// Concurrent session table.
pub struct SessionRegistry {
    shards: Vec<Shard>,
    next_id: AtomicU64,
}

/// Mixes the ID before sharding so sequential IDs spread out.
fn spread(id: u64) -> u64 {
    let mut z = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= z >> 29;
    z
}

impl SessionRegistry {
    /// `shards` is rounded up to at least 1.
    pub fn new(shards: usize) -> SessionRegistry {
        let n = shards.max(1);
        SessionRegistry {
            shards: (0..n)
                .map(|_| Shard {
                    sessions: RwLock::new(HashMap::new()),
                })
                .collect(),
            next_id: AtomicU64::new(1),
        }
    }

    fn shard_for(&self, id: SessionId) -> &Shard {
        let idx = (spread(id.0) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Stores a new session, returning its handle.
    pub fn insert(&self, entry: SessionEntry) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.shard_for(id).sessions.write().insert(id.0, entry);
        id
    }

    /// Runs `f` with mutable access to the session, refreshing its idle
    /// clock. `None` if the session does not exist (or was evicted).
    pub fn with_session_mut<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut SessionEntry) -> R,
    ) -> Option<R> {
        let shard = self.shard_for(id);
        let mut sessions = shard.sessions.write();
        let entry = sessions.get_mut(&id.0)?;
        entry.last_used = Instant::now();
        Some(f(entry))
    }

    /// Removes and returns the session (the finish path).
    pub fn remove(&self, id: SessionId) -> Option<SessionEntry> {
        self.shard_for(id).sessions.write().remove(&id.0)
    }

    /// Evicts every session idle longer than `ttl`; returns the victims
    /// (so the broker can audit the evictions).
    pub fn evict_idle(&self, ttl: Duration) -> Vec<(SessionId, SessionEntry)> {
        let now = Instant::now();
        let mut evicted = Vec::new();
        for shard in &self.shards {
            let mut sessions = shard.sessions.write();
            let expired: Vec<u64> = sessions
                .iter()
                .filter(|(_, e)| now.duration_since(e.last_used) > ttl)
                .map(|(id, _)| *id)
                .collect();
            for id in expired {
                if let Some(entry) = sessions.remove(&id) {
                    evicted.push((SessionId(id), entry));
                }
            }
        }
        evicted
    }

    /// Visits every live session read-mostly (shard by shard, write lock
    /// per shard because callers may poll mutable twin state). Unlike
    /// [`SessionRegistry::with_session_mut`] this does NOT refresh
    /// `last_used`: a monitoring scrape must not keep an abandoned
    /// session alive past its idle TTL.
    pub fn for_each_session(&self, mut f: impl FnMut(SessionId, &mut SessionEntry)) {
        for shard in &self.shards {
            let mut sessions = shard.sessions.write();
            for (id, entry) in sessions.iter_mut() {
                f(SessionId(*id), entry);
            }
        }
    }

    /// Live session count (sums shard sizes; racy by nature, exact when
    /// quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Raises the ID allocator to at least `min`. Recovery calls this so
    /// a restarted broker never re-issues a session ID that appears
    /// anywhere in the journal — replayed audit lines stay unambiguous.
    pub fn ensure_next_id(&self, min: u64) {
        self.next_id.fetch_max(min, Ordering::Relaxed);
    }

    /// The next ID the allocator would hand out (checkpointing).
    pub fn next_id_hint(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, TaskKind};
    use heimdall_twin::slice::slice_for_task;

    fn entry(technician: &str) -> SessionEntry {
        let g = enterprise_network();
        let task = Task {
            kind: TaskKind::Connectivity,
            affected: vec!["h1".into(), "srv1".into()],
        };
        let privilege = derive_privileges(&g.net, &task);
        let twin = slice_for_task(&g.net, &task);
        let baseline = twin.net.clone();
        let session = TwinSession::open(technician, twin, privilege.clone());
        let now = Instant::now();
        SessionEntry {
            technician: technician.into(),
            task,
            session,
            baseline,
            privilege,
            ctx: SpanContext::disabled(),
            opened_at: now,
            last_used: now,
        }
    }

    #[test]
    fn insert_access_remove_lifecycle() {
        let reg = SessionRegistry::new(4);
        let id = reg.insert(entry("alice"));
        assert_eq!(reg.len(), 1);
        let tech = reg
            .with_session_mut(id, |e| e.technician.clone())
            .expect("session exists");
        assert_eq!(tech, "alice");
        let removed = reg.remove(id).expect("still there");
        assert_eq!(removed.technician, "alice");
        assert!(reg.is_empty());
        assert!(reg.with_session_mut(id, |_| ()).is_none());
    }

    #[test]
    fn ids_are_unique_across_threads() {
        use std::collections::HashSet;
        use std::sync::Arc;

        let reg = Arc::new(SessionRegistry::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    (0..16)
                        .map(|_| reg.insert(entry(&format!("tech{t}"))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate session id {id}");
            }
        }
        assert_eq!(reg.len(), 64);
    }

    #[test]
    fn idle_sessions_are_evicted_fresh_ones_kept() {
        let reg = SessionRegistry::new(2);
        let old = reg.insert(entry("idle"));
        std::thread::sleep(Duration::from_millis(40));
        // Touch only the fresh session; "idle" ages past the TTL.
        let fresh = reg.insert(entry("busy"));
        let evicted = reg.evict_idle(Duration::from_millis(20));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, old);
        assert_eq!(evicted[0].1.technician, "idle");
        assert!(reg.with_session_mut(fresh, |_| ()).is_some());
        assert_eq!(reg.len(), 1);
    }
}
