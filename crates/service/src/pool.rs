//! Bounded worker pool and per-technician token-bucket rate limiting.
//!
//! The broker never spawns a thread per request: connections are jobs on
//! a fixed pool fed through a *bounded* queue, so a flood of technicians
//! surfaces as an explicit [`SubmitError::Saturated`] (backpressure) the
//! intake can turn into a "busy" reply instead of unbounded memory growth.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full — shed load upstream.
    Saturated,
    /// The pool is shutting down.
    Closed,
}

/// A fixed-size thread pool with a bounded intake queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// `workers` threads consuming a queue of at most `queue_depth`
    /// waiting jobs.
    pub fn new(workers: usize, queue_depth: usize) -> WorkerPool {
        assert!(workers > 0, "pool needs at least one worker");
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("heimdall-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queues a job; fails fast when the queue is full.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::Saturated),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Closed),
        }
    }

    /// Queues a job, blocking while the queue is full (used by tests and
    /// shutdown paths that must not shed).
    pub fn submit_blocking(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        tx.send(Box::new(job)).map_err(|_| SubmitError::Closed)
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only while dequeuing, not while running.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        job();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker with a recv error.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Classic token bucket: `capacity` burst, `refill_per_sec` sustained.
#[derive(Debug, Clone)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// Per-technician rate limiter.
///
/// Each technician gets an independent bucket, so one noisy automation
/// account cannot starve interactive operators — the service-layer
/// analogue of the paper's per-technician privilege scoping.
pub struct RateLimiter {
    capacity: f64,
    refill_per_sec: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    pub fn new(capacity: u32, refill_per_sec: f64) -> RateLimiter {
        RateLimiter {
            capacity: capacity as f64,
            refill_per_sec,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// An effectively unlimited limiter (for tests and demos).
    pub fn unlimited() -> RateLimiter {
        RateLimiter::new(u32::MAX, f64::INFINITY)
    }

    /// Takes one token for `technician`; false means rate-limited.
    pub fn try_acquire(&self, technician: &str) -> bool {
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(technician.to_string()).or_insert(Bucket {
            tokens: self.capacity,
            last_refill: now,
        });
        let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Number of technicians currently tracked.
    pub fn tracked(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn pool_runs_jobs_on_all_workers() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.submit_blocking(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn full_queue_reports_saturation() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock();
        {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                let _g = gate.lock(); // blocks the only worker
            })
            .unwrap();
        }
        // Give the worker time to pick up the blocking job, then fill
        // the single queue slot.
        std::thread::sleep(Duration::from_millis(50));
        pool.submit(|| {}).unwrap();
        let mut saturated = false;
        for _ in 0..100 {
            if pool.submit(|| {}) == Err(SubmitError::Saturated) {
                saturated = true;
                break;
            }
        }
        assert!(saturated, "bounded queue should shed load");
        drop(held);
    }

    #[test]
    fn token_bucket_limits_burst_then_refills() {
        let rl = RateLimiter::new(3, 1000.0);
        assert!(rl.try_acquire("eve"));
        assert!(rl.try_acquire("eve"));
        assert!(rl.try_acquire("eve"));
        // Burst exhausted — an instant 4th call may only pass if the
        // clock already refilled (1000/s ⇒ 1ms per token), so drain hard:
        let rl = RateLimiter::new(2, 0.0);
        assert!(rl.try_acquire("mallory"));
        assert!(rl.try_acquire("mallory"));
        assert!(!rl.try_acquire("mallory"), "no refill, bucket empty");
        // Other technicians are unaffected.
        assert!(rl.try_acquire("alice"));
        assert_eq!(rl.tracked(), 2);
    }
}
