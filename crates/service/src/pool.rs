//! Bounded worker pool and per-technician token-bucket rate limiting.
//!
//! The broker never spawns a thread per request: connections are jobs on
//! a fixed pool fed through a *bounded* queue, so a flood of technicians
//! surfaces as an explicit [`SubmitError::Saturated`] (backpressure) the
//! intake can turn into a "busy" reply instead of unbounded memory growth.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full — shed load upstream.
    Saturated,
    /// The pool is shutting down.
    Closed,
}

/// A fixed-size thread pool with a bounded intake queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// `workers` threads consuming a queue of at most `queue_depth`
    /// waiting jobs.
    pub fn new(workers: usize, queue_depth: usize) -> WorkerPool {
        assert!(workers > 0, "pool needs at least one worker");
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("heimdall-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queues a job; fails fast when the queue is full.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::Saturated),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Closed),
        }
    }

    /// Queues a job, blocking while the queue is full (used by tests and
    /// shutdown paths that must not shed).
    pub fn submit_blocking(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        tx.send(Box::new(job)).map_err(|_| SubmitError::Closed)
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only while dequeuing, not while running.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        job();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker with a recv error.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Classic token bucket: `capacity` burst, `refill_per_sec` sustained.
#[derive(Debug, Clone)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

impl Bucket {
    fn full(capacity: f64, now: Instant) -> Bucket {
        Bucket {
            tokens: capacity,
            last_refill: now,
        }
    }

    fn refill(&mut self, capacity: f64, refill_per_sec: f64, now: Instant) {
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * refill_per_sec).min(capacity);
        self.last_refill = now;
    }

    fn take(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// How much larger the identity-independent global bucket is than a
/// single technician's (burst and refill alike).
const GLOBAL_FACTOR: f64 = 64.0;

/// Per-technician bucket maps larger than this trigger an eviction sweep,
/// and are never grown past it — a client streaming fresh names cannot
/// balloon broker memory.
const MAX_TRACKED: usize = 4096;

/// Per-technician rate limiter behind a global backstop.
///
/// Each technician gets an independent bucket, so one noisy automation
/// account cannot starve interactive operators — the service-layer
/// analogue of the paper's per-technician privilege scoping.
///
/// Technician names arrive verbatim from unauthenticated clients, so the
/// per-name buckets alone would be both unbounded (one map entry per
/// unique name) and bypassable (a fresh name starts with a full bucket).
/// Two backstops close that: every acquire is also charged against one
/// *global* bucket that no choice of identity escapes, and the bucket map
/// is bounded — effectively-full buckets carry no throttle state and are
/// evicted losslessly; past `MAX_TRACKED` names the map stops growing and
/// new names share the global bucket only.
pub struct RateLimiter {
    capacity: f64,
    refill_per_sec: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
    global: Mutex<Bucket>,
    global_capacity: f64,
    global_refill_per_sec: f64,
    max_tracked: usize,
}

impl RateLimiter {
    pub fn new(capacity: u32, refill_per_sec: f64) -> RateLimiter {
        let capacity = capacity as f64;
        RateLimiter::with_limits(
            capacity,
            refill_per_sec,
            capacity * GLOBAL_FACTOR,
            refill_per_sec * GLOBAL_FACTOR,
            MAX_TRACKED,
        )
    }

    /// Full control over both buckets and the map bound (tests, tuning).
    pub fn with_limits(
        capacity: f64,
        refill_per_sec: f64,
        global_capacity: f64,
        global_refill_per_sec: f64,
        max_tracked: usize,
    ) -> RateLimiter {
        RateLimiter {
            capacity,
            refill_per_sec,
            buckets: Mutex::new(HashMap::new()),
            global: Mutex::new(Bucket::full(global_capacity, Instant::now())),
            global_capacity,
            global_refill_per_sec,
            max_tracked,
        }
    }

    /// An effectively unlimited limiter (for tests and demos).
    pub fn unlimited() -> RateLimiter {
        RateLimiter::with_limits(
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            MAX_TRACKED,
        )
    }

    /// Takes one token for `technician`; false means rate-limited.
    pub fn try_acquire(&self, technician: &str) -> bool {
        let now = Instant::now();
        // Identity-independent backstop first: a flood of unique names is
        // still one stream of requests.
        {
            let mut global = self.global.lock();
            global.refill(self.global_capacity, self.global_refill_per_sec, now);
            if !global.take() {
                return false;
            }
        }
        let mut buckets = self.buckets.lock();
        if let Some(bucket) = buckets.get_mut(technician) {
            bucket.refill(self.capacity, self.refill_per_sec, now);
            return bucket.take();
        }
        if buckets.len() >= self.max_tracked {
            self.evict_full(&mut buckets, now);
        }
        if buckets.len() >= self.max_tracked {
            // Map is at capacity with genuinely-throttled entries. A new
            // name's first token would always be granted anyway (fresh
            // buckets start full), so granting without inserting loses no
            // enforcement; the global bucket above still meters the flood.
            return true;
        }
        let mut bucket = Bucket::full(self.capacity, now);
        let granted = bucket.take();
        buckets.insert(technician.to_string(), bucket);
        granted
    }

    /// Drops buckets that have refilled to (effectively) full: they are
    /// indistinguishable from absent entries, so eviction is lossless.
    fn evict_full(&self, buckets: &mut HashMap<String, Bucket>, now: Instant) {
        let capacity = self.capacity;
        let refill = self.refill_per_sec;
        buckets.retain(|_, b| {
            let elapsed = now.duration_since(b.last_refill).as_secs_f64();
            (b.tokens + elapsed * refill) < capacity - 1e-9
        });
    }

    /// Number of technicians currently tracked.
    pub fn tracked(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn pool_runs_jobs_on_all_workers() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.submit_blocking(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn full_queue_reports_saturation() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock();
        {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                let _g = gate.lock(); // blocks the only worker
            })
            .unwrap();
        }
        // Give the worker time to pick up the blocking job, then fill
        // the single queue slot.
        std::thread::sleep(Duration::from_millis(50));
        pool.submit(|| {}).unwrap();
        let mut saturated = false;
        for _ in 0..100 {
            if pool.submit(|| {}) == Err(SubmitError::Saturated) {
                saturated = true;
                break;
            }
        }
        assert!(saturated, "bounded queue should shed load");
        drop(held);
    }

    #[test]
    fn token_bucket_limits_burst_then_refills() {
        let rl = RateLimiter::new(3, 1000.0);
        assert!(rl.try_acquire("eve"));
        assert!(rl.try_acquire("eve"));
        assert!(rl.try_acquire("eve"));
        // Burst exhausted — an instant 4th call may only pass if the
        // clock already refilled (1000/s ⇒ 1ms per token), so drain hard:
        let rl = RateLimiter::new(2, 0.0);
        assert!(rl.try_acquire("mallory"));
        assert!(rl.try_acquire("mallory"));
        assert!(!rl.try_acquire("mallory"), "no refill, bucket empty");
        // Other technicians are unaffected.
        assert!(rl.try_acquire("alice"));
        assert_eq!(rl.tracked(), 2);
    }

    #[test]
    fn unique_names_cannot_grow_bucket_map_unbounded() {
        // Idle buckets refill to full almost instantly here, making them
        // losslessly evictable — a stream of fresh names keeps the map at
        // the bound instead of growing it.
        let rl = RateLimiter::with_limits(4.0, 1e12, f64::INFINITY, f64::INFINITY, 8);
        for i in 0..1000 {
            rl.try_acquire(&format!("sock-puppet-{i}"));
            assert!(rl.tracked() <= 8, "map grew to {}", rl.tracked());
        }
    }

    #[test]
    fn map_at_bound_keeps_throttled_entries_and_still_enforces() {
        // Empty buckets (refill 0) are NOT evictable — they carry real
        // throttle state — so the map pins at the bound and known-drained
        // names stay rejected even as new names flood in.
        let rl = RateLimiter::with_limits(1.0, 0.0, f64::INFINITY, f64::INFINITY, 4);
        for name in ["a", "b", "c", "d"] {
            assert!(rl.try_acquire(name));
            assert!(!rl.try_acquire(name), "{name} burst spent");
        }
        for i in 0..100 {
            rl.try_acquire(&format!("fresh-{i}"));
        }
        assert_eq!(rl.tracked(), 4);
        assert!(!rl.try_acquire("a"), "drained bucket must survive flood");
    }

    #[test]
    fn global_bucket_limits_identity_hopping_clients() {
        // Per-name buckets are generous, but the global backstop does not
        // care what name the client claims.
        let rl = RateLimiter::with_limits(1000.0, 1000.0, 5.0, 0.0, MAX_TRACKED);
        let mut granted = 0;
        for i in 0..50 {
            if rl.try_acquire(&format!("alias-{i}")) {
                granted += 1;
            }
        }
        assert_eq!(granted, 5, "global bucket caps the total");
        // And it throttles a single well-known name identically.
        assert!(!rl.try_acquire("alice"));
    }
}
